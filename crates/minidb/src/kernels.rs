//! The SIMD kernel boundary: every data-parallel inner loop of the
//! optimized engine, in one module, behind one `Engine` switch.
//!
//! `ExecMode::Optimized` ("OPT") and `ExecMode::Simd` ("SIMD") execute the
//! *same* operators over the *same* selection vectors; they differ only in
//! which implementation this module dispatches for four hot loops:
//!
//! 1. **typed filter compare** — `column <op> literal` over a dense row
//!    range or a sparse selection vector,
//! 2. **selection compaction** — branchless mask→index emit
//!    (`out[k] = i; k += keep as usize`) instead of a branchy `Vec::push`
//!    per surviving row,
//! 3. **hash-key mixing** — the workspace-shared SplitMix64 finalizer
//!    ([`perfeval_stats::mix64`]) applied lane-parallel over key columns,
//!    feeding an open-addressed, insertion-ordered join/group index,
//! 4. **aggregate folds** — lane-accumulated sum/min/max/count over Int
//!    columns, merged in a fixed lane order.
//!
//! `std::simd` is nightly-only, so the SIMD paths are written as
//! fixed-width ([`LANES`]) chunked loops the compiler autovectorizes: the
//! compare/mix phase of each chunk is branch-free straight-line arithmetic
//! over independent lanes, and only the compaction emit carries a serial
//! dependency (on the output cursor).
//!
//! ## The bit-identity contract
//!
//! Every kernel here must produce **bit-identical results** to the scalar
//! engine, on every input — not "close enough", identical. That forces an
//! honest split:
//!
//! * Selection kernels are exact by construction (the surviving indices of
//!   a predicate do not depend on evaluation strategy).
//! * The hash index replays insertion order (per-key chains are built in
//!   row order and probed probe-major), so join pairs and group
//!   directories match the scalar `HashMap` path exactly, even though the
//!   hash function and table layout differ.
//! * Integer folds use `i64` lane accumulators — associative, so any lane
//!   split is exact — but the scalar engine accumulates Int sums in `f64`,
//!   which rounds once a partial sum leaves `±2^53`. [`sum_i64_exact`]
//!   therefore proves the guard `Σ|v| < 2^53` (every scalar prefix sum is
//!   then exactly representable, making the scalar fold exact too) and
//!   refuses otherwise, falling back to the serial replay.
//! * **Float folds stay in serial order.** An f64 lane accumulator is NOT
//!   bit-identical to the serial left fold (addition does not associate,
//!   min/max lane folds diverge on `-0.0`/`0.0` ties and NaN), so Float
//!   sum/avg/min/max deliberately take the scalar path in every engine.
//!   This is the contract, not a TODO.

use crate::expr::BinOp;
use perfeval_stats::mix64;
use std::ops::Range;

/// Fixed lane width of the chunked kernels: 8 × 64-bit lanes (one AVX-512
/// register, two AVX2 registers, four NEON registers).
pub(crate) const LANES: usize = 8;

/// Which kernel implementations the executor dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum Engine {
    /// Scalar loops — the OPT tier's branchy `filter`/`push` idiom.
    #[default]
    Scalar,
    /// Chunked, branchless, autovectorization-friendly loops.
    Simd,
}

/// A filter's input selection: the first conjunct always sees a dense row
/// range (a whole batch or one morsel), later conjuncts see the sparse
/// survivor vector. Keeping the dense case symbolic lets the first-conjunct
/// kernel stream the column instead of gathering through an index vector
/// that is just `0..n`.
#[derive(Debug, Clone)]
pub(crate) enum Sel {
    /// A contiguous row range (no index vector materialized).
    Dense(Range<usize>),
    /// Explicit ascending row indices.
    Sparse(Vec<usize>),
}

impl Sel {
    pub(crate) fn len(&self) -> usize {
        match self {
            Sel::Dense(r) => r.len(),
            Sel::Sparse(v) => v.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the selection as an index vector.
    pub(crate) fn into_vec(self) -> Vec<usize> {
        match self {
            Sel::Dense(r) => r.collect(),
            Sel::Sparse(v) => v,
        }
    }
}

/// The comparison a filter kernel applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl Cmp {
    pub(crate) fn from_binop(op: BinOp) -> Option<Cmp> {
        Some(match op {
            BinOp::Lt => Cmp::Lt,
            BinOp::Le => Cmp::Le,
            BinOp::Gt => Cmp::Gt,
            BinOp::Ge => Cmp::Ge,
            BinOp::Eq => Cmp::Eq,
            BinOp::Ne => Cmp::Ne,
            _ => return None,
        })
    }
}

// --------------------------------------------------------------------
// Compare-select kernels (hot loops 1 + 2).
// --------------------------------------------------------------------

/// Dense compare-select: keep the indices in `range` whose value passes
/// `pred`. The SIMD path evaluates `LANES` predicates into a mask (the
/// vectorizable half), then emits indices branchlessly (hot loop 2: the
/// output cursor advances by `mask as usize`, no branch per row).
#[inline]
fn select_dense<T: Copy, P: Fn(T) -> bool>(
    data: &[T],
    range: Range<usize>,
    engine: Engine,
    pred: P,
) -> Vec<usize> {
    match engine {
        Engine::Scalar => range.filter(|&i| pred(data[i])).collect(),
        Engine::Simd => {
            let window = &data[range.clone()];
            let mut out = vec![0usize; window.len()];
            let mut k = 0usize;
            let mut base = range.start;
            let mut chunks = window.chunks_exact(LANES);
            for chunk in chunks.by_ref() {
                let mut mask = [false; LANES];
                for l in 0..LANES {
                    mask[l] = pred(chunk[l]);
                }
                for (l, &m) in mask.iter().enumerate() {
                    out[k] = base + l;
                    k += m as usize;
                }
                base += LANES;
            }
            for (l, &v) in chunks.remainder().iter().enumerate() {
                out[k] = base + l;
                k += pred(v) as usize;
            }
            out.truncate(k);
            out
        }
    }
}

/// Sparse compare-select: keep the indices of `sel` whose value passes
/// `pred`, gathering through the selection vector.
#[inline]
fn select_sparse<T: Copy, P: Fn(T) -> bool>(
    data: &[T],
    sel: &[usize],
    engine: Engine,
    pred: P,
) -> Vec<usize> {
    match engine {
        Engine::Scalar => sel.iter().copied().filter(|&i| pred(data[i])).collect(),
        Engine::Simd => {
            let mut out = vec![0usize; sel.len()];
            let mut k = 0usize;
            let mut chunks = sel.chunks_exact(LANES);
            for chunk in chunks.by_ref() {
                let mut mask = [false; LANES];
                for l in 0..LANES {
                    mask[l] = pred(data[chunk[l]]);
                }
                for l in 0..LANES {
                    out[k] = chunk[l];
                    k += mask[l] as usize;
                }
            }
            for &i in chunks.remainder() {
                out[k] = i;
                k += pred(data[i]) as usize;
            }
            out.truncate(k);
            out
        }
    }
}

#[inline]
fn select_by<T: Copy, P: Fn(T) -> bool>(
    data: &[T],
    sel: &Sel,
    engine: Engine,
    pred: P,
) -> Vec<usize> {
    match sel {
        Sel::Dense(r) => select_dense(data, r.clone(), engine, pred),
        Sel::Sparse(v) => select_sparse(data, v, engine, pred),
    }
}

/// Typed compare-select through a key-extraction map (`|v| v` for direct
/// comparisons, `|v| v as f64` for Int-column-vs-Float-literal). The map
/// and comparison inline into the chunk loop, so each (type, op) pair
/// monomorphizes to a tight branch-free compare.
#[inline]
pub(crate) fn compare_select_map<T, U, M>(
    data: &[T],
    map: M,
    cmp: Cmp,
    lit: U,
    sel: &Sel,
    engine: Engine,
) -> Vec<usize>
where
    T: Copy,
    U: Copy + PartialOrd,
    M: Fn(T) -> U + Copy,
{
    match cmp {
        Cmp::Lt => select_by(data, sel, engine, move |v| map(v) < lit),
        Cmp::Le => select_by(data, sel, engine, move |v| map(v) <= lit),
        Cmp::Gt => select_by(data, sel, engine, move |v| map(v) > lit),
        Cmp::Ge => select_by(data, sel, engine, move |v| map(v) >= lit),
        Cmp::Eq => select_by(data, sel, engine, move |v| map(v) == lit),
        Cmp::Ne => select_by(data, sel, engine, move |v| map(v) != lit),
    }
}

/// Direct typed compare-select (Int vs Int literal, Float vs Float
/// literal, dictionary code vs code).
#[inline]
pub(crate) fn compare_select<T>(
    data: &[T],
    cmp: Cmp,
    lit: T,
    sel: &Sel,
    engine: Engine,
) -> Vec<usize>
where
    T: Copy + PartialOrd,
{
    compare_select_map(data, |v| v, cmp, lit, sel, engine)
}

// --------------------------------------------------------------------
// Hash-key mixing + the insertion-ordered open-addressed index (hot
// loop 3).
// --------------------------------------------------------------------

/// Hashes one Int key with the workspace-shared SplitMix64 finalizer.
#[inline]
pub(crate) fn hash_i64(key: i64) -> u64 {
    mix64(key as u64)
}

/// Lane-parallel key mixing: `mix64` is branch-free shift/xor/multiply
/// arithmetic, so hashing a chunk of keys is `LANES` independent lanes the
/// compiler vectorizes. Hashing a whole window up front (instead of inside
/// the probe loop) keeps the vectorizable arithmetic separate from the
/// serial table walk.
#[inline]
pub(crate) fn hash_keys_i64(keys: &[i64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(keys.len());
    let mut chunks = keys.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        let mut h = [0u64; LANES];
        for l in 0..LANES {
            h[l] = hash_i64(chunk[l]);
        }
        out.extend_from_slice(&h);
    }
    for &k in chunks.remainder() {
        out.push(hash_i64(k));
    }
    out
}

/// "No row / vacant slot" sentinel in the index's u32 row links.
const NONE32: u32 = u32::MAX;

/// An open-addressed (linear-probing) hash index over an Int key column
/// that preserves **insertion order** per key: each distinct key owns a
/// chain of its row indices in ascending row order, so probing yields
/// exactly the (build-row, probe-row) pairs the scalar
/// `HashMap<i64, Vec<usize>>` path yields — same pairs, same order.
pub(crate) struct IntIndex {
    mask: usize,
    /// Slot keys (valid where `first[slot] != NONE32`).
    keys: Vec<i64>,
    /// First build row of the slot's chain, or `NONE32` when vacant.
    first: Vec<u32>,
    /// Last build row of the slot's chain (chain append point).
    last: Vec<u32>,
    /// Per-build-row forward chain link.
    next: Vec<u32>,
}

impl IntIndex {
    /// Builds the index over a build-side key column. Keys are mixed
    /// lane-parallel first; the table insert walk is serial (it must be —
    /// insertion order is the contract).
    pub(crate) fn build(data: &[i64]) -> IntIndex {
        assert!(
            data.len() < NONE32 as usize,
            "IntIndex row ids are u32; build side has {} rows",
            data.len()
        );
        let cap = (data.len().saturating_mul(2)).max(4).next_power_of_two();
        let mut idx = IntIndex {
            mask: cap - 1,
            keys: vec![0; cap],
            first: vec![NONE32; cap],
            last: vec![NONE32; cap],
            next: vec![NONE32; data.len()],
        };
        let hashes = hash_keys_i64(data);
        for (i, (&k, &h)) in data.iter().zip(&hashes).enumerate() {
            let mut s = h as usize & idx.mask;
            loop {
                if idx.first[s] == NONE32 {
                    idx.keys[s] = k;
                    idx.first[s] = i as u32;
                    idx.last[s] = i as u32;
                    break;
                }
                if idx.keys[s] == k {
                    idx.next[idx.last[s] as usize] = i as u32;
                    idx.last[s] = i as u32;
                    break;
                }
                s = (s + 1) & idx.mask;
            }
        }
        idx
    }

    /// Probes rows `range` of `probe`, appending matching
    /// (build-row, probe-row) pairs probe-major — ascending probe row,
    /// build rows in insertion order within each — onto `bsel`/`psel`.
    pub(crate) fn probe_range(
        &self,
        probe: &[i64],
        range: Range<usize>,
        bsel: &mut Vec<usize>,
        psel: &mut Vec<usize>,
    ) {
        let hashes = hash_keys_i64(&probe[range.clone()]);
        for (off, j) in range.enumerate() {
            let key = probe[j];
            let mut s = hashes[off] as usize & self.mask;
            loop {
                let f = self.first[s];
                if f == NONE32 {
                    break;
                }
                if self.keys[s] == key {
                    let mut r = f;
                    while r != NONE32 {
                        bsel.push(r as usize);
                        psel.push(j);
                        r = self.next[r as usize];
                    }
                    break;
                }
                s = (s + 1) & self.mask;
            }
        }
    }
}

/// Dense first-seen group ids over a single Int key column: returns one
/// group id per row plus the first row of each group, with ids assigned in
/// first-seen order — the same directory the scalar `HashMap` group-by
/// builds, computed through the shared mixer and an open-addressed table.
pub(crate) fn group_ids_i64(keys: &[i64]) -> (Vec<u32>, Vec<u32>) {
    assert!(keys.len() < NONE32 as usize, "group ids are u32");
    let cap = (keys.len().saturating_mul(2)).max(4).next_power_of_two();
    let mask = cap - 1;
    let mut slot_keys = vec![0i64; cap];
    let mut slot_gid = vec![NONE32; cap];
    let mut gids = Vec::with_capacity(keys.len());
    let mut first_rows: Vec<u32> = Vec::new();
    let hashes = hash_keys_i64(keys);
    for (i, (&k, &h)) in keys.iter().zip(&hashes).enumerate() {
        let mut s = h as usize & mask;
        let gid = loop {
            if slot_gid[s] == NONE32 {
                let g = first_rows.len() as u32;
                slot_keys[s] = k;
                slot_gid[s] = g;
                first_rows.push(i as u32);
                break g;
            }
            if slot_keys[s] == k {
                break slot_gid[s];
            }
            s = (s + 1) & mask;
        };
        gids.push(gid);
    }
    (gids, first_rows)
}

// --------------------------------------------------------------------
// Aggregate folds (hot loop 4).
// --------------------------------------------------------------------

/// Largest magnitude below which every i64 is exactly representable as f64.
const F64_EXACT: u64 = 1 << 53;

/// Lane-accumulated sum of an Int column, exactness-guarded.
///
/// Returns `None` unless `Σ|v| < 2^53`. Under that guard every prefix sum
/// of the scalar engine's `f64` accumulation has magnitude `< 2^53`, so
/// each of its additions is exact and its final value equals this integer
/// total — making the lane fold bit-identical to the serial fold. Without
/// the guard the serial fold may round where integer lanes would not, so
/// the caller must replay serially instead.
pub(crate) fn sum_i64_exact(data: &[i64]) -> Option<i64> {
    let mut lanes = [0i64; LANES];
    let mut abs_lanes = [0u64; LANES];
    let mut chunks = data.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        for l in 0..LANES {
            lanes[l] = lanes[l].wrapping_add(chunk[l]);
            abs_lanes[l] = abs_lanes[l].saturating_add(chunk[l].unsigned_abs());
        }
    }
    // Fixed lane-merge order: ascending lane index, remainder last.
    let mut total = 0i64;
    let mut abs = 0u64;
    for l in 0..LANES {
        total = total.wrapping_add(lanes[l]);
        abs = abs.saturating_add(abs_lanes[l]);
    }
    for &v in chunks.remainder() {
        total = total.wrapping_add(v);
        abs = abs.saturating_add(v.unsigned_abs());
    }
    (abs < F64_EXACT).then_some(total)
}

/// Lane-folded minimum of an Int column (`None` when empty). Min is
/// associative and commutative over i64, so any lane split is exact.
pub(crate) fn min_i64(data: &[i64]) -> Option<i64> {
    fold_i64(data, i64::MAX, i64::min)
}

/// Lane-folded maximum of an Int column (`None` when empty).
pub(crate) fn max_i64(data: &[i64]) -> Option<i64> {
    fold_i64(data, i64::MIN, i64::max)
}

#[inline]
fn fold_i64(data: &[i64], identity: i64, f: impl Fn(i64, i64) -> i64 + Copy) -> Option<i64> {
    if data.is_empty() {
        return None;
    }
    let mut lanes = [identity; LANES];
    let mut chunks = data.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        for l in 0..LANES {
            lanes[l] = f(lanes[l], chunk[l]);
        }
    }
    let mut acc = identity;
    for &lane in &lanes {
        acc = f(acc, lane);
    }
    for &v in chunks.remainder() {
        acc = f(acc, v);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ragged_data(n: usize) -> Vec<i64> {
        // Deterministic, sign-mixed, with repeats.
        (0..n).map(|i| ((i as i64 * 37) % 101) - 50).collect()
    }

    #[test]
    fn dense_select_matches_scalar_on_ragged_lengths() {
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 200] {
            let data = ragged_data(n);
            for cmp in [Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::Eq, Cmp::Ne] {
                let sel = Sel::Dense(0..n);
                let scalar = compare_select(&data, cmp, 3, &sel, Engine::Scalar);
                let simd = compare_select(&data, cmp, 3, &sel, Engine::Simd);
                assert_eq!(scalar, simd, "n={n} cmp={cmp:?}");
            }
        }
    }

    #[test]
    fn dense_select_respects_subranges() {
        let data = ragged_data(100);
        let sel = Sel::Dense(13..87);
        let scalar = compare_select(&data, Cmp::Ge, 0, &sel, Engine::Scalar);
        let simd = compare_select(&data, Cmp::Ge, 0, &sel, Engine::Simd);
        assert_eq!(scalar, simd);
        assert!(scalar.iter().all(|&i| (13..87).contains(&i)));
    }

    #[test]
    fn sparse_select_matches_scalar() {
        let data = ragged_data(200);
        let base: Vec<usize> = (0..200).filter(|i| i % 3 != 1).collect();
        for cmp in [Cmp::Lt, Cmp::Eq, Cmp::Ne] {
            let sel = Sel::Sparse(base.clone());
            let scalar = compare_select(&data, cmp, -7, &sel, Engine::Scalar);
            let simd = compare_select(&data, cmp, -7, &sel, Engine::Simd);
            assert_eq!(scalar, simd, "cmp={cmp:?}");
        }
    }

    #[test]
    fn float_select_handles_nan_identically() {
        let data = vec![1.0, f64::NAN, -0.0, 0.0, 2.5, f64::NAN, -3.0, 4.0, 5.0];
        for cmp in [Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::Eq, Cmp::Ne] {
            let sel = Sel::Dense(0..data.len());
            let scalar = compare_select(&data, cmp, 0.0, &sel, Engine::Scalar);
            let simd = compare_select(&data, cmp, 0.0, &sel, Engine::Simd);
            assert_eq!(scalar, simd, "cmp={cmp:?}");
        }
    }

    #[test]
    fn int_as_f64_map_select() {
        let data: Vec<i64> = (-10..10).collect();
        let sel = Sel::Dense(0..data.len());
        let scalar = compare_select_map(&data, |v| v as f64, Cmp::Lt, 2.5, &sel, Engine::Scalar);
        let simd = compare_select_map(&data, |v| v as f64, Cmp::Lt, 2.5, &sel, Engine::Simd);
        assert_eq!(scalar, simd);
        assert_eq!(scalar.len(), 13); // -10..=2
    }

    #[test]
    fn int_index_matches_hashmap_probe() {
        use std::collections::HashMap;
        let build: Vec<i64> = vec![5, 3, 5, 8, 3, 5, -1, 0, 8];
        let probe: Vec<i64> = vec![3, 9, 5, 5, -1, 8, 0, 42, 3];
        let mut map: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, &k) in build.iter().enumerate() {
            map.entry(k).or_default().push(i);
        }
        let mut want_b = Vec::new();
        let mut want_p = Vec::new();
        for (j, k) in probe.iter().enumerate() {
            if let Some(rows) = map.get(k) {
                for &i in rows {
                    want_b.push(i);
                    want_p.push(j);
                }
            }
        }
        let idx = IntIndex::build(&build);
        let mut got_b = Vec::new();
        let mut got_p = Vec::new();
        idx.probe_range(&probe, 0..probe.len(), &mut got_b, &mut got_p);
        assert_eq!(got_b, want_b);
        assert_eq!(got_p, want_p);
    }

    #[test]
    fn int_index_morsel_probes_concatenate() {
        let build = ragged_data(500);
        let probe = ragged_data(700);
        let idx = IntIndex::build(&build);
        let mut full_b = Vec::new();
        let mut full_p = Vec::new();
        idx.probe_range(&probe, 0..probe.len(), &mut full_b, &mut full_p);
        let mut split_b = Vec::new();
        let mut split_p = Vec::new();
        for start in (0..probe.len()).step_by(64) {
            let end = (start + 64).min(probe.len());
            idx.probe_range(&probe, start..end, &mut split_b, &mut split_p);
        }
        assert_eq!(full_b, split_b);
        assert_eq!(full_p, split_p);
    }

    #[test]
    fn int_index_empty_sides() {
        let idx = IntIndex::build(&[]);
        let mut b = Vec::new();
        let mut p = Vec::new();
        idx.probe_range(&[1, 2, 3], 0..3, &mut b, &mut p);
        assert!(b.is_empty() && p.is_empty());
        let idx = IntIndex::build(&[1, 2, 3]);
        idx.probe_range(&[], 0..0, &mut b, &mut p);
        assert!(b.is_empty() && p.is_empty());
    }

    #[test]
    fn group_ids_are_first_seen_dense() {
        let keys = vec![7, 7, 3, 7, 9, 3, 9, 9];
        let (gids, first_rows) = group_ids_i64(&keys);
        assert_eq!(gids, vec![0, 0, 1, 0, 2, 1, 2, 2]);
        assert_eq!(first_rows, vec![0, 2, 4]);
        let (empty_gids, empty_first) = group_ids_i64(&[]);
        assert!(empty_gids.is_empty() && empty_first.is_empty());
    }

    #[test]
    fn sum_matches_serial_f64_fold_under_guard() {
        let data = ragged_data(1003);
        let total = sum_i64_exact(&data).expect("small values pass the guard");
        let mut serial = 0.0f64;
        for &v in &data {
            serial += v as f64;
        }
        assert_eq!(serial, total as f64);
    }

    #[test]
    fn sum_refuses_when_f64_fold_may_round() {
        // Σ|v| ≥ 2^53: the serial f64 fold is not provably exact.
        let data = vec![(1i64 << 53) - 1, 1, -5];
        assert_eq!(sum_i64_exact(&data), None);
    }

    #[test]
    fn min_max_match_iterator_folds() {
        for n in [0usize, 1, 7, 8, 9, 200] {
            let data = ragged_data(n);
            assert_eq!(min_i64(&data), data.iter().copied().min(), "n={n}");
            assert_eq!(max_i64(&data), data.iter().copied().max(), "n={n}");
        }
    }

    #[test]
    fn hash_keys_match_single_hash() {
        let keys = ragged_data(37);
        let hashes = hash_keys_i64(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(hashes[i], hash_i64(k));
        }
    }
}
