//! Persistence: tables on disk behind `perfeval-store`'s real buffer
//! pool.
//!
//! [`Table::persist`](crate::Table::persist) writes each column as
//! chunked, checksummed, compressed segment files;
//! [`Catalog::open`](crate::Catalog::open) reopens a directory as a
//! catalog of **disk-backed** tables whose scans pull `Arc<Column>`
//! chunks through one shared [`BufferPool`] — zero-copy once resident,
//! real `pread(2)` on a miss. The pool's hit/miss counters are
//! measurements, which is what makes hot-vs-cold a controlled design
//! factor (E26) instead of a `memsim` model.
//!
//! Disk-backed tables are **read-only**: `push_row` returns an error.
//! Load data in memory, persist, reopen.
//!
//! ## Cold runs
//!
//! [`Storage::drop_caches`] models a restart: it empties the buffer
//! pool *and* advises the kernel to drop the segment files' page-cache
//! pages (`posix_fadvise(DONTNEED)`, best effort — a no-op on tmpfs).
//! [`Session::flush_caches`](crate::Session::flush_caches) calls it.
//!
//! ## Fault sites
//!
//! | site | keyed by | effect of a `FailIo` arm |
//! |------|----------|--------------------------|
//! | `store.write` | segment ordinal within one persist | torn write: segment truncated mid-payload under a full-payload checksum; the persist fails before its manifest commit, so reopening yields the pre-write state |
//! | `store.read`  | `(table_id << 40) \| (column << 20) \| chunk` | the chunk load fails with [`DbError::Io`]; the query errors, the session survives |

use crate::catalog::Catalog;
use crate::column::{Column, StrDict};
use crate::error::DbError;
use crate::table::Table;
use crate::types::DataType;
use perfeval_fault::FaultRegistry;
use perfeval_store::{
    quarantine_unreferenced, read_segment, write_segment, BufferPool, CatalogManifest, ChunkRef,
    ColumnData, ColumnManifest, Evict, PoolCounters, SegKey, StoreError, TableManifest, TypeTag,
};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default buffer-pool budget: 64 MiB.
pub const DEFAULT_POOL_BYTES: u64 = 64 * 1024 * 1024;
/// Default rows per column chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 1 << 16;

/// Storage configuration for [`Catalog::persist_with`] /
/// [`Catalog::open_with`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Buffer-pool byte budget (decoded chunk bytes).
    pub pool_bytes: u64,
    /// Eviction policy — a design factor.
    pub evict: Evict,
    /// Rows per column chunk at persist time.
    pub chunk_rows: usize,
    /// Fault registry consulted at the `store.write` / `store.read`
    /// sites.
    pub faults: Option<Arc<FaultRegistry>>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            pool_bytes: DEFAULT_POOL_BYTES,
            evict: Evict::Lru,
            chunk_rows: DEFAULT_CHUNK_ROWS,
            faults: None,
        }
    }
}

impl StoreConfig {
    /// Sets the pool budget in bytes.
    pub fn pool_bytes(mut self, bytes: u64) -> Self {
        self.pool_bytes = bytes;
        self
    }

    /// Sets the eviction policy.
    pub fn evict(mut self, evict: Evict) -> Self {
        self.evict = evict;
        self
    }

    /// Sets the rows-per-chunk granularity.
    pub fn chunk_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "chunk_rows must be at least 1");
        self.chunk_rows = rows;
        self
    }

    /// Arms a fault registry for the storage sites.
    pub fn faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// The shared storage state behind an opened catalog: root directory,
/// buffer pool, fault registry, and the quarantine report.
#[derive(Debug)]
pub struct Storage {
    root: PathBuf,
    pool: Mutex<BufferPool<Column>>,
    faults: Option<Arc<FaultRegistry>>,
    /// `table/file` names moved to quarantine at open — the counted,
    /// never-silent corruption report.
    quarantined: Vec<String>,
    /// Every committed segment path (for page-cache drops).
    segments: Vec<PathBuf>,
}

impl Storage {
    /// Root directory this catalog was opened from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cumulative real-I/O counters of the buffer pool.
    pub fn counters(&self) -> PoolCounters {
        self.pool.lock().expect("store pool lock").counters()
    }

    /// Bytes of decoded chunks currently cached.
    pub fn resident_bytes(&self) -> u64 {
        self.pool.lock().expect("store pool lock").resident_bytes()
    }

    /// The pool's byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.pool.lock().expect("store pool lock").capacity_bytes()
    }

    /// The pool's eviction policy.
    pub fn evict_policy(&self) -> Evict {
        self.pool.lock().expect("store pool lock").evict_policy()
    }

    /// Files quarantined when the catalog was opened (`table/file`
    /// names). Nonzero length means a torn generation or stray temp
    /// file was found — and counted, never silently dropped.
    pub fn quarantined(&self) -> &[String] {
        &self.quarantined
    }

    /// Honest cold run: drops every pool frame (a restart) and advises
    /// the kernel to forget the segment files' pages. Returns
    /// `(frames_dropped, files_page_cache_dropped)` — the second number
    /// is 0 on tmpfs or non-Linux hosts, where cold degrades gracefully
    /// to pool-cold-only.
    pub fn drop_caches(&self) -> (usize, usize) {
        let frames = self.pool.lock().expect("store pool lock").drop_all();
        let mut dropped = 0;
        for path in &self.segments {
            if perfeval_store::drop_page_cache(path) {
                dropped += 1;
            }
        }
        (frames, dropped)
    }

    fn load_chunk(&self, key: SegKey, path: &Path, fault_key: u64) -> Result<Arc<Column>, DbError> {
        let mut pool = self.pool.lock().expect("store pool lock");
        pool.get_or_load(key, || -> Result<(Column, u64), DbError> {
            let data = read_segment(path, self.faults.as_deref(), fault_key).map_err(store_err)?;
            let bytes = data.heap_bytes();
            Ok((column_from_data(data), bytes))
        })
    }
}

/// Disk backing of one table: its manifest plus the shared [`Storage`].
#[derive(Debug, Clone)]
pub(crate) struct DiskBacking {
    pub(crate) table_id: u32,
    pub(crate) dir: PathBuf,
    pub(crate) manifest: Arc<TableManifest>,
    pub(crate) store: Arc<Storage>,
}

impl DiskBacking {
    pub(crate) fn rows(&self) -> usize {
        self.manifest.rows as usize
    }

    /// Fetches one whole column through the pool. Single-chunk columns
    /// are pure `Arc` clones once resident (zero-copy); multi-chunk
    /// columns fetch each chunk through the pool and concatenate in
    /// serial order. Chunks are *not* pinned during assembly — the
    /// `Arc`s keep them alive — so a column bigger than the pool budget
    /// evicts its own head mid-scan rather than overcommitting, which
    /// is exactly the behavior the hot/cold experiment measures.
    pub(crate) fn fetch_column(&self, ci: usize) -> Result<Arc<Column>, DbError> {
        let col = &self.manifest.columns[ci];
        let dt = data_type_of(col.tag);
        match col.chunks.len() {
            0 => Ok(Arc::new(Column::new(dt))),
            1 => self.fetch_chunk(ci, 0),
            n => {
                let parts: Vec<Arc<Column>> = (0..n)
                    .map(|k| self.fetch_chunk(ci, k))
                    .collect::<Result<_, DbError>>()?;
                let refs: Vec<&Column> = parts.iter().map(Arc::as_ref).collect();
                Ok(Arc::new(Column::concat(dt, &refs)))
            }
        }
    }

    fn seg_key(&self, ci: usize, chunk: usize) -> SegKey {
        (self.table_id, ci as u32, chunk as u32)
    }

    fn fetch_chunk(&self, ci: usize, chunk: usize) -> Result<Arc<Column>, DbError> {
        let key = self.seg_key(ci, chunk);
        let path = self.dir.join(&self.manifest.columns[ci].chunks[chunk].file);
        self.store.load_chunk(key, &path, read_fault_key(key))
    }
}

/// The `store.read` fault key for a chunk: stable across runs, distinct
/// across tables/columns/chunks.
pub fn read_fault_key(key: SegKey) -> u64 {
    (u64::from(key.0) << 40) | (u64::from(key.1) << 20) | u64::from(key.2 & 0xf_ffff)
}

fn store_err(e: StoreError) -> DbError {
    DbError::Io(e.to_string())
}

pub(crate) fn data_type_of(tag: TypeTag) -> DataType {
    match tag {
        TypeTag::I64 => DataType::Int,
        TypeTag::F64 => DataType::Float,
        TypeTag::Str => DataType::Str,
        TypeTag::Bool => DataType::Bool,
    }
}

fn type_tag_of(dt: DataType) -> TypeTag {
    match dt {
        DataType::Int => TypeTag::I64,
        DataType::Float => TypeTag::F64,
        DataType::Str => TypeTag::Str,
        DataType::Bool => TypeTag::Bool,
    }
}

/// Decoded segment payload → engine column (vectors move; no copy).
fn column_from_data(data: ColumnData) -> Column {
    match data {
        ColumnData::I64(v) => Column::Int(v),
        ColumnData::F64(v) => Column::Float(v),
        ColumnData::Str { dict, codes } => Column::Str {
            dict: Arc::new(StrDict::from_values(dict)),
            codes,
        },
        ColumnData::Bool(v) => Column::Bool(v),
    }
}

/// One chunk of an engine column → segment payload. String chunks get a
/// chunk-local dictionary in first-seen order, so reloading and
/// concatenating chunks re-interns to exactly the dictionary a serial
/// build over the same rows would produce.
fn chunk_to_data(col: &Column, lo: usize, hi: usize) -> ColumnData {
    match col {
        Column::Int(v) => ColumnData::I64(v[lo..hi].to_vec()),
        Column::Float(v) => ColumnData::F64(v[lo..hi].to_vec()),
        Column::Bool(v) => ColumnData::Bool(v[lo..hi].to_vec()),
        Column::Str { dict, codes } => {
            let values = dict.values();
            let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
            let mut local: Vec<String> = Vec::new();
            let mut out = Vec::with_capacity(hi - lo);
            for &code in &codes[lo..hi] {
                let new = *remap.entry(code).or_insert_with(|| {
                    local.push(values[code as usize].clone());
                    (local.len() - 1) as u32
                });
                out.push(new);
            }
            ColumnData::Str {
                dict: local,
                codes: out,
            }
        }
    }
}

/// Persists one table into `root/<name>/` as a fresh generation and
/// commits its manifest. See the module docs for the crash-safety
/// protocol.
pub(crate) fn persist_table(
    table: &Table,
    root: &Path,
    config: &StoreConfig,
) -> Result<(), DbError> {
    if table.is_disk_backed() {
        return Err(DbError::Semantic(format!(
            "table {} is already disk-backed; reopen-and-persist is not supported",
            table.name()
        )));
    }
    let dir = root.join(table.name());
    std::fs::create_dir_all(&dir).map_err(|e| DbError::Io(e.to_string()))?;
    // A fresh generation never collides with live files; if the old
    // manifest is unreadable we still start a new generation past any
    // plausible old one.
    let old = TableManifest::load(&dir).ok().flatten();
    let generation = old.as_ref().map_or(1, |m| m.generation + 1);
    let chunk_rows = config.chunk_rows.max(1);
    let rows = table.row_count();
    let nchunks = rows.div_ceil(chunk_rows);
    let faults = config.faults.as_deref();
    let mut columns = Vec::with_capacity(table.column_count());
    let mut ordinal = 0u64;
    for ci in 0..table.column_count() {
        let col = table.column(ci);
        let mut chunks = Vec::with_capacity(nchunks);
        for k in 0..nchunks {
            let lo = k * chunk_rows;
            let hi = rows.min(lo + chunk_rows);
            let data = chunk_to_data(col, lo, hi);
            let file = TableManifest::seg_file(generation, ci, k);
            let info =
                write_segment(&dir.join(&file), &data, faults, ordinal).map_err(store_err)?;
            ordinal += 1;
            chunks.push(ChunkRef {
                file,
                rows: (hi - lo) as u64,
                bytes: info.file_bytes,
            });
        }
        columns.push(ColumnManifest {
            name: table.column_names()[ci].clone(),
            tag: type_tag_of(col.data_type()),
            chunks,
        });
    }
    let manifest = TableManifest {
        name: table.name().to_owned(),
        rows: rows as u64,
        chunk_rows: chunk_rows as u64,
        generation,
        columns,
    };
    manifest.commit(&dir).map_err(store_err)?;
    // The commit succeeded: the old generation is superseded; reclaim
    // it (best effort — anything left is quarantined at next open).
    if let Some(old) = old {
        let live: std::collections::HashSet<&str> = manifest
            .columns
            .iter()
            .flat_map(|c| c.chunks.iter().map(|ch| ch.file.as_str()))
            .collect();
        for c in &old.columns {
            for ch in &c.chunks {
                if !live.contains(ch.file.as_str()) {
                    let _ = std::fs::remove_file(dir.join(&ch.file));
                }
            }
        }
    }
    Ok(())
}

/// Persists every table of a catalog and commits the catalog manifest.
pub(crate) fn persist_catalog(
    catalog: &Catalog,
    root: &Path,
    config: &StoreConfig,
) -> Result<(), DbError> {
    std::fs::create_dir_all(root).map_err(|e| DbError::Io(e.to_string()))?;
    let names: Vec<String> = catalog
        .table_names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    for name in &names {
        persist_table(catalog.table(name)?, root, config)?;
    }
    CatalogManifest {
        tables: names.clone(),
    }
    .commit(root)
    .map_err(store_err)?;
    Ok(())
}

/// Opens a persisted catalog: loads manifests, quarantines anything
/// unreferenced (counted in [`Storage::quarantined`]), and builds
/// disk-backed tables sharing one buffer pool.
pub(crate) fn open_catalog(root: &Path, config: StoreConfig) -> Result<Catalog, DbError> {
    let cm = CatalogManifest::load(root)
        .map_err(store_err)?
        .ok_or_else(|| DbError::Io(format!("no persisted catalog at {}", root.display())))?;
    let mut quarantined = Vec::new();
    let mut segments = Vec::new();
    let mut manifests = Vec::new();
    for name in &cm.tables {
        let dir = root.join(name);
        let manifest = TableManifest::load(&dir)
            .map_err(store_err)?
            .ok_or_else(|| DbError::Io(format!("table {name} listed but has no manifest")))?;
        quarantined.extend(quarantine_unreferenced(root, &dir, &manifest).map_err(store_err)?);
        segments.extend(perfeval_store::segment_paths(&dir, &manifest));
        manifests.push((dir, manifest));
    }
    let store = Arc::new(Storage {
        root: root.to_owned(),
        pool: Mutex::new(BufferPool::new(config.pool_bytes, config.evict)),
        faults: config.faults,
        quarantined,
        segments,
    });
    let mut catalog = Catalog::new();
    for (table_id, (dir, manifest)) in manifests.into_iter().enumerate() {
        let backing = DiskBacking {
            table_id: table_id as u32,
            dir,
            manifest: Arc::new(manifest),
            store: Arc::clone(&store),
        };
        catalog.register(Table::from_backing(backing))?;
    }
    catalog.attach_storage(store);
    Ok(catalog)
}
