//! Expressions: the AST shared by predicates, projections, and aggregate
//! arguments, with name binding and row-wise evaluation.

use crate::error::DbError;
use crate::types::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// True for comparison operators (result type BOOL).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// SQL rendering.
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Unresolved column reference (by name).
    Column(String),
    /// Resolved column reference (by position in the input schema).
    ColumnIdx(usize),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience: column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_owned())
    }

    /// Convenience: literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    /// Convenience: binary expression.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Resolves all column names to positions in `schema`; returns the
    /// bound copy.
    pub fn bind(&self, schema: &[(String, DataType)]) -> Result<Expr, DbError> {
        match self {
            Expr::Column(name) => {
                let idx = schema
                    .iter()
                    .position(|(n, _)| n == name)
                    .ok_or_else(|| DbError::UnknownColumn(name.clone()))?;
                Ok(Expr::ColumnIdx(idx))
            }
            Expr::ColumnIdx(i) => {
                if *i >= schema.len() {
                    return Err(DbError::Semantic(format!(
                        "column index {i} out of range for schema of {} columns",
                        schema.len()
                    )));
                }
                Ok(Expr::ColumnIdx(*i))
            }
            Expr::Literal(v) => Ok(Expr::Literal(v.clone())),
            Expr::Binary { op, left, right } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            }),
            Expr::Not(inner) => Ok(Expr::Not(Box::new(inner.bind(schema)?))),
        }
    }

    /// Static result type against `schema` (columns must be bound or
    /// bindable).
    pub fn data_type(&self, schema: &[(String, DataType)]) -> Result<DataType, DbError> {
        match self {
            Expr::Column(name) => schema
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| *t)
                .ok_or_else(|| DbError::UnknownColumn(name.clone())),
            Expr::ColumnIdx(i) => schema
                .get(*i)
                .map(|(_, t)| *t)
                .ok_or_else(|| DbError::Semantic(format!("column index {i} out of range"))),
            Expr::Literal(v) => v
                .data_type()
                .ok_or_else(|| DbError::Semantic("NULL literal has no type".into())),
            Expr::Binary { op, left, right } => {
                let lt = left.data_type(schema)?;
                let rt = right.data_type(schema)?;
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Ok(DataType::Bool)
                } else {
                    // Arithmetic: float if either side is float.
                    match (lt, rt) {
                        (DataType::Int, DataType::Int) => Ok(DataType::Int),
                        (DataType::Float, DataType::Int)
                        | (DataType::Int, DataType::Float)
                        | (DataType::Float, DataType::Float) => Ok(DataType::Float),
                        _ => Err(DbError::TypeMismatch(format!(
                            "arithmetic {lt} {} {rt}",
                            op.sql()
                        ))),
                    }
                }
            }
            Expr::Not(inner) => {
                let t = inner.data_type(schema)?;
                if t == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(DbError::TypeMismatch(format!("NOT applied to {t}")))
                }
            }
        }
    }

    /// Evaluates against one row. Columns must be bound (`ColumnIdx`).
    pub fn eval(&self, row: &[Value]) -> Result<Value, DbError> {
        match self {
            Expr::Column(name) => Err(DbError::Semantic(format!(
                "unbound column '{name}' at evaluation time"
            ))),
            Expr::ColumnIdx(i) => Ok(row[*i].clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binop(*op, &l, &r)
            }
            Expr::Not(inner) => match inner.eval(row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(DbError::TypeMismatch(format!("NOT {other:?}"))),
            },
        }
    }

    /// True if this expression references no columns (constant foldable).
    pub fn is_constant(&self) -> bool {
        match self {
            Expr::Column(_) | Expr::ColumnIdx(_) => false,
            Expr::Literal(_) => true,
            Expr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            Expr::Not(inner) => inner.is_constant(),
        }
    }

    /// Column indices referenced by this (bound) expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::ColumnIdx(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(inner) => inner.referenced_columns(out),
            Expr::Column(_) | Expr::Literal(_) => {}
        }
    }

    /// SQL-ish rendering for EXPLAIN output. `names` supplies column names
    /// for bound indices (pass the input schema names).
    pub fn render(&self, names: &[String]) -> String {
        match self {
            Expr::Column(n) => n.clone(),
            Expr::ColumnIdx(i) => names.get(*i).cloned().unwrap_or_else(|| format!("#{i}")),
            Expr::Literal(v) => match v {
                Value::Str(s) => format!("'{s}'"),
                other => other.render(),
            },
            Expr::Binary { op, left, right } => format!(
                "({} {} {})",
                left.render(names),
                op.sql(),
                right.render(names)
            ),
            Expr::Not(inner) => format!("NOT {}", inner.render(names)),
        }
    }
}

/// Evaluates a binary operation on two scalars with SQL NULL semantics.
pub fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, DbError> {
    use BinOp::*;
    if matches!(l, Value::Null) || matches!(r, Value::Null) {
        return Ok(Value::Null);
    }
    match op {
        And | Or => {
            let (a, b) = match (l.as_bool(), r.as_bool()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(DbError::TypeMismatch(format!(
                        "{} requires booleans, got {l:?}, {r:?}",
                        op.sql()
                    )))
                }
            };
            Ok(Value::Bool(if op == And { a && b } else { a || b }))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = l
                .sql_cmp(r)
                .ok_or_else(|| DbError::TypeMismatch(format!("cannot compare {l:?} with {r:?}")))?;
            use std::cmp::Ordering::*;
            let b = match op {
                Eq => ord == Equal,
                Ne => ord != Equal,
                Lt => ord == Less,
                Le => ord != Greater,
                Gt => ord == Greater,
                Ge => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => match (l, r) {
            (Value::Int(a), Value::Int(b)) => Ok(match op {
                Add => Value::Int(a.wrapping_add(*b)),
                Sub => Value::Int(a.wrapping_sub(*b)),
                Mul => Value::Int(a.wrapping_mul(*b)),
                Div => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a / b)
                    }
                }
                _ => unreachable!(),
            }),
            _ => {
                let (a, b) = match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(DbError::TypeMismatch(format!("arithmetic on {l:?}, {r:?}"))),
                };
                Ok(Value::Float(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    _ => unreachable!(),
                }))
            }
        },
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(*)` / `COUNT(expr)`
    Count,
    /// `COUNT(DISTINCT expr)`
    CountDistinct,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFunc {
    /// SQL name.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::CountDistinct => "COUNT DISTINCT",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Renders a call with its argument text ("COUNT(DISTINCT x)").
    pub fn render_call(&self, arg: &str) -> String {
        match self {
            AggFunc::CountDistinct => format!("COUNT(DISTINCT {arg})"),
            other => format!("{}({arg})", other.sql()),
        }
    }

    /// Parses a SQL aggregate name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggFunc::Sum),
            "COUNT" => Some(AggFunc::Count),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Vec<(String, DataType)> {
        vec![
            ("id".to_owned(), DataType::Int),
            ("price".to_owned(), DataType::Float),
            ("name".to_owned(), DataType::Str),
        ]
    }

    #[test]
    fn bind_resolves_names() {
        let e = Expr::bin(BinOp::Gt, Expr::col("price"), Expr::lit(Value::Float(5.0)));
        let bound = e.bind(&schema()).unwrap();
        match &bound {
            Expr::Binary { left, .. } => assert_eq!(**left, Expr::ColumnIdx(1)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn bind_unknown_column_errors() {
        let e = Expr::col("ghost");
        assert!(matches!(e.bind(&schema()), Err(DbError::UnknownColumn(_))));
    }

    #[test]
    fn eval_arithmetic() {
        let row = vec![Value::Int(3), Value::Float(2.5), Value::Str("x".into())];
        let e = Expr::bin(
            BinOp::Mul,
            Expr::ColumnIdx(0),
            Expr::bin(BinOp::Add, Expr::ColumnIdx(1), Expr::lit(Value::Float(0.5))),
        );
        assert_eq!(e.eval(&row).unwrap(), Value::Float(9.0));
    }

    #[test]
    fn eval_comparison_and_logic() {
        let row = vec![Value::Int(3), Value::Float(2.5), Value::Str("x".into())];
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Ge, Expr::ColumnIdx(0), Expr::lit(Value::Int(3))),
            Expr::bin(BinOp::Lt, Expr::ColumnIdx(1), Expr::lit(Value::Float(3.0))),
        );
        assert_eq!(e.eval(&row).unwrap(), Value::Bool(true));
        let not = Expr::Not(Box::new(e));
        assert_eq!(not.eval(&row).unwrap(), Value::Bool(false));
    }

    #[test]
    fn null_propagates() {
        assert_eq!(
            eval_binop(BinOp::Add, &Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_binop(BinOp::Eq, &Value::Int(1), &Value::Null).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn integer_division_by_zero_is_null() {
        assert_eq!(
            eval_binop(BinOp::Div, &Value::Int(5), &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_binop(BinOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn mixed_arithmetic_is_float() {
        assert_eq!(
            eval_binop(BinOp::Add, &Value::Int(1), &Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            Expr::bin(BinOp::Add, Expr::col("id"), Expr::col("price"))
                .data_type(&schema())
                .unwrap(),
            DataType::Float
        );
    }

    #[test]
    fn type_errors_detected() {
        assert!(eval_binop(BinOp::Add, &Value::Str("a".into()), &Value::Int(1)).is_err());
        assert!(eval_binop(BinOp::And, &Value::Int(1), &Value::Bool(true)).is_err());
        let e = Expr::bin(BinOp::Add, Expr::col("name"), Expr::lit(Value::Int(1)));
        assert!(e.data_type(&schema()).is_err());
    }

    #[test]
    fn comparison_type_is_bool() {
        let e = Expr::bin(BinOp::Lt, Expr::col("id"), Expr::lit(Value::Int(5)));
        assert_eq!(e.data_type(&schema()).unwrap(), DataType::Bool);
    }

    #[test]
    fn constantness_and_references() {
        let c = Expr::bin(
            BinOp::Add,
            Expr::lit(Value::Int(1)),
            Expr::lit(Value::Int(2)),
        );
        assert!(c.is_constant());
        let e = Expr::bin(BinOp::Add, Expr::ColumnIdx(2), Expr::ColumnIdx(0));
        assert!(!e.is_constant());
        let mut refs = Vec::new();
        e.referenced_columns(&mut refs);
        assert_eq!(refs, vec![2, 0]);
    }

    #[test]
    fn render_is_readable() {
        let names: Vec<String> = schema().into_iter().map(|(n, _)| n).collect();
        let e = Expr::bin(
            BinOp::Le,
            Expr::ColumnIdx(1),
            Expr::lit(Value::Str("abc".into())),
        );
        assert_eq!(e.render(&names), "(price <= 'abc')");
    }

    #[test]
    fn unbound_eval_is_an_error() {
        let e = Expr::col("id");
        assert!(e.eval(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("MAX"), Some(AggFunc::Max));
        assert_eq!(AggFunc::parse("median"), None);
        assert_eq!(AggFunc::Avg.sql(), "AVG");
    }
}
