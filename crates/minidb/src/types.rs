//! Scalar values and data types.

/// The engine's column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for dates as days-since-epoch).
    Int,
    /// 64-bit float.
    Float,
    /// Dictionary-encoded string.
    Str,
    /// Boolean.
    Bool,
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Bool => "BOOL",
        })
    }
}

/// A scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Null => None,
        }
    }

    /// Numeric view as f64 (Int is widened); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for non-ints.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view; `None` for non-bools.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison. Returns `None` if either side is
    /// NULL or the types are incomparable (Int and Float compare
    /// numerically).
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Float(_), Float(_)) | (Int(_), Float(_)) | (Float(_), Int(_)) => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
            _ => None,
        }
    }

    /// Renders the value the way the result printer does.
    pub fn render(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f:.4}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Null => "NULL".to_owned(),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(DataType::Str.to_string(), "STRING");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Str("1".into())), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert_eq!(
            Value::Str("abc".into()).sql_cmp(&Value::Str("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Float(1.5).render(), "1.5000");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Str("hi".into()).render(), "hi");
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
