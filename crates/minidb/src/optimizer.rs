//! A small rule-based optimizer.
//!
//! Slide 42's warning — *"DBMS configuration and tuning ⇒ factor x
//! performance difference"* and the hand-tuned-prototype-vs-out-of-the-box
//! trap — only bites if the system under test actually *has* optimization
//! levers. `minidb` has three, each independently switchable so experiments
//! can ablate them:
//!
//! * **constant folding** — evaluate constant subexpressions once;
//! * **filter pushdown** — move single-side conjuncts of a post-join filter
//!   below the join;
//! * **projection pruning** — restrict scans to the columns the query
//!   actually references.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::expr::{eval_binop, BinOp, Expr};
use crate::plan::Plan;

/// Which rules run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Fold constant subexpressions.
    pub constant_folding: bool,
    /// Push filters below joins.
    pub filter_pushdown: bool,
    /// Prune unused columns at scans.
    pub projection_pruning: bool,
    /// Fuse Sort + Limit into TopN (bounded-heap selection).
    pub topn_fusion: bool,
}

impl OptimizerConfig {
    /// All rules on (the default configuration).
    pub fn all() -> Self {
        OptimizerConfig {
            constant_folding: true,
            filter_pushdown: true,
            projection_pruning: true,
            topn_fusion: true,
        }
    }

    /// All rules off — the "out-of-the-box, untuned" configuration.
    pub fn none() -> Self {
        OptimizerConfig {
            constant_folding: false,
            filter_pushdown: false,
            projection_pruning: false,
            topn_fusion: false,
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// Optimizes a plan under the given configuration.
pub fn optimize(plan: Plan, catalog: &Catalog, config: OptimizerConfig) -> Result<Plan, DbError> {
    let mut plan = plan;
    if config.constant_folding {
        plan = fold_plan(plan);
    }
    if config.filter_pushdown {
        plan = pushdown_plan(plan, catalog)?;
    }
    if config.projection_pruning {
        plan = prune_plan(plan, catalog)?;
    }
    if config.topn_fusion {
        plan = fuse_topn(plan);
    }
    Ok(plan)
}

/// Rewrites `Limit(Sort(x))` into `TopN(x)`: the executor then keeps a
/// bounded set of the best `n` rows instead of fully sorting the input.
fn fuse_topn(plan: Plan) -> Plan {
    match plan {
        Plan::Limit { input, n } => match fuse_topn(*input) {
            Plan::Sort { input, keys } => Plan::TopN { input, keys, n },
            other => Plan::Limit {
                input: Box::new(other),
                n,
            },
        },
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(fuse_topn(*input)),
            predicate,
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(fuse_topn(*input)),
            exprs,
        },
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
        } => Plan::Join {
            left: Box::new(fuse_topn(*left)),
            right: Box::new(fuse_topn(*right)),
            left_key,
            right_key,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(fuse_topn(*input)),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(fuse_topn(*input)),
            keys,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(fuse_topn(*input)),
        },
        topn @ Plan::TopN { .. } => topn,
        scan @ Plan::Scan { .. } => scan,
    }
}

// ---------------------------------------------------------------- folding

fn fold_expr(e: Expr) -> Expr {
    match e {
        Expr::Binary { op, left, right } => {
            let l = fold_expr(*left);
            let r = fold_expr(*right);
            if let (Expr::Literal(a), Expr::Literal(b)) = (&l, &r) {
                if let Ok(v) = eval_binop(op, a, b) {
                    return Expr::Literal(v);
                }
            }
            Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        Expr::Not(inner) => {
            let i = fold_expr(*inner);
            if let Expr::Literal(crate::types::Value::Bool(b)) = i {
                return Expr::Literal(crate::types::Value::Bool(!b));
            }
            Expr::Not(Box::new(i))
        }
        other => other,
    }
}

fn fold_plan(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(fold_plan(*input)),
            predicate: fold_expr(predicate),
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(fold_plan(*input)),
            exprs: exprs.into_iter().map(|(e, n)| (fold_expr(e), n)).collect(),
        },
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
        } => Plan::Join {
            left: Box::new(fold_plan(*left)),
            right: Box::new(fold_plan(*right)),
            left_key,
            right_key,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(fold_plan(*input)),
            group_by: group_by
                .into_iter()
                .map(|(e, n)| (fold_expr(e), n))
                .collect(),
            aggregates: aggregates
                .into_iter()
                .map(|(f, e, n)| (f, fold_expr(e), n))
                .collect(),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(fold_plan(*input)),
            keys: keys.into_iter().map(|(e, d)| (fold_expr(e), d)).collect(),
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(fold_plan(*input)),
            n,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(fold_plan(*input)),
        },
        Plan::TopN { input, keys, n } => Plan::TopN {
            input: Box::new(fold_plan(*input)),
            keys: keys.into_iter().map(|(e, d)| (fold_expr(e), d)).collect(),
            n,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

// --------------------------------------------------------------- pushdown

/// Collects unbound column names referenced by an expression.
pub fn column_names(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Column(n) => {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        Expr::Binary { left, right, .. } => {
            column_names(left, out);
            column_names(right, out);
        }
        Expr::Not(inner) => column_names(inner, out),
        Expr::ColumnIdx(_) | Expr::Literal(_) => {}
    }
}

fn schema_has_all(names: &[String], schema: &[(String, crate::types::DataType)]) -> bool {
    names.iter().all(|n| schema.iter().any(|(s, _)| s == n))
}

fn conjuncts_of(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            conjuncts_of(*left, out);
            conjuncts_of(*right, out);
        }
        other => out.push(other),
    }
}

fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
    let mut acc = exprs.pop()?;
    while let Some(e) = exprs.pop() {
        acc = Expr::bin(BinOp::And, e, acc);
    }
    Some(acc)
}

fn pushdown_plan(plan: Plan, catalog: &Catalog) -> Result<Plan, DbError> {
    Ok(match plan {
        Plan::Filter { input, predicate } => {
            let input = pushdown_plan(*input, catalog)?;
            if let Plan::Join {
                left,
                right,
                left_key,
                right_key,
            } = input
            {
                let ls = left.schema(catalog)?;
                let rs = right.schema(catalog)?;
                let mut cs = Vec::new();
                conjuncts_of(predicate, &mut cs);
                let mut to_left = Vec::new();
                let mut to_right = Vec::new();
                let mut keep = Vec::new();
                for c in cs {
                    let mut names = Vec::new();
                    column_names(&c, &mut names);
                    if schema_has_all(&names, &ls) {
                        to_left.push(c);
                    } else if schema_has_all(&names, &rs) {
                        to_right.push(c);
                    } else {
                        keep.push(c);
                    }
                }
                let mut new_left = *left;
                if let Some(p) = and_all(to_left) {
                    new_left = Plan::Filter {
                        input: Box::new(new_left),
                        predicate: p,
                    };
                }
                let mut new_right = *right;
                if let Some(p) = and_all(to_right) {
                    new_right = Plan::Filter {
                        input: Box::new(new_right),
                        predicate: p,
                    };
                }
                let mut out = Plan::Join {
                    left: Box::new(pushdown_plan(new_left, catalog)?),
                    right: Box::new(pushdown_plan(new_right, catalog)?),
                    left_key,
                    right_key,
                };
                if let Some(p) = and_all(keep) {
                    out = Plan::Filter {
                        input: Box::new(out),
                        predicate: p,
                    };
                }
                out
            } else {
                Plan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(pushdown_plan(*input, catalog)?),
            exprs,
        },
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
        } => Plan::Join {
            left: Box::new(pushdown_plan(*left, catalog)?),
            right: Box::new(pushdown_plan(*right, catalog)?),
            left_key,
            right_key,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(pushdown_plan(*input, catalog)?),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(pushdown_plan(*input, catalog)?),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(pushdown_plan(*input, catalog)?),
            n,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(pushdown_plan(*input, catalog)?),
        },
        Plan::TopN { input, keys, n } => Plan::TopN {
            input: Box::new(pushdown_plan(*input, catalog)?),
            keys,
            n,
        },
        scan @ Plan::Scan { .. } => scan,
    })
}

// ---------------------------------------------------------------- pruning

/// Collects every column name the plan references above scans.
fn referenced_names(plan: &Plan, out: &mut Vec<String>) {
    match plan {
        Plan::Scan { .. } => {}
        Plan::Filter { input, predicate } => {
            column_names(predicate, out);
            referenced_names(input, out);
        }
        Plan::Project { input, exprs } => {
            for (e, _) in exprs {
                column_names(e, out);
            }
            referenced_names(input, out);
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            column_names(left_key, out);
            column_names(right_key, out);
            referenced_names(left, out);
            referenced_names(right, out);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            for (e, _) in group_by {
                column_names(e, out);
            }
            for (_, e, _) in aggregates {
                column_names(e, out);
            }
            referenced_names(input, out);
        }
        Plan::Sort { input, keys } => {
            for (e, _) in keys {
                column_names(e, out);
            }
            referenced_names(input, out);
        }
        Plan::Limit { input, .. } | Plan::Distinct { input } => referenced_names(input, out),
        Plan::TopN { input, keys, .. } => {
            for (e, _) in keys {
                column_names(e, out);
            }
            referenced_names(input, out);
        }
    }
}

/// True if the plan's *output* is consumed positionally (wildcard selects):
/// a root without a Project or Aggregate means all scan columns flow to the
/// user and none may be pruned.
fn has_projection_boundary(plan: &Plan) -> bool {
    match plan {
        Plan::Project { .. } | Plan::Aggregate { .. } => true,
        Plan::Scan { .. } | Plan::Join { .. } => false,
        Plan::Filter { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Distinct { input }
        | Plan::TopN { input, .. } => has_projection_boundary(input),
    }
}

fn prune_scans(plan: Plan, catalog: &Catalog, needed: &[String]) -> Result<Plan, DbError> {
    Ok(match plan {
        Plan::Scan { table, projection } => {
            if projection.is_some() {
                Plan::Scan { table, projection }
            } else {
                let t = catalog.table(&table)?;
                let idxs: Vec<usize> = t
                    .column_names()
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| needed.contains(n))
                    .map(|(i, _)| i)
                    .collect();
                // Keep at least one column so row counts survive.
                let projection = if idxs.is_empty() {
                    Some(vec![0])
                } else if idxs.len() == t.column_count() {
                    None
                } else {
                    Some(idxs)
                };
                Plan::Scan { table, projection }
            }
        }
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(prune_scans(*input, catalog, needed)?),
            predicate,
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(prune_scans(*input, catalog, needed)?),
            exprs,
        },
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
        } => Plan::Join {
            left: Box::new(prune_scans(*left, catalog, needed)?),
            right: Box::new(prune_scans(*right, catalog, needed)?),
            left_key,
            right_key,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(prune_scans(*input, catalog, needed)?),
            group_by,
            aggregates,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(prune_scans(*input, catalog, needed)?),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(prune_scans(*input, catalog, needed)?),
            n,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(prune_scans(*input, catalog, needed)?),
        },
        Plan::TopN { input, keys, n } => Plan::TopN {
            input: Box::new(prune_scans(*input, catalog, needed)?),
            keys,
            n,
        },
    })
}

fn prune_plan(plan: Plan, catalog: &Catalog) -> Result<Plan, DbError> {
    if !has_projection_boundary(&plan) {
        return Ok(plan); // wildcard query: everything is needed
    }
    let mut needed = Vec::new();
    referenced_names(&plan, &mut needed);
    prune_scans(plan, catalog, &needed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecMode, Executor};
    use crate::parser::{parse, to_plan};
    use crate::table::TableBuilder;
    use crate::types::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = TableBuilder::new("t")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .column("c", DataType::Float)
            .column("d", DataType::Str)
            .build();
        for i in 0..20 {
            t.push_row(vec![
                Value::Int(i),
                Value::Int(i * 2),
                Value::Float(i as f64),
                Value::Str(format!("s{}", i % 3)),
            ])
            .unwrap();
        }
        c.register(t).unwrap();
        let mut u = TableBuilder::new("u")
            .column("a2", DataType::Int)
            .column("tag", DataType::Str)
            .build();
        for i in 0..20 {
            u.push_row(vec![Value::Int(i), Value::Str(format!("tag{i}"))])
                .unwrap();
        }
        c.register(u).unwrap();
        c
    }

    fn plan_for(c: &Catalog, sql: &str) -> Plan {
        let stmt = parse(sql).unwrap();
        to_plan(&stmt, |t| Ok(c.table(t)?.column_names().to_vec())).unwrap()
    }

    #[test]
    fn constant_folding_reduces_literals() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::lit(Value::Int(2)),
            Expr::bin(
                BinOp::Add,
                Expr::lit(Value::Int(3)),
                Expr::lit(Value::Int(4)),
            ),
        );
        assert_eq!(fold_expr(e), Expr::lit(Value::Int(14)));
    }

    #[test]
    fn folding_preserves_columns() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::col("a"),
            Expr::bin(
                BinOp::Add,
                Expr::lit(Value::Int(1)),
                Expr::lit(Value::Int(2)),
            ),
        );
        let folded = fold_expr(e);
        assert_eq!(folded.render(&[]), "(a + 3)");
    }

    #[test]
    fn pushdown_moves_single_side_conjuncts() {
        let c = catalog();
        let plan = plan_for(
            &c,
            "SELECT b FROM t JOIN u ON a = a2 WHERE b > 3 AND tag = 'tag5'",
        );
        let optimized = optimize(plan, &c, OptimizerConfig::all()).unwrap();
        let text = optimized.explain(&c);
        // The filter must now appear under the join, on both sides.
        let join_line = text.lines().position(|l| l.contains("HashJoin")).unwrap();
        let filter_lines: Vec<usize> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("Filter"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(filter_lines.len(), 2, "plan:\n{text}");
        assert!(filter_lines.iter().all(|&i| i > join_line), "plan:\n{text}");
    }

    #[test]
    fn pushdown_preserves_results() {
        let c = catalog();
        let sql = "SELECT b, tag FROM t JOIN u ON a = a2 WHERE b > 3 AND tag <> 'tag9' ORDER BY b";
        let plan = plan_for(&c, sql);
        let plain = Executor::new(&c, ExecMode::Optimized).run(&plan).unwrap();
        let optimized_plan = optimize(plan, &c, OptimizerConfig::all()).unwrap();
        let opt = Executor::new(&c, ExecMode::Optimized)
            .run(&optimized_plan)
            .unwrap();
        assert_eq!(plain.rows, opt.rows);
    }

    #[test]
    fn pruning_restricts_scan_columns() {
        let c = catalog();
        let plan = plan_for(&c, "SELECT a FROM t WHERE b > 3");
        let optimized = optimize(plan, &c, OptimizerConfig::all()).unwrap();
        let text = optimized.explain(&c);
        assert!(text.contains("Scan t [a, b]"), "plan:\n{text}");
    }

    #[test]
    fn pruning_keeps_wildcard_intact() {
        let c = catalog();
        let plan = plan_for(&c, "SELECT * FROM t WHERE a > 3");
        let optimized = optimize(plan, &c, OptimizerConfig::all()).unwrap();
        let text = optimized.explain(&c);
        assert!(text.contains("Scan t [*]"), "plan:\n{text}");
    }

    #[test]
    fn pruning_preserves_results() {
        let c = catalog();
        for sql in [
            "SELECT a FROM t WHERE b > 3 ORDER BY a",
            "SELECT d, SUM(c) FROM t GROUP BY d ORDER BY d",
            "SELECT b FROM t JOIN u ON a = a2 WHERE tag = 'tag5'",
        ] {
            let plan = plan_for(&c, sql);
            let plain = Executor::new(&c, ExecMode::Optimized).run(&plan).unwrap();
            let optimized_plan = optimize(plan, &c, OptimizerConfig::all()).unwrap();
            let opt = Executor::new(&c, ExecMode::Optimized)
                .run(&optimized_plan)
                .unwrap();
            assert_eq!(plain.rows, opt.rows, "sql: {sql}");
            assert_eq!(plain.column_names, opt.column_names, "sql: {sql}");
        }
    }

    #[test]
    fn none_config_is_identity() {
        let c = catalog();
        let plan = plan_for(
            &c,
            "SELECT a FROM t JOIN u ON a = a2 WHERE b > 1 AND tag = 'x'",
        );
        let same = optimize(plan.clone(), &c, OptimizerConfig::none()).unwrap();
        assert_eq!(plan, same);
    }

    #[test]
    fn aggregate_only_queries_prune_to_needed_column() {
        let c = catalog();
        let plan = plan_for(&c, "SELECT MAX(c) FROM t");
        let optimized = optimize(plan, &c, OptimizerConfig::all()).unwrap();
        let text = optimized.explain(&c);
        assert!(text.contains("Scan t [c]"), "plan:\n{text}");
    }
}
