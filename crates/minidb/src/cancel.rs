//! Cooperative query cancellation.
//!
//! Overload protection needs queries that can be *stopped*, not just
//! started: a server shedding load must be able to bound how long a
//! query occupies its shard once a deadline passes. minidb has no
//! preemption — execution is ordinary Rust code on the shard (or pool)
//! threads — so cancellation is cooperative: a [`CancelToken`] travels
//! into the executor and is **polled at operator and morsel
//! boundaries**. That granularity is deliberate:
//!
//! * a morsel is thousands of rows, so the poll (one relaxed atomic
//!   load, plus a clock read only when a deadline is set) is invisible
//!   next to the work it gates — the committed BENCH baseline does not
//!   move;
//! * a morsel is also *small* — a cancelled query frees its workers
//!   within one morsel of work, which is the bounded-time guarantee the
//!   admission layer relies on.
//!
//! Partial work is discarded bit-safely: workers return
//! [`DbError::Cancelled`] instead of a batch, the morsel merge
//! propagates the first error, and nothing half-built escapes — a
//! cancelled query leaves the session exactly as it found it, so the
//! same connection can immediately run the next query and get answers
//! bit-identical to serial execution (pinned by `net`'s tests).

use crate::error::DbError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap-to-clone cancellation handle shared between the party that
/// cancels (a server enforcing a deadline, a test, a fault site) and
/// the executor that polls.
///
/// Two independent triggers, whichever fires first:
/// * the **flag** — raised explicitly by [`CancelToken::cancel`];
/// * the **deadline** — a wall-clock instant fixed at construction by
///   [`CancelToken::with_deadline_ms`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels `ms` milliseconds from now (and can
    /// still be cancelled explicitly before that).
    pub fn with_deadline_ms(ms: f64) -> Self {
        CancelToken::new().deadline_in_ms(ms)
    }

    /// Returns this token with a deadline `ms` milliseconds from now,
    /// sharing the explicit-cancel flag with the original — the shape a
    /// server uses to combine an external cancel handle with a
    /// per-query deadline.
    pub fn deadline_in_ms(mut self, ms: f64) -> Self {
        self.deadline = Some(Instant::now() + Duration::from_secs_f64((ms / 1e3).max(0.0)));
        self
    }

    /// Raises the cancel flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once the flag is raised or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Milliseconds until the deadline (`None` if no deadline is set;
    /// clamped at zero once it has passed). Servers use this to size
    /// the execution budget after queue wait.
    pub fn remaining_ms(&self) -> Option<f64> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()).as_secs_f64() * 1e3)
    }

    /// The poll the executor calls at operator and morsel boundaries:
    /// `Ok(())` to keep going, [`DbError::Cancelled`] to unwind. The
    /// error message names which trigger fired.
    pub fn check(&self) -> Result<(), DbError> {
        if self.flag.load(Ordering::Acquire) {
            return Err(DbError::Cancelled("query cancelled".to_owned()));
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(DbError::Cancelled("deadline exceeded".to_owned()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert_eq!(t.remaining_ms(), None);
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(
            clone.check(),
            Err(DbError::Cancelled("query cancelled".to_owned()))
        );
    }

    #[test]
    fn expired_deadline_cancels_and_names_the_trigger() {
        let t = CancelToken::with_deadline_ms(0.0);
        assert!(t.is_cancelled());
        match t.check() {
            Err(DbError::Cancelled(m)) => assert!(m.contains("deadline"), "{m}"),
            other => panic!("expected deadline cancellation, got {other:?}"),
        }
        assert_eq!(t.remaining_ms(), Some(0.0));
    }

    #[test]
    fn future_deadline_does_not_cancel_yet() {
        let t = CancelToken::with_deadline_ms(60_000.0);
        assert!(!t.is_cancelled());
        assert!(t.remaining_ms().unwrap() > 59_000.0);
    }

    #[test]
    fn deadline_in_ms_shares_the_flag() {
        let t = CancelToken::new();
        let with_deadline = t.clone().deadline_in_ms(60_000.0);
        t.cancel();
        assert!(with_deadline.is_cancelled(), "flag is shared, not copied");
    }
}
