//! Logical query plans and EXPLAIN rendering.
//!
//! EXPLAIN is the first tool the tutorial's "Find out what happens!" chapter
//! lists (db2expln, `EXPLAIN select …` in MySQL/PostgreSQL/MonetDB); every
//! [`Plan`] renders itself as an indented operator tree.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::expr::{AggFunc, Expr};
use crate::types::DataType;

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base-table scan; `projection` (if set, by the optimizer) restricts
    /// the columns read.
    Scan {
        /// Table name.
        table: String,
        /// Optional column-index projection (pruned read).
        projection: Option<Vec<usize>>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Column projection / computation.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// (expression, output name) pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Hash equi-join.
    Join {
        /// Left (build) input.
        left: Box<Plan>,
        /// Right (probe) input.
        right: Box<Plan>,
        /// Join key over the left schema.
        left_key: Expr,
        /// Join key over the right schema.
        right_key: Expr,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-by expressions (empty = single global group).
        group_by: Vec<(Expr, String)>,
        /// (function, argument, output name); argument ignored for
        /// COUNT(*) which is encoded as `Literal(Int(1))`.
        aggregates: Vec<(AggFunc, Expr, String)>,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// (key expression, descending?) pairs, major key first.
        keys: Vec<(Expr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum rows to emit.
        n: usize,
    },
    /// Duplicate elimination (SELECT DISTINCT), preserving first-seen
    /// order.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Fused Sort + Limit: keep only the best `n` rows (optimizer-created;
    /// the parser never produces this directly).
    TopN {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, major first.
        keys: Vec<(Expr, bool)>,
        /// Rows to keep.
        n: usize,
    },
}

impl Plan {
    /// Derives the output schema against `catalog`.
    pub fn schema(&self, catalog: &Catalog) -> Result<Vec<(String, DataType)>, DbError> {
        match self {
            Plan::Scan { table, projection } => {
                let t = catalog.table(table)?;
                let full = t.schema();
                Ok(match projection {
                    None => full,
                    Some(idxs) => idxs.iter().map(|&i| full[i].clone()).collect(),
                })
            }
            Plan::Filter { input, .. } => input.schema(catalog),
            Plan::Project { input, exprs } => {
                let in_schema = input.schema(catalog)?;
                exprs
                    .iter()
                    .map(|(e, name)| Ok((name.clone(), e.data_type(&in_schema)?)))
                    .collect()
            }
            Plan::Join { left, right, .. } => {
                let mut schema = left.schema(catalog)?;
                schema.extend(right.schema(catalog)?);
                Ok(schema)
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema(catalog)?;
                let mut out = Vec::new();
                for (e, name) in group_by {
                    out.push((name.clone(), e.data_type(&in_schema)?));
                }
                for (func, arg, name) in aggregates {
                    let dt = match func {
                        AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
                        AggFunc::Avg => DataType::Float,
                        AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg.data_type(&in_schema)?,
                    };
                    out.push((name.clone(), dt));
                }
                Ok(out)
            }
            Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input }
            | Plan::TopN { input, .. } => input.schema(catalog),
        }
    }

    /// Renders the indented operator tree (EXPLAIN output).
    pub fn explain(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.explain_into(catalog, 0, &mut out);
        out
    }

    fn input_names(&self, catalog: &Catalog, input: &Plan) -> Vec<String> {
        input
            .schema(catalog)
            .map(|s| s.into_iter().map(|(n, _)| n).collect())
            .unwrap_or_default()
    }

    fn explain_into(&self, catalog: &Catalog, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table, projection } => {
                let cols = match projection {
                    None => "*".to_owned(),
                    Some(idxs) => {
                        let names: Vec<String> = catalog
                            .table(table)
                            .map(|t| idxs.iter().map(|&i| t.column_names()[i].clone()).collect())
                            .unwrap_or_default();
                        names.join(", ")
                    }
                };
                out.push_str(&format!("{pad}Scan {table} [{cols}]\n"));
            }
            Plan::Filter { input, predicate } => {
                let names = self.input_names(catalog, input);
                out.push_str(&format!("{pad}Filter {}\n", predicate.render(&names)));
                input.explain_into(catalog, depth + 1, out);
            }
            Plan::Project { input, exprs } => {
                let names = self.input_names(catalog, input);
                let list: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| format!("{} AS {n}", e.render(&names)))
                    .collect();
                out.push_str(&format!("{pad}Project {}\n", list.join(", ")));
                input.explain_into(catalog, depth + 1, out);
            }
            Plan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let ln = self.input_names(catalog, left);
                let rn = self.input_names(catalog, right);
                out.push_str(&format!(
                    "{pad}HashJoin {} = {}\n",
                    left_key.render(&ln),
                    right_key.render(&rn)
                ));
                left.explain_into(catalog, depth + 1, out);
                right.explain_into(catalog, depth + 1, out);
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let names = self.input_names(catalog, input);
                let groups: Vec<String> = group_by.iter().map(|(e, _)| e.render(&names)).collect();
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|(f, e, n)| format!("{} AS {n}", f.render_call(&e.render(&names))))
                    .collect();
                out.push_str(&format!(
                    "{pad}HashAggregate group=[{}] aggs=[{}]\n",
                    groups.join(", "),
                    aggs.join(", ")
                ));
                input.explain_into(catalog, depth + 1, out);
            }
            Plan::Sort { input, keys } => {
                let names = self.input_names(catalog, input);
                let list: Vec<String> = keys
                    .iter()
                    .map(|(e, desc)| {
                        format!("{}{}", e.render(&names), if *desc { " DESC" } else { "" })
                    })
                    .collect();
                out.push_str(&format!("{pad}Sort {}\n", list.join(", ")));
                input.explain_into(catalog, depth + 1, out);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(catalog, depth + 1, out);
            }
            Plan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(catalog, depth + 1, out);
            }
            Plan::TopN { input, keys, n } => {
                let names = self.input_names(catalog, input);
                let list: Vec<String> = keys
                    .iter()
                    .map(|(e, desc)| {
                        format!("{}{}", e.render(&names), if *desc { " DESC" } else { "" })
                    })
                    .collect();
                out.push_str(&format!("{pad}TopN {n} by {}\n", list.join(", ")));
                input.explain_into(catalog, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::table::TableBuilder;
    use crate::types::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = TableBuilder::new("items")
            .column("id", DataType::Int)
            .column("price", DataType::Float)
            .build();
        t.push_row(vec![Value::Int(1), Value::Float(2.0)]).unwrap();
        c.register(t).unwrap();
        c
    }

    #[test]
    fn scan_schema() {
        let c = catalog();
        let p = Plan::Scan {
            table: "items".into(),
            projection: None,
        };
        assert_eq!(
            p.schema(&c).unwrap(),
            vec![
                ("id".to_owned(), DataType::Int),
                ("price".to_owned(), DataType::Float)
            ]
        );
        let pruned = Plan::Scan {
            table: "items".into(),
            projection: Some(vec![1]),
        };
        assert_eq!(
            pruned.schema(&c).unwrap(),
            vec![("price".to_owned(), DataType::Float)]
        );
    }

    #[test]
    fn aggregate_schema_types() {
        let c = catalog();
        let p = Plan::Aggregate {
            input: Box::new(Plan::Scan {
                table: "items".into(),
                projection: None,
            }),
            group_by: vec![(Expr::ColumnIdx(0), "id".into())],
            aggregates: vec![
                (AggFunc::Sum, Expr::ColumnIdx(1), "total".into()),
                (AggFunc::Count, Expr::Literal(Value::Int(1)), "n".into()),
                (AggFunc::Avg, Expr::ColumnIdx(1), "mean".into()),
            ],
        };
        let schema = p.schema(&c).unwrap();
        assert_eq!(schema[0], ("id".to_owned(), DataType::Int));
        assert_eq!(schema[1], ("total".to_owned(), DataType::Float));
        assert_eq!(schema[2], ("n".to_owned(), DataType::Int));
        assert_eq!(schema[3], ("mean".to_owned(), DataType::Float));
    }

    #[test]
    fn join_schema_concatenates() {
        let mut c = catalog();
        let t2 = TableBuilder::new("tags")
            .column("item_id", DataType::Int)
            .column("tag", DataType::Str)
            .build();
        c.register(t2).unwrap();
        let p = Plan::Join {
            left: Box::new(Plan::Scan {
                table: "items".into(),
                projection: None,
            }),
            right: Box::new(Plan::Scan {
                table: "tags".into(),
                projection: None,
            }),
            left_key: Expr::ColumnIdx(0),
            right_key: Expr::ColumnIdx(0),
        };
        let names: Vec<String> = p.schema(&c).unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["id", "price", "item_id", "tag"]);
    }

    #[test]
    fn explain_renders_tree() {
        let c = catalog();
        let p = Plan::Limit {
            n: 10,
            input: Box::new(Plan::Filter {
                predicate: Expr::bin(
                    BinOp::Gt,
                    Expr::ColumnIdx(1),
                    Expr::Literal(Value::Float(1.0)),
                ),
                input: Box::new(Plan::Scan {
                    table: "items".into(),
                    projection: None,
                }),
            }),
        };
        let text = p.explain(&c);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("Limit 10"));
        assert!(lines[1].contains("Filter (price > 1.0)"));
        assert!(lines[2].trim_start().starts_with("Scan items"));
        // Indentation grows with depth.
        assert!(lines[2].starts_with("    "));
    }

    #[test]
    fn schema_error_propagates() {
        let c = catalog();
        let p = Plan::Scan {
            table: "missing".into(),
            projection: None,
        };
        assert!(matches!(p.schema(&c), Err(DbError::UnknownTable(_))));
    }
}
