//! Morsel-driven parallel operators for the optimized engine.
//!
//! When an [`Executor`](crate::exec::Executor) is configured with
//! `with_parallelism(n > 1)`, eligible plan shapes are taken over here and
//! split into fixed-size row-range *morsels* that worker threads pull from
//! a shared atomic cursor ([`perfeval_pool::parallel_map_traced`]):
//!
//! * **scan→filter→project pipelines** run whole per morsel, with the
//!   selection vector kept worker-local, and the per-column outputs are
//!   stitched back together in morsel-index order;
//! * **hash aggregation** groups each morsel locally, merges the group
//!   directories serially in morsel order (preserving the serial engine's
//!   first-seen group order), then finishes each group by replaying its
//!   rows in ascending original order — so float accumulators see exactly
//!   the serial addition sequence;
//! * **hash joins** build the table serially on the smaller input and
//!   probe in parallel over morsels of the other, concatenating the
//!   matched pairs in morsel order and canonicalizing so the output is
//!   independent of the build side.
//!
//! Every merge point is ordered by morsel index, never by completion
//! order, which makes the result **bit-identical to the serial engine**
//! for any thread count and morsel size — the property the correctness
//! suite asserts and exhibit E19 leans on ("same question, same answer,
//! different wall-clock").
//!
//! Operators that cannot split (`Sort`, `TopN`, `Limit`, `Distinct`) stay
//! serial; their inputs still recurse through [`try_parallel`]. Inputs
//! smaller than two morsels are declined (`Ok(None)`) *before* any I/O is
//! charged, so falling back to the serial path never double-counts
//! buffer-pool reads.

use crate::column::Column;
use crate::error::DbError;
use crate::exec::{
    bind_join_keys, canonicalize_join_pairs, choose_build_side, finish_aggregate_batch, plan_label,
    value_key, vectorized_aggregate, vectorized_eval, vectorized_filter, vectorized_filter_range,
    AggState, Batch, Executor, JoinBuild, Key, ProfileEntry,
};
use crate::expr::{AggFunc, Expr};
use crate::kernels::{Engine, Sel};
use crate::plan::Plan;
use crate::types::{DataType, Value};
use perfeval_pool::parallel_map_traced;
use perfeval_trace::{SpanGuard, Tracer};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Entry point from [`Executor::run_batch`]: runs `plan` morsel-parallel if
/// its shape is eligible and the input is big enough to split, otherwise
/// returns `Ok(None)` and the serial engine proceeds untouched.
pub(crate) fn try_parallel(
    ex: &mut Executor<'_>,
    plan: &Plan,
    depth: usize,
) -> Result<Option<Batch>, DbError> {
    match plan {
        Plan::Filter { .. } | Plan::Project { .. } => try_pipeline(ex, plan, depth),
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => try_aggregate(ex, plan, input, group_by, aggregates, depth),
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
        } => try_join(ex, left, right, left_key, right_key, depth).map(Some),
        _ => Ok(None),
    }
}

// --------------------------------------------------------------------
// Pipeline chains: scan → filter* → project* run whole per morsel.
// --------------------------------------------------------------------

/// A `Filter`/`Project` chain bottoming out in a `Scan`.
struct Chain<'p> {
    /// Chain nodes, root first (execution order is the reverse).
    stages: Vec<&'p Plan>,
    table: &'p str,
    projection: &'p Option<Vec<usize>>,
}

fn decompose(plan: &Plan) -> Option<Chain<'_>> {
    let mut stages = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            Plan::Filter { input, .. } | Plan::Project { input, .. } => {
                stages.push(cur);
                cur = input;
            }
            Plan::Scan { table, projection } => {
                return Some(Chain {
                    stages,
                    table,
                    projection,
                })
            }
            _ => return None,
        }
    }
}

/// One chain stage with its expressions bound to column indices.
enum BoundStage {
    Filter {
        pred: Expr,
    },
    Project {
        exprs: Vec<Expr>,
        names: Vec<String>,
        in_schema: Vec<(String, DataType)>,
    },
}

/// A chain checked for feasibility and fully bound — everything needed to
/// run morsels. Produced *before* any buffer-pool charge so a `None`
/// (too small, binding failed) falls back to the serial path without side
/// effects.
struct PreparedChain {
    scan_names: Vec<String>,
    scan_col_idxs: Vec<usize>,
    /// Stages in execution (leaf→root) order.
    stages: Vec<BoundStage>,
    /// Operator labels matching `stages` (leaf→root).
    labels: Vec<String>,
    out_schema: Vec<(String, DataType)>,
    rows: usize,
    morsels: usize,
}

fn prepare_chain(ex: &Executor<'_>, chain: &Chain<'_>) -> Result<Option<PreparedChain>, DbError> {
    let t = ex.catalog.table(chain.table)?;
    let rows = t.row_count();
    let morsels = rows.div_ceil(ex.parallel.morsel_rows);
    if morsels < 2 {
        return Ok(None);
    }
    let scan_col_idxs: Vec<usize> = match chain.projection {
        None => (0..t.column_count()).collect(),
        Some(idxs) => idxs.clone(),
    };
    let scan_names: Vec<String> = scan_col_idxs
        .iter()
        .map(|&i| t.column_names()[i].clone())
        .collect();
    let mut schema: Vec<(String, DataType)> = scan_col_idxs
        .iter()
        .zip(&scan_names)
        .map(|(&i, n)| (n.clone(), t.column(i).data_type()))
        .collect();

    let mut stages = Vec::with_capacity(chain.stages.len());
    let mut labels = Vec::with_capacity(chain.stages.len());
    for node in chain.stages.iter().rev() {
        labels.push(plan_label(node));
        match node {
            Plan::Filter { predicate, .. } => {
                let Ok(pred) = predicate.bind(&schema) else {
                    return Ok(None); // serial path reproduces the error
                };
                stages.push(BoundStage::Filter { pred });
            }
            Plan::Project { exprs, .. } => {
                let in_schema = schema.clone();
                let mut bound = Vec::with_capacity(exprs.len());
                let mut names = Vec::with_capacity(exprs.len());
                let mut out = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let (Ok(b), Ok(dt)) = (e.bind(&schema), e.data_type(&schema)) else {
                        return Ok(None);
                    };
                    bound.push(b);
                    names.push(name.clone());
                    out.push((name.clone(), dt));
                }
                stages.push(BoundStage::Project {
                    exprs: bound,
                    names,
                    in_schema,
                });
                schema = out;
            }
            _ => unreachable!("decompose only collects Filter/Project"),
        }
    }
    Ok(Some(PreparedChain {
        scan_names,
        scan_col_idxs,
        stages,
        labels,
        out_schema: schema,
        rows,
        morsels,
    }))
}

/// Output of one morsel run through a chain.
struct MorselOut {
    batch: Batch,
    /// Rows leaving each stage (leaf→root order).
    stage_rows: Vec<usize>,
    /// Seconds spent in each stage on the worker (leaf→root order).
    stage_secs: Vec<f64>,
}

/// Runs rows `range` of `base` through the bound stages. The selection
/// vector stays local (and lazy) until the first `Project` materializes.
fn run_chain_morsel(
    base: &Batch,
    stages: &[BoundStage],
    range: Range<usize>,
    engine: Engine,
) -> Result<MorselOut, DbError> {
    let mut stage_rows = Vec::with_capacity(stages.len());
    let mut stage_secs = Vec::with_capacity(stages.len());
    let mut lazy_sel: Option<Sel> = Some(Sel::Dense(range));
    let mut owned: Option<Batch> = None;
    for stage in stages {
        let t0 = Instant::now();
        match stage {
            BoundStage::Filter { pred } => {
                if let Some(b) = owned.take() {
                    let sel = vectorized_filter(&b, pred, engine)?;
                    stage_rows.push(sel.len());
                    owned = Some(b.take(&sel));
                } else {
                    let sel = vectorized_filter_range(
                        base,
                        pred,
                        lazy_sel.take().expect("lazy"),
                        engine,
                    )?;
                    stage_rows.push(sel.len());
                    lazy_sel = Some(Sel::Sparse(sel));
                }
            }
            BoundStage::Project {
                exprs,
                names,
                in_schema,
            } => {
                let input = match owned.take() {
                    Some(b) => b,
                    None => base.take(&lazy_sel.take().expect("lazy").into_vec()),
                };
                let mut cols = Vec::with_capacity(exprs.len());
                for e in exprs {
                    cols.push(vectorized_eval(&input, e, in_schema)?);
                }
                let b = Batch {
                    names: names.clone(),
                    cols,
                };
                stage_rows.push(b.row_count());
                owned = Some(b);
            }
        }
        stage_secs.push(t0.elapsed().as_secs_f64());
    }
    let batch = match owned {
        Some(b) => b,
        None => base.take(&lazy_sel.expect("lazy").into_vec()),
    };
    Ok(MorselOut {
        batch,
        stage_rows,
        stage_secs,
    })
}

/// Concatenates per-morsel output batches in morsel-index order.
fn concat_batches(schema: &[(String, DataType)], parts: &[Batch]) -> Batch {
    let cols = schema
        .iter()
        .enumerate()
        .map(|(ci, (_, dt))| {
            let refs: Vec<&Column> = parts.iter().map(|b| &*b.cols[ci]).collect();
            Arc::new(Column::concat(*dt, &refs))
        })
        .collect();
    Batch {
        names: schema.iter().map(|(n, _)| n.clone()).collect(),
        cols,
    }
}

/// Opens the chain's operator spans on the calling thread's lane, root
/// stage first, scan last — the same nesting the serial engine produces.
fn open_chain_spans<'t>(
    tracer: Option<&'t Tracer>,
    prep: &PreparedChain,
    scan_label: &str,
) -> Vec<SpanGuard<'t>> {
    let Some(t) = tracer else { return Vec::new() };
    let mut guards: Vec<SpanGuard<'t>> = prep
        .labels
        .iter()
        .rev() // root first
        .map(|l| t.span(l))
        .collect();
    guards.push(t.span(scan_label));
    guards
}

/// Charges the scan and builds the zero-copy base batch, annotating the
/// innermost (scan) span with the same pool accounting the serial scan
/// records.
fn run_scan(
    ex: &mut Executor<'_>,
    table: &str,
    prep: &PreparedChain,
    guards: &mut [SpanGuard<'_>],
) -> Result<(Batch, f64), DbError> {
    let t0 = Instant::now();
    let pool_before = ex.io_counters();
    ex.charge_scan(table)?;
    let t = ex.catalog.table(table)?;
    let base = Batch {
        names: prep.scan_names.clone(),
        cols: prep
            .scan_col_idxs
            .iter()
            .map(|&i| t.column_arc_io(i))
            .collect::<Result<_, DbError>>()?,
    };
    if let Some(g) = guards.last_mut() {
        g.attr("rows_out", prep.rows);
        if let (Some((l0, p0)), Some((l1, p1))) = (pool_before, ex.io_counters()) {
            let logical = l1.saturating_sub(l0);
            let physical = p1.saturating_sub(p0);
            g.attr("pool_hits", logical.saturating_sub(physical))
                .attr("pool_misses", physical);
        }
    }
    Ok((base, t0.elapsed().as_secs_f64()))
}

/// The morsel span idiom shared by every parallel operator: anchored where
/// the worker's lane became free, with the dispatch gap recorded as a
/// `queue-wait` child and `queued_ms` attribute (be aware what you
/// measure: queueing is not operator time).
fn morsel_span<'t>(
    tracer: Option<&'t Tracer>,
    name: &str,
    sweep_start_ns: u64,
    rows_in: usize,
) -> Option<SpanGuard<'t>> {
    let t = tracer?;
    let anchor_ns = t.lane_resume_ns().max(sweep_start_ns);
    let pickup_ns = t.now_ns();
    let mut g = t.span_at(name, anchor_ns);
    g.attr("rows_in", rows_in).attr(
        "queued_ms",
        pickup_ns.saturating_sub(anchor_ns) as f64 / 1e6,
    );
    drop(t.span_at("queue-wait", anchor_ns));
    Some(g)
}

/// Pushes the chain's profile entries in post-order (scan deepest-first,
/// then stages leaf→root), mirroring what serial recursion emits. Stage
/// times are summed worker seconds — CPU cost, not wall clock.
fn push_chain_profile(
    ex: &mut Executor<'_>,
    prep: &PreparedChain,
    scan_label: String,
    scan_secs: f64,
    stage_rows: &[usize],
    stage_secs: &[f64],
    depth: usize,
) {
    let nstages = prep.stages.len();
    ex.profile.push(ProfileEntry {
        op: scan_label,
        depth: depth + nstages,
        exclusive_ms: scan_secs * 1e3,
        rows_out: prep.rows,
        note: None,
    });
    for i in 0..nstages {
        // Stage i is leaf→root; the root stage sits at `depth`.
        let note = (i == nstages - 1).then(|| {
            format!(
                "parallel: {} morsels x {} threads",
                prep.morsels, ex.parallel.threads
            )
        });
        ex.profile.push(ProfileEntry {
            op: prep.labels[i].clone(),
            depth: depth + nstages - 1 - i,
            exclusive_ms: stage_secs[i] * 1e3,
            rows_out: stage_rows[i],
            note,
        });
    }
}

fn try_pipeline(
    ex: &mut Executor<'_>,
    plan: &Plan,
    depth: usize,
) -> Result<Option<Batch>, DbError> {
    let Some(chain) = decompose(plan) else {
        return Ok(None);
    };
    let Some(prep) = prepare_chain(ex, &chain)? else {
        return Ok(None);
    };
    let tracer = ex.tracer;
    let scan_label = format!("Scan {}", chain.table);
    let mut guards = open_chain_spans(tracer, &prep, &scan_label);
    let (base, scan_secs) = run_scan(ex, chain.table, &prep, &mut guards)?;
    // The scan span closes before stage work begins, like the serial engine.
    guards.pop();

    let morsel_rows = ex.parallel.morsel_rows;
    let rows = prep.rows;
    let stages = &prep.stages;
    let engine = ex.engine();
    let cancel = ex.cancel.clone();
    let sweep_start_ns = tracer.map(|t| t.now_ns()).unwrap_or(0);
    let (results, _workers) = parallel_map_traced(prep.morsels, ex.parallel.threads, tracer, |m| {
        if let Some(c) = &cancel {
            c.check()?;
        }
        let range = m * morsel_rows..((m + 1) * morsel_rows).min(rows);
        let rows_in = range.len();
        let mut span = morsel_span(tracer, &format!("morsel {m}"), sweep_start_ns, rows_in);
        let out = run_chain_morsel(&base, stages, range, engine)?;
        if let Some(g) = span.as_mut() {
            g.attr("rows_out", out.batch.row_count());
        }
        Ok::<MorselOut, DbError>(out)
    });
    let outs = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let nstages = prep.stages.len();
    let mut stage_rows = vec![0usize; nstages];
    let mut stage_secs = vec![0f64; nstages];
    for o in &outs {
        for i in 0..nstages {
            stage_rows[i] += o.stage_rows[i];
            stage_secs[i] += o.stage_secs[i];
        }
    }
    let parts: Vec<Batch> = outs.into_iter().map(|o| o.batch).collect();
    let merged = concat_batches(&prep.out_schema, &parts);

    // Close stage spans leaf-first with their summed row counts; the root
    // stage additionally records the sweep shape.
    for (gi, g) in guards.iter_mut().enumerate() {
        let si = nstages - 1 - gi; // guard 0 is the root stage
        g.attr("rows_out", stage_rows[si]);
        if gi == 0 {
            g.attr("morsels", prep.morsels)
                .attr("threads", ex.parallel.threads);
        }
    }
    while let Some(g) = guards.pop() {
        drop(g);
    }
    push_chain_profile(
        ex,
        &prep,
        scan_label,
        scan_secs,
        &stage_rows,
        &stage_secs,
        depth,
    );
    Ok(Some(merged))
}

// --------------------------------------------------------------------
// Hash aggregation: local grouping per morsel, ordered merge, per-group
// finish replaying rows in ascending original order.
// --------------------------------------------------------------------

/// One morsel's local grouping: its evaluated key/argument columns plus a
/// group directory in local first-seen order.
struct AggPart {
    group_cols: Vec<Arc<Column>>,
    agg_cols: Vec<Arc<Column>>,
    /// Local group keys in first-seen order.
    keys: Vec<Vec<Key>>,
    /// First local row of each group (for extracting group values).
    first_rows: Vec<u32>,
    /// Local rows of each group, ascending.
    rows: Vec<Vec<u32>>,
}

/// Groups rows `0..n` of the evaluated columns locally. NULL group keys
/// drop the row, exactly as the serial engine does.
fn group_local(
    group_cols: Vec<Arc<Column>>,
    agg_cols: Vec<Arc<Column>>,
    n: usize,
    grouped: bool,
) -> AggPart {
    let mut keys: Vec<Vec<Key>> = Vec::new();
    let mut first_rows: Vec<u32> = Vec::new();
    let mut rows: Vec<Vec<u32>> = Vec::new();
    if !grouped {
        // Global aggregate: one group holding every row.
        if n > 0 {
            keys.push(Vec::new());
            first_rows.push(0);
            rows.push((0..n as u32).collect());
        }
    } else {
        let mut map: HashMap<Vec<Key>, usize> = HashMap::new();
        'rows: for i in 0..n {
            let mut key = Vec::with_capacity(group_cols.len());
            for c in &group_cols {
                match value_key(&c.get(i)) {
                    Some(k) => key.push(k),
                    None => continue 'rows,
                }
            }
            let next = keys.len();
            let id = *map.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                first_rows.push(i as u32);
                rows.push(Vec::new());
                next
            });
            rows[id].push(i as u32);
        }
    }
    AggPart {
        group_cols,
        agg_cols,
        keys,
        first_rows,
        rows,
    }
}

/// Merges the per-morsel group directories (in morsel order, so the global
/// first-seen order matches serial), then finishes groups in parallel —
/// each group replays its rows in ascending original order, giving float
/// accumulators the serial addition sequence — and materializes the
/// result through the same final step as the serial engine.
fn merge_and_finish(
    ex: &mut Executor<'_>,
    plan: &Plan,
    parts: &[AggPart],
    agg_meta: &[(AggFunc, DataType)],
    grouped: bool,
) -> Result<Batch, DbError> {
    let mut gmap: HashMap<Vec<Key>, usize> = HashMap::new();
    let mut gvals: Vec<Vec<Value>> = Vec::new();
    let mut grows: Vec<Vec<(u32, u32)>> = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        for (li, key) in part.keys.iter().enumerate() {
            let next = gvals.len();
            let id = *gmap.entry(key.clone()).or_insert_with(|| {
                let first = part.first_rows[li] as usize;
                gvals.push(part.group_cols.iter().map(|c| c.get(first)).collect());
                grows.push(Vec::new());
                next
            });
            grows[id].extend(part.rows[li].iter().map(|&r| (pi as u32, r)));
        }
    }

    let finish_group = |gid: usize| -> Vec<Value> {
        let mut states: Vec<AggState> = agg_meta
            .iter()
            .map(|(f, dt)| AggState::new(*f, *dt))
            .collect();
        for &(pi, r) in &grows[gid] {
            let part = &parts[pi as usize];
            for (state, col) in states.iter_mut().zip(&part.agg_cols) {
                state.update_from_col(col, r as usize);
            }
        }
        let mut row = gvals[gid].clone();
        row.extend(states.into_iter().map(AggState::finish));
        row
    };

    let rows: Vec<Vec<Value>> = if gvals.is_empty() && !grouped {
        // Global aggregate over an empty input still yields one row.
        let states: Vec<AggState> = agg_meta
            .iter()
            .map(|(f, dt)| AggState::new(*f, *dt))
            .collect();
        vec![states.into_iter().map(AggState::finish).collect()]
    } else if gvals.len() >= 2 && ex.parallel.threads > 1 {
        let (rows, _) = perfeval_pool::parallel_map(gvals.len(), ex.parallel.threads, finish_group);
        rows
    } else {
        (0..gvals.len()).map(finish_group).collect()
    };
    finish_aggregate_batch(ex.catalog, plan, rows)
}

fn try_aggregate(
    ex: &mut Executor<'_>,
    plan: &Plan,
    input: &Plan,
    group_by: &[(Expr, String)],
    aggregates: &[(AggFunc, Expr, String)],
    depth: usize,
) -> Result<Option<Batch>, DbError> {
    match decompose(input) {
        Some(chain) => try_aggregate_fused(ex, plan, &chain, group_by, aggregates, depth),
        None => try_aggregate_materialized(ex, plan, input, group_by, aggregates, depth).map(Some),
    }
}

/// Fused mode: the aggregate's input is a scan→filter→project chain, so
/// each morsel runs the chain *and* its local grouping in one pass,
/// without ever materializing the full intermediate batch.
fn try_aggregate_fused(
    ex: &mut Executor<'_>,
    plan: &Plan,
    chain: &Chain<'_>,
    group_by: &[(Expr, String)],
    aggregates: &[(AggFunc, Expr, String)],
    depth: usize,
) -> Result<Option<Batch>, DbError> {
    let Some(prep) = prepare_chain(ex, chain)? else {
        return Ok(None);
    };
    // Bind the aggregate's expressions against the chain output before any
    // side effects; a failure falls back to the serial path's error.
    let schema = &prep.out_schema;
    let mut g_bound = Vec::with_capacity(group_by.len());
    for (e, _) in group_by {
        match e.bind(schema) {
            Ok(b) => g_bound.push(b),
            Err(_) => return Ok(None),
        }
    }
    let mut a_bound = Vec::with_capacity(aggregates.len());
    let mut agg_meta = Vec::with_capacity(aggregates.len());
    for (f, e, _) in aggregates {
        match (e.bind(schema), e.data_type(schema)) {
            (Ok(b), Ok(dt)) => {
                a_bound.push(b);
                agg_meta.push((*f, dt));
            }
            _ => return Ok(None),
        }
    }

    let tracer = ex.tracer;
    let mut agg_span = tracer.map(|t| t.span("HashAggregate"));
    let scan_label = format!("Scan {}", chain.table);
    let mut guards = open_chain_spans(tracer, &prep, &scan_label);
    let (base, scan_secs) = run_scan(ex, chain.table, &prep, &mut guards)?;
    guards.pop();

    let morsel_rows = ex.parallel.morsel_rows;
    let rows = prep.rows;
    let stages = &prep.stages;
    let grouped = !group_by.is_empty();
    let out_schema = &prep.out_schema;
    let g_bound = &g_bound;
    let a_bound = &a_bound;
    let engine = ex.engine();
    let cancel = ex.cancel.clone();
    let sweep_start_ns = tracer.map(|t| t.now_ns()).unwrap_or(0);
    let (results, _workers) = parallel_map_traced(prep.morsels, ex.parallel.threads, tracer, |m| {
        if let Some(c) = &cancel {
            c.check()?;
        }
        let range = m * morsel_rows..((m + 1) * morsel_rows).min(rows);
        let rows_in = range.len();
        let mut span = morsel_span(tracer, &format!("morsel {m}"), sweep_start_ns, rows_in);
        let chain_out = run_chain_morsel(&base, stages, range, engine)?;
        let t_agg = Instant::now();
        let mb = &chain_out.batch;
        let group_cols = g_bound
            .iter()
            .map(|e| vectorized_eval(mb, e, out_schema))
            .collect::<Result<Vec<_>, _>>()?;
        let agg_cols = a_bound
            .iter()
            .map(|e| vectorized_eval(mb, e, out_schema))
            .collect::<Result<Vec<_>, _>>()?;
        let part = group_local(group_cols, agg_cols, mb.row_count(), grouped);
        if let Some(g) = span.as_mut() {
            g.attr("rows_out", mb.row_count())
                .attr("groups", part.keys.len());
        }
        Ok::<_, DbError>((
            part,
            chain_out.stage_rows,
            chain_out.stage_secs,
            t_agg.elapsed().as_secs_f64(),
        ))
    });
    let outs = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    let nstages = prep.stages.len();
    let mut stage_rows = vec![0usize; nstages];
    let mut stage_secs = vec![0f64; nstages];
    let mut agg_secs = 0f64;
    let mut parts = Vec::with_capacity(outs.len());
    for (part, srows, ssecs, asecs) in outs {
        for i in 0..nstages {
            stage_rows[i] += srows[i];
            stage_secs[i] += ssecs[i];
        }
        agg_secs += asecs;
        parts.push(part);
    }
    for (gi, g) in guards.iter_mut().enumerate() {
        g.attr("rows_out", stage_rows[nstages - 1 - gi]);
    }
    while let Some(g) = guards.pop() {
        drop(g);
    }

    let t_merge = Instant::now();
    let mut merge_span = tracer.map(|t| t.span("merge"));
    let batch = merge_and_finish(ex, plan, &parts, &agg_meta, grouped)?;
    if let Some(g) = merge_span.as_mut() {
        g.attr("groups", batch.row_count());
    }
    drop(merge_span);
    let merge_secs = t_merge.elapsed().as_secs_f64();

    if let Some(g) = agg_span.as_mut() {
        g.attr("rows_out", batch.row_count())
            .attr("morsels", prep.morsels)
            .attr("threads", ex.parallel.threads);
    }
    drop(agg_span);
    push_chain_profile(
        ex,
        &prep,
        scan_label,
        scan_secs,
        &stage_rows,
        &stage_secs,
        depth + 1,
    );
    ex.profile.push(ProfileEntry {
        op: "HashAggregate".to_owned(),
        depth,
        exclusive_ms: (agg_secs + merge_secs) * 1e3,
        rows_out: batch.row_count(),
        note: Some(format!(
            "parallel: {} morsels x {} threads",
            prep.morsels, ex.parallel.threads
        )),
    });
    Ok(Some(batch))
}

/// Materialized mode: the aggregate's input is not a pipeline chain (e.g.
/// a join), so it runs through the normal recursion — which may itself
/// parallelize — and only the grouping is morsel-split, over row ranges
/// of the materialized batch.
fn try_aggregate_materialized(
    ex: &mut Executor<'_>,
    plan: &Plan,
    input: &Plan,
    group_by: &[(Expr, String)],
    aggregates: &[(AggFunc, Expr, String)],
    depth: usize,
) -> Result<Batch, DbError> {
    let start = Instant::now();
    let tracer = ex.tracer;
    let mut agg_span = tracer.map(|t| t.span("HashAggregate"));
    let c0 = Instant::now();
    let input_batch = ex.run_batch(input, depth + 1)?;
    let child_ms = c0.elapsed().as_secs_f64() * 1e3;

    let n = input_batch.row_count();
    let morsel_rows = ex.parallel.morsel_rows;
    let morsels = n.div_ceil(morsel_rows);
    let batch = if morsels < 2 {
        vectorized_aggregate(
            ex.catalog,
            plan,
            &input_batch,
            group_by,
            aggregates,
            ex.engine(),
        )?
    } else {
        let schema = input_batch.schema();
        let group_cols: Vec<Arc<Column>> = group_by
            .iter()
            .map(|(e, _)| vectorized_eval(&input_batch, &e.bind(&schema)?, &schema))
            .collect::<Result<_, _>>()?;
        let agg_cols: Vec<Arc<Column>> = aggregates
            .iter()
            .map(|(_, e, _)| vectorized_eval(&input_batch, &e.bind(&schema)?, &schema))
            .collect::<Result<_, _>>()?;
        let agg_meta: Vec<(AggFunc, DataType)> = aggregates
            .iter()
            .map(|(f, e, _)| Ok((*f, e.data_type(&schema)?)))
            .collect::<Result<_, DbError>>()?;
        let grouped = !group_by.is_empty();
        let group_cols = &group_cols;
        let agg_cols = &agg_cols;
        let cancel = ex.cancel.clone();
        let cancel = &cancel;
        let sweep_start_ns = tracer.map(|t| t.now_ns()).unwrap_or(0);
        let (results, _workers) = parallel_map_traced(morsels, ex.parallel.threads, tracer, |m| {
            let range = m * morsel_rows..((m + 1) * morsel_rows).min(n);
            let rows_in = range.len();
            // Morsel-boundary cancellation poll: an empty part is cheap
            // and discarded below, so cancelled workers drain in bounded
            // time without building a half-merged directory.
            if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return group_local(group_cols.to_vec(), agg_cols.to_vec(), 0, grouped);
            }
            let mut span = morsel_span(tracer, &format!("morsel {m}"), sweep_start_ns, rows_in);
            // Each part shares the evaluated columns; its row ids are
            // global, so restrict the directory to this morsel's range.
            let mut part = group_local(
                group_cols.to_vec(),
                agg_cols.to_vec(),
                0, // directory filled below over the global range
                grouped,
            );
            fill_range_directory(&mut part, range, grouped);
            if let Some(g) = span.as_mut() {
                g.attr("groups", part.keys.len());
            }
            part
        });
        ex.check_cancel()?;
        let parts = results;
        merge_and_finish(ex, plan, &parts, &agg_meta, grouped)?
    };

    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(g) = agg_span.as_mut() {
        g.attr("rows_out", batch.row_count());
    }
    drop(agg_span);
    ex.profile.push(ProfileEntry {
        op: "HashAggregate".to_owned(),
        depth,
        exclusive_ms: (total_ms - child_ms).max(0.0),
        rows_out: batch.row_count(),
        note: (morsels >= 2).then(|| {
            format!(
                "parallel: {} morsels x {} threads",
                morsels, ex.parallel.threads
            )
        }),
    });
    Ok(batch)
}

/// Builds a part's group directory over a *global* row range (materialized
/// aggregation shares the evaluated columns across parts).
fn fill_range_directory(part: &mut AggPart, range: Range<usize>, grouped: bool) {
    if !grouped {
        if !range.is_empty() {
            part.keys.push(Vec::new());
            part.first_rows.push(range.start as u32);
            part.rows.push(range.map(|i| i as u32).collect());
        }
        return;
    }
    let mut map: HashMap<Vec<Key>, usize> = HashMap::new();
    'rows: for i in range {
        let mut key = Vec::with_capacity(part.group_cols.len());
        for c in &part.group_cols {
            match value_key(&c.get(i)) {
                Some(k) => key.push(k),
                None => continue 'rows,
            }
        }
        let next = part.keys.len();
        let id = *map.entry(key.clone()).or_insert_with(|| {
            part.keys.push(key);
            part.first_rows.push(i as u32);
            part.rows.push(Vec::new());
            next
        });
        part.rows[id].push(i as u32);
    }
}

// --------------------------------------------------------------------
// Hash join: serial build on the smaller side, parallel partitioned probe.
// --------------------------------------------------------------------

fn try_join(
    ex: &mut Executor<'_>,
    left: &Plan,
    right: &Plan,
    left_key: &Expr,
    right_key: &Expr,
    depth: usize,
) -> Result<Batch, DbError> {
    let start = Instant::now();
    let tracer = ex.tracer;
    let mut span = tracer.map(|t| t.span("HashJoin"));
    let c0 = Instant::now();
    let lb = ex.run_batch(left, depth + 1)?;
    let rb = ex.run_batch(right, depth + 1)?;
    let child_ms = c0.elapsed().as_secs_f64() * 1e3;

    let ls = lb.schema();
    let rs = rb.schema();
    let (lk, rk) = bind_join_keys(left_key, right_key, &ls, &rs)?;
    let lkey_col = vectorized_eval(&lb, &lk, &ls)?;
    let rkey_col = vectorized_eval(&rb, &rk, &rs)?;
    let side = choose_build_side(&lkey_col, &rkey_col);
    let (build_col, probe_col) = match side {
        crate::exec::BuildSide::Left => (&lkey_col, &rkey_col),
        crate::exec::BuildSide::Right => (&rkey_col, &lkey_col),
    };
    let build = JoinBuild::new(build_col, probe_col, ex.engine());

    let np = probe_col.len();
    let morsel_rows = ex.parallel.morsel_rows;
    let morsels = np.div_ceil(morsel_rows);
    let (bsel, psel) = if morsels >= 2 {
        let build = &build;
        let probe_col: &Column = probe_col;
        let cancel = ex.cancel.clone();
        let cancel = &cancel;
        let sweep_start_ns = tracer.map(|t| t.now_ns()).unwrap_or(0);
        let (results, _workers) = parallel_map_traced(morsels, ex.parallel.threads, tracer, |m| {
            let range = m * morsel_rows..((m + 1) * morsel_rows).min(np);
            let rows_in = range.len();
            // Morsel-boundary cancellation poll: empty pair lists drain
            // the sweep fast; the post-sweep check discards them.
            if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return (Vec::new(), Vec::new());
            }
            let mut span = morsel_span(tracer, &format!("morsel {m}"), sweep_start_ns, rows_in);
            let pairs = build.probe_range(probe_col, range);
            if let Some(g) = span.as_mut() {
                g.attr("rows_out", pairs.0.len());
            }
            pairs
        });
        ex.check_cancel()?;
        // Morsel-order concatenation of probe-major ranges is exactly what
        // one full-range probe produces.
        let total: usize = results.iter().map(|(b, _)| b.len()).sum();
        let mut bsel = Vec::with_capacity(total);
        let mut psel = Vec::with_capacity(total);
        for (b, p) in results {
            bsel.extend(b);
            psel.extend(p);
        }
        (bsel, psel)
    } else {
        build.probe_range(probe_col, 0..np)
    };
    let (lsel, rsel) = match side {
        crate::exec::BuildSide::Left => (bsel, psel),
        crate::exec::BuildSide::Right => (psel, bsel),
    };
    let (lsel, rsel) = canonicalize_join_pairs(side, lsel, rsel);

    let lout = lb.take(&lsel);
    let rout = rb.take(&rsel);
    let mut names = lout.names;
    names.extend(rout.names);
    let mut cols = lout.cols;
    cols.extend(rout.cols);
    let batch = Batch { names, cols };

    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(g) = span.as_mut() {
        g.attr("rows_out", batch.row_count())
            .attr("build_side", side.label());
        if morsels >= 2 {
            g.attr("morsels", morsels)
                .attr("threads", ex.parallel.threads);
        }
    }
    drop(span);
    let mut note = format!("build={}", side.label());
    if morsels >= 2 {
        note.push_str(&format!(
            "; parallel probe: {} morsels x {} threads",
            morsels, ex.parallel.threads
        ));
    }
    ex.profile.push(ProfileEntry {
        op: "HashJoin".to_owned(),
        depth,
        exclusive_ms: (total_ms - child_ms).max(0.0),
        rows_out: batch.row_count(),
        note: Some(note),
    });
    Ok(batch)
}
