//! # minidb
//!
//! An in-memory column-store execution engine — the DBMS substrate for the
//! `perfeval` reproduction of "Performance Evaluation in Database Research"
//! (Manolescu & Manegold, ICDE 2008 / EDBT 2009).
//!
//! The tutorial's measurement anecdotes all run against real systems
//! (MonetDB, MySQL, commercial engines) that we cannot ship. `minidb`
//! replaces them with a small but real engine whose *measurement-relevant
//! axes* are first-class, controllable parameters:
//!
//! * **Execution mode** ([`exec::ExecMode`]): `Debug` is a row-at-a-time
//!   interpreter with assertions (the `--enable-debug --disable-optimize`
//!   build of the "Of apples and oranges" war story); `Optimized` is a
//!   vectorized column-at-a-time engine (the `-O6` build); `Simd` runs the
//!   same operators through the explicit chunked kernels in the `kernels`
//!   module. Comparing them makes the tutorial's build factor a genuine
//!   three-level design factor, and all three are bit-identical on every
//!   query (tested).
//! * **Phase timing** ([`session::Session`]): every query reports
//!   parse / optimize / execute / print times, like MonetDB's
//!   `mclient -t` (`Trans/Shred/Query/Print`).
//! * **Result sinks** ([`sink`]): query output can go to a file, a
//!   terminal (with realistic rendering cost), or nowhere — the
//!   server-side vs. client-side, file vs. terminal distinction of the
//!   "Be aware what you measure!" table.
//! * **Buffer pool** (via `memsim`): table scans charge simulated disk I/O
//!   through an LRU buffer pool, giving cold runs their real ≫ user gap.
//! * **Persistence** ([`storage`], via `perfeval-store`): tables persist
//!   to checksummed, compressed column segments and reopen disk-backed
//!   behind a *real* buffer pool — so hot vs. cold is measured with real
//!   hit/miss counters and `posix_fadvise` page-cache drops, not modeled.
//! * **EXPLAIN / PROFILE / TRACE**: plan printing and per-operator time
//!   accounting, the "CSI: find out what happens" tools.
//!
//! ## Quickstart
//!
//! ```
//! use minidb::{Catalog, Session, TableBuilder, Value};
//!
//! let mut catalog = Catalog::new();
//! let mut t = TableBuilder::new("part")
//!     .column("id", minidb::DataType::Int)
//!     .column("price", minidb::DataType::Float)
//!     .build();
//! t.push_row(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
//! t.push_row(vec![Value::Int(2), Value::Float(20.0)]).unwrap();
//! catalog.register(t).unwrap();
//!
//! let mut session = Session::new(catalog);
//! let result = session.query("SELECT SUM(price) FROM part").run().unwrap();
//! assert_eq!(result.rows[0][0], Value::Float(30.0));
//! ```
#![warn(missing_docs)]

pub mod cancel;
pub mod catalog;
pub mod column;
pub mod error;
pub mod exec;
pub mod expr;
pub(crate) mod kernels;
pub mod optimizer;
pub(crate) mod parallel;
pub mod parser;
pub mod plan;
pub mod session;
pub mod sink;
pub mod storage;
pub mod table;
pub mod types;

pub use cancel::CancelToken;
pub use catalog::Catalog;
pub use column::Column;
pub use error::DbError;
pub use exec::ExecMode;
pub use plan::Plan;
pub use session::{Query, QueryResult, Session};
pub use sink::{FileSink, NullSink, ResultSink, TerminalSink};
pub use storage::{Storage, StoreConfig};
pub use table::{Table, TableBuilder};
pub use types::{DataType, Value};
