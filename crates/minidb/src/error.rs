//! Error type for the engine.

/// All errors the engine can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Value/column type mismatch.
    TypeMismatch(String),
    /// Semantic error in a query (e.g. non-aggregated column outside GROUP
    /// BY).
    Semantic(String),
    /// Wrong arity when inserting a row.
    Arity {
        /// Columns in the table.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// I/O error from a result sink.
    Io(String),
    /// The query was cancelled cooperatively — its deadline passed or a
    /// [`CancelToken`](crate::CancelToken) was cancelled — and partial
    /// work was discarded. The message names the trigger.
    Cancelled(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            DbError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DbError::Semantic(m) => write!(f, "semantic error: {m}"),
            DbError::Arity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::Io(m) => write!(f, "i/o error: {m}"),
            DbError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DbError::UnknownTable("foo".into()).to_string(),
            "unknown table: foo"
        );
        assert_eq!(
            DbError::Arity {
                expected: 3,
                got: 2
            }
            .to_string(),
            "expected 3 values, got 2"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let db: DbError = io.into();
        assert!(matches!(db, DbError::Io(_)));
    }
}
