//! Sessions: parse → optimize → execute → print, with per-phase timing.
//!
//! This is the engine's `mclient -t`: every query reports how long each
//! phase took, so experiments can answer *"be aware what you measure"*
//! questions — is the 1468 ms the query, or the printing? Is the gap the
//! engine, or a cold buffer pool?

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::exec::{ExecMode, Executor, ProfileEntry, ResultSet};
use crate::optimizer::{optimize, OptimizerConfig};
use crate::parser::{parse_statement, to_plan, Statement};
use crate::plan::Plan;
use crate::sink::{NullSink, ResultSink};
use crate::types::Value;
use memsim::{BufferPool, Disk};
use perfeval_measure::{Measurement, PhaseTimer};
use std::time::Instant;

/// Result of executing one query in a [`Session`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub column_names: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Real (wall-clock) per-phase breakdown: parse / optimize / execute /
    /// print, in ms.
    pub phases: Measurement,
    /// Simulated disk wait incurred during execution (0 without a pool), ms.
    pub sim_io_ms: f64,
    /// Simulated output-device overhead from the sink, ms.
    pub sim_print_ms: f64,
    /// Bytes the sink rendered.
    pub result_bytes: usize,
    /// Per-operator profile trace.
    pub profile: Vec<ProfileEntry>,
}

impl QueryResult {
    /// Server-side "user" (CPU) time: the execute phase's real time, which
    /// in this in-memory engine is all computation.
    pub fn server_user_ms(&self) -> f64 {
        self.phases.phase_ms("execute").unwrap_or(0.0)
    }

    /// Server-side "real" time: execution plus simulated I/O waits.
    pub fn server_real_ms(&self) -> f64 {
        self.server_user_ms() + self.sim_io_ms
    }

    /// Client-side "real" time: server real plus result delivery/printing.
    pub fn client_real_ms(&self) -> f64 {
        self.server_real_ms() + self.phases.phase_ms("print").unwrap_or(0.0) + self.sim_print_ms
    }

    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// A database session.
pub struct Session {
    catalog: Catalog,
    mode: ExecMode,
    optimizer: OptimizerConfig,
    pool: Option<BufferPool>,
}

// Parallel experiment workers (`perfeval-exec`) each own sessions on their
// own threads; keep that possible by construction.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<QueryResult>();
};

impl Session {
    /// Creates a session over a catalog with the optimized engine, all
    /// optimizer rules on, and no I/O simulation.
    pub fn new(catalog: Catalog) -> Self {
        Session {
            catalog,
            mode: ExecMode::Optimized,
            optimizer: OptimizerConfig::all(),
            pool: None,
        }
    }

    /// Selects the execution engine (the DBG/OPT axis).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a simulated disk + buffer pool; scans now charge page I/O
    /// and [`Session::flush_caches`] produces genuine cold runs.
    pub fn with_disk(mut self, disk: Disk, pool_pages: usize) -> Self {
        self.pool = Some(BufferPool::new(disk, pool_pages));
        self
    }

    /// Reconfigures the optimizer (for ablations).
    pub fn set_optimizer(&mut self, config: OptimizerConfig) {
        self.optimizer = config;
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The catalog (immutable).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (loading data).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Flushes the buffer pool — the cold-run "reboot" of slide 32. No-op
    /// without a pool.
    pub fn flush_caches(&mut self) {
        if let Some(pool) = &mut self.pool {
            pool.flush();
        }
    }

    /// Buffer-pool hit rate of the last statement (`None` without a pool).
    pub fn pool_hit_rate(&self) -> Option<f64> {
        self.pool.as_ref().map(|p| p.hit_rate())
    }

    /// Plans a statement (parse + optimize), without executing. Only
    /// SELECT statements have plans.
    pub fn plan(&self, sql: &str) -> Result<Plan, DbError> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let plan = to_plan(&stmt, |t| {
                    Ok(self.catalog.table(t)?.column_names().to_vec())
                })?;
                optimize(plan, &self.catalog, self.optimizer)
            }
            _ => Err(DbError::Semantic(
                "only SELECT statements have query plans".into(),
            )),
        }
    }

    /// EXPLAIN: the optimized plan as an operator tree.
    pub fn explain(&self, sql: &str) -> Result<String, DbError> {
        Ok(self.plan(sql)?.explain(&self.catalog))
    }

    /// Executes a statement, discarding the result rows' rendering (null
    /// sink) — the pure server-side measurement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.execute_to(sql, &mut NullSink)
    }

    /// Executes a statement and delivers the result to `sink`.
    pub fn execute_to(
        &mut self,
        sql: &str,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryResult, DbError> {
        let mut timer = PhaseTimer::new();

        // Parse.
        let t0 = Instant::now();
        let stmt = parse_statement(sql)?;
        let stmt = match stmt {
            Statement::Select(s) => s,
            Statement::CreateTable { name, columns } => {
                let mut builder = crate::table::TableBuilder::new(&name);
                for (col, dt) in &columns {
                    builder = builder.column(col, *dt);
                }
                self.catalog.register(builder.build())?;
                timer.record("parse", t0.elapsed().as_secs_f64() * 1e3);
                return Ok(ddl_result(timer, 0));
            }
            Statement::Insert { table, rows } => {
                let t = self.catalog.table_mut(&table)?;
                let n = rows.len();
                for row in rows {
                    t.push_row(row)?;
                }
                timer.record("parse", t0.elapsed().as_secs_f64() * 1e3);
                return Ok(ddl_result(timer, n));
            }
        };
        let plan = to_plan(&stmt, |t| {
            Ok(self.catalog.table(t)?.column_names().to_vec())
        })?;
        timer.record("parse", t0.elapsed().as_secs_f64() * 1e3);

        // Optimize.
        let t1 = Instant::now();
        let plan = optimize(plan, &self.catalog, self.optimizer)?;
        timer.record("optimize", t1.elapsed().as_secs_f64() * 1e3);

        // Execute.
        let io_before = self.pool.as_ref().map_or(0.0, |p| p.sim_wait_ns());
        let t2 = Instant::now();
        let (result, profile) = {
            let mut executor = Executor::new(&self.catalog, self.mode);
            if let Some(pool) = &mut self.pool {
                executor = executor.with_pool(pool);
            }
            let result = executor.run(&plan)?;
            (result, executor.profile().to_vec())
        };
        timer.record("execute", t2.elapsed().as_secs_f64() * 1e3);
        let io_after = self.pool.as_ref().map_or(0.0, |p| p.sim_wait_ns());
        let sim_io_ms = (io_after - io_before) / 1e6;

        // Print.
        let t3 = Instant::now();
        let report = sink.consume(&result)?;
        timer.record("print", t3.elapsed().as_secs_f64() * 1e3);

        let ResultSet { column_names, rows } = result;
        Ok(QueryResult {
            column_names,
            rows,
            phases: timer.finish(),
            sim_io_ms,
            sim_print_ms: report.sim_overhead_ms,
            result_bytes: report.bytes,
            profile,
        })
    }

    /// PROFILE: executes and renders the per-operator trace.
    pub fn profile(&mut self, sql: &str) -> Result<String, DbError> {
        let result = self.execute(sql)?;
        Ok(crate::exec::render_profile(&result.profile))
    }
}

/// Result shape for DDL/DML statements: no columns, `affected` rows
/// reported via [`QueryResult::row_count`]-independent metadata (we encode
/// it as a single-cell result so scripts can read it).
fn ddl_result(timer: PhaseTimer, affected: usize) -> QueryResult {
    QueryResult {
        column_names: vec!["rows_affected".to_owned()],
        rows: vec![vec![Value::Int(affected as i64)]],
        phases: timer.finish(),
        sim_io_ms: 0.0,
        sim_print_ms: 0.0,
        result_bytes: 0,
        profile: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TerminalSink;
    use crate::table::TableBuilder;
    use crate::types::DataType;

    fn session() -> Session {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("nums")
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .build();
        for i in 0..10_000 {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
                .unwrap();
        }
        catalog.register(t).unwrap();
        Session::new(catalog)
    }

    #[test]
    fn execute_returns_rows_and_phases() {
        let mut s = session();
        let r = s
            .execute("SELECT COUNT(*) FROM nums WHERE x < 100")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
        for phase in ["parse", "optimize", "execute", "print"] {
            assert!(r.phases.phase_ms(phase).is_some(), "missing {phase}");
        }
        assert!(r.server_user_ms() >= 0.0);
        assert_eq!(r.sim_io_ms, 0.0, "no pool attached");
    }

    #[test]
    fn explain_shows_pruned_plan() {
        let s = session();
        let text = s.explain("SELECT SUM(y) FROM nums").unwrap();
        assert!(text.contains("Scan nums [y]"), "{text}");
        assert!(text.contains("HashAggregate"));
    }

    #[test]
    fn profile_renders_trace() {
        let mut s = session();
        let trace = s.profile("SELECT MAX(x) FROM nums").unwrap();
        assert!(trace.contains("Scan nums"));
        assert!(trace.contains("ms"));
    }

    #[test]
    fn debug_mode_is_slower_than_optimized() {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("big")
            .column("v", DataType::Float)
            .build();
        for i in 0..200_000 {
            t.push_row(vec![Value::Float(i as f64)]).unwrap();
        }
        catalog.register(t).unwrap();
        let sql = "SELECT SUM(v) FROM big WHERE v > 1000.0";

        let mut opt = Session::new(catalog.clone()).with_mode(ExecMode::Optimized);
        let mut dbg = Session::new(catalog).with_mode(ExecMode::Debug);
        // Warm once, take the best of three (robust to scheduler noise in
        // dev-profile CI runs).
        let best = |s: &mut Session| {
            s.execute(sql).unwrap();
            (0..3)
                .map(|_| s.execute(sql).unwrap().server_user_ms())
                .fold(f64::INFINITY, f64::min)
        };
        let to = best(&mut opt);
        let td = best(&mut dbg);
        assert!(
            td > 1.2 * to,
            "debug ({td:.2} ms) should be clearly slower than optimized ({to:.2} ms)"
        );
    }

    #[test]
    fn cold_run_has_real_much_greater_than_user() {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("big")
            .column("v", DataType::Float)
            .build();
        for i in 0..500_000 {
            t.push_row(vec![Value::Float(i as f64)]).unwrap();
        }
        catalog.register(t).unwrap();
        // A slow 1992-era disk keeps the cold-run I/O wait dominant even
        // when this test runs in an unoptimized dev build (where the CPU
        // component is inflated).
        let mut s = Session::new(catalog).with_disk(Disk::era_1992(), 10_000);
        let sql = "SELECT SUM(v) FROM big";

        s.flush_caches();
        let cold = s.execute(sql).unwrap();
        let hot = s.execute(sql).unwrap();

        assert!(cold.sim_io_ms > 0.0, "cold run must wait on disk");
        assert_eq!(hot.sim_io_ms, 0.0, "hot run must not");
        assert!(
            cold.server_real_ms() > 2.0 * cold.server_user_ms(),
            "cold: real {} vs user {}",
            cold.server_real_ms(),
            cold.server_user_ms()
        );
        // Hot real ~ hot user.
        assert!((hot.server_real_ms() - hot.server_user_ms()).abs() < 1e-9);
    }

    #[test]
    fn terminal_print_dominates_for_large_results() {
        let mut s = session();
        let mut terminal = TerminalSink::new();
        let r = s
            .execute_to("SELECT x, y FROM nums", &mut terminal)
            .unwrap();
        assert_eq!(r.row_count(), 10_000);
        assert!(r.sim_print_ms > 0.0);
        assert!(r.client_real_ms() > r.server_real_ms());
        assert!(r.result_bytes > 100_000);
    }

    #[test]
    fn optimizer_toggle_changes_plan() {
        let mut s = session();
        s.set_optimizer(OptimizerConfig::none());
        let unopt = s.explain("SELECT SUM(y) FROM nums").unwrap();
        assert!(unopt.contains("Scan nums [*]"), "{unopt}");
    }

    #[test]
    fn errors_propagate() {
        let mut s = session();
        assert!(matches!(
            s.execute("SELECT nope FROM nums"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.execute("SELECT x FROM missing"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(s.execute("garbage"), Err(DbError::Parse(_))));
    }

    #[test]
    fn pool_hit_rate_visible() {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("small")
            .column("v", DataType::Int)
            .build();
        for i in 0..100_000 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        catalog.register(t).unwrap();
        let mut s = Session::new(catalog).with_disk(Disk::raid_2008(), 1_000);
        assert_eq!(s.pool_hit_rate(), Some(0.0));
        s.execute("SELECT COUNT(*) FROM small").unwrap();
        s.execute("SELECT COUNT(*) FROM small").unwrap();
        assert!(s.pool_hit_rate().unwrap() > 0.0);
    }
}
