//! Sessions: parse → optimize → execute → print, with per-phase timing.
//!
//! This is the engine's `mclient -t`: every query reports how long each
//! phase took, so experiments can answer *"be aware what you measure"*
//! questions — is the 1468 ms the query, or the printing? Is the gap the
//! engine, or a cold buffer pool?
//!
//! Queries are issued through the [`Query`] builder:
//!
//! ```text
//! session.query("SELECT ...").sink(&mut terminal).traced(&tracer).run()
//! ```
//!
//! `sink` and `traced` are optional; `run()` executes. The builder replaced
//! the old `execute` / `execute_to` / `profile` trio, which have been
//! removed.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::exec::{ExecMode, Executor, ProfileEntry, ResultSet};
use crate::optimizer::{optimize, OptimizerConfig};
use crate::parser::{parse_statement, to_plan, Statement};
use crate::plan::Plan;
use crate::sink::{NullSink, ResultSink};
use crate::types::Value;
use memsim::{BufferPool, Disk};
use perfeval_fault::FaultRegistry;
use perfeval_measure::{Clock, CpuClock, Measurement, Phase, PhaseTimer};
use perfeval_trace::Tracer;
use std::sync::Arc;
use std::time::Instant;

/// Result of executing one query in a [`Session`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub column_names: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Real (wall-clock) per-phase breakdown: parse / optimize / execute /
    /// print, in ms.
    pub phases: Measurement,
    /// CPU ("user") time of the execute phase, measured with a thread CPU
    /// clock alongside the wall clock, in ms.
    pub execute_cpu_ms: f64,
    /// Simulated disk wait incurred during execution (0 without a pool), ms.
    pub sim_io_ms: f64,
    /// Simulated output-device overhead from the sink, ms. Private: this
    /// constant-per-byte simulation predates the wire layer and feeds only
    /// the era-hardware what-if figure [`QueryResult::sim_client_real_ms`].
    /// For *measured* client-side cost — real serialization, transfer, and
    /// printing on the client's own clock — run the query over `minidb-net`
    /// instead; the E21 experiment (`exp_e21_client_server`) shows the
    /// difference.
    sim_print_ms: f64,
    /// Bytes the sink rendered.
    pub result_bytes: usize,
    /// Per-operator profile trace.
    pub profile: Vec<ProfileEntry>,
    /// Chunk requests this statement made to the *real* storage buffer
    /// pool (0 unless the catalog is disk-backed). Unlike
    /// [`QueryResult::sim_io_ms`], these are measurements, not a model.
    pub store_logical_reads: u64,
    /// Chunk requests that missed the pool and hit disk with a real
    /// `pread` (0 unless the catalog is disk-backed).
    pub store_physical_reads: u64,
}

impl QueryResult {
    /// Server-side "user" (CPU) time of the execute phase.
    ///
    /// Measured with [`CpuClock`] (thread CPU time), not inferred from the
    /// wall clock: under scheduler pressure or simulated I/O waits the two
    /// genuinely differ, which is the entire point of the user-vs-real
    /// exhibit.
    pub fn server_user_ms(&self) -> f64 {
        self.execute_cpu_ms
    }

    /// Server-side "real" time: execute-phase wall time, as the wall clock
    /// actually measured it.
    ///
    /// This used to silently add `sim_io_ms` — a *simulated* disk wait that
    /// never elapsed on any clock — so a pure in-process run reported a
    /// "real" time no stopwatch could reproduce. Measurement and simulation
    /// are now separate: this accessor is honest wall time; the
    /// simulation-inclusive figure lives in
    /// [`QueryResult::sim_server_real_ms`].
    pub fn server_real_ms(&self) -> f64 {
        self.phases.phase(Phase::Execute).unwrap_or(0.0)
    }

    /// Client-side "real" time: server real plus result printing, both
    /// wall-clock measured.
    ///
    /// For an in-process session, client and server share one process, so
    /// "client real" is just the same clock carried through the print
    /// phase. The honest two-clock decomposition — server CPU / server
    /// real / wire / client print, each measured where it runs — comes from
    /// running the query over `minidb-net` (see experiment E21).
    pub fn client_real_ms(&self) -> f64 {
        self.server_real_ms() + self.phases.phase(Phase::Print).unwrap_or(0.0)
    }

    /// *Simulated* server real time: execute wall plus the memsim disk
    /// wait accounting ([`QueryResult::sim_io_ms`]). Use this for what-if
    /// experiments on era hardware (E2's 1992 disks); use
    /// [`QueryResult::server_real_ms`] when reporting what was measured.
    pub fn sim_server_real_ms(&self) -> f64 {
        self.server_real_ms() + self.sim_io_ms
    }

    /// *Simulated* client real time: [`QueryResult::sim_server_real_ms`]
    /// plus print wall plus the sink's simulated device overhead.
    pub fn sim_client_real_ms(&self) -> f64 {
        self.sim_server_real_ms()
            + self.phases.phase(Phase::Print).unwrap_or(0.0)
            + self.sim_print_ms
    }

    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// A database session.
pub struct Session {
    catalog: Catalog,
    mode: ExecMode,
    optimizer: OptimizerConfig,
    pool: Option<BufferPool>,
    parallelism: usize,
    morsel_rows: usize,
    faults: Option<Arc<FaultRegistry>>,
    /// Statements issued so far — the fault key for the `minidb.*`
    /// failpoints, so a schedule targets "the 3rd statement"
    /// deterministically regardless of timing.
    statements: u64,
    /// Real storage-pool counter deltas of the last statement, when the
    /// catalog is disk-backed. Feeds [`Session::pool_hit_rate`].
    last_store_io: Option<perfeval_store::PoolCounters>,
}

// Parallel experiment workers (`perfeval-exec`) each own sessions on their
// own threads; keep that possible by construction.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<QueryResult>();
};

impl Session {
    /// Creates a session over a catalog with the optimized engine, all
    /// optimizer rules on, and no I/O simulation.
    pub fn new(catalog: Catalog) -> Self {
        Session {
            catalog,
            mode: ExecMode::Optimized,
            optimizer: OptimizerConfig::all(),
            pool: None,
            parallelism: 1,
            morsel_rows: crate::exec::DEFAULT_MORSEL_ROWS,
            faults: None,
            statements: 0,
            last_store_io: None,
        }
    }

    /// Arms a fault registry: the session evaluates the `minidb.parse` and
    /// `minidb.execute` failpoints (keyed by 0-based statement ordinal)
    /// around each statement, so robustness experiments can crash, delay,
    /// or hang the engine at a chosen statement deterministically. The
    /// `minidb.cancel` site (same key, `FailIo` arms) force-cancels the
    /// statement's [`CancelToken`](crate::CancelToken) before parse — a
    /// scheduled cancellation rather than a raced one.
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Selects the execution engine (the DBG/OPT axis).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the default worker-thread count for queries on this session
    /// (`<= 1` is the serial engine; the debug engine ignores the knob).
    /// Individual queries can override it with [`Query::parallelism`].
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Sets the default rows-per-morsel granularity for parallel queries.
    ///
    /// # Panics
    /// Panics if `rows == 0`.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "morsel size must be at least one row");
        self.morsel_rows = rows;
        self
    }

    /// Attaches a simulated disk + buffer pool; scans now charge page I/O
    /// and [`Session::flush_caches`] produces genuine cold runs.
    pub fn with_disk(mut self, disk: Disk, pool_pages: usize) -> Self {
        self.pool = Some(BufferPool::new(disk, pool_pages));
        self
    }

    /// Reconfigures the optimizer (for ablations).
    pub fn set_optimizer(&mut self, config: OptimizerConfig) {
        self.optimizer = config;
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The catalog (immutable).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (loading data).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Flushes the buffer pool — the cold-run "reboot" of slide 32. No-op
    /// without a pool.
    ///
    /// For a disk-backed catalog this is a *real* cold switch: it empties
    /// the storage buffer pool and drops the segment files' OS page-cache
    /// pages ([`Storage::drop_caches`](crate::Storage::drop_caches)).
    pub fn flush_caches(&mut self) {
        if let Some(pool) = &mut self.pool {
            pool.flush();
        }
        if let Some(store) = self.catalog.storage() {
            store.drop_caches();
        }
    }

    /// Buffer-pool hit rate of the last statement (`None` without a pool).
    ///
    /// Prefers the *real* storage pool of a disk-backed catalog — a
    /// measured rate — over the modeled `memsim` pool.
    pub fn pool_hit_rate(&self) -> Option<f64> {
        if self.catalog.storage().is_some() {
            return self.last_store_io.as_ref().map(|c| c.hit_rate());
        }
        self.pool.as_ref().map(|p| p.hit_rate())
    }

    /// Plans a statement (parse + optimize), without executing. Only
    /// SELECT statements have plans.
    pub fn plan(&self, sql: &str) -> Result<Plan, DbError> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let plan = to_plan(&stmt, |t| {
                    Ok(self.catalog.table(t)?.column_names().to_vec())
                })?;
                optimize(plan, &self.catalog, self.optimizer)
            }
            _ => Err(DbError::Semantic(
                "only SELECT statements have query plans".into(),
            )),
        }
    }

    /// EXPLAIN: the optimized plan as an operator tree.
    pub fn explain(&self, sql: &str) -> Result<String, DbError> {
        Ok(self.plan(sql)?.explain(&self.catalog))
    }

    /// Starts building a query. Configure with [`Query::sink`] /
    /// [`Query::traced`], then call [`Query::run`].
    pub fn query<'s, 'q>(&'s mut self, sql: &'q str) -> Query<'s, 'q> {
        let parallelism = self.parallelism;
        let morsel_rows = self.morsel_rows;
        Query {
            session: self,
            sql,
            sink: None,
            tracer: None,
            parallelism,
            morsel_rows,
            cancel: None,
            deadline_ms: None,
        }
    }
}

/// A configured-but-not-yet-run query: the builder returned by
/// [`Session::query`].
///
/// Defaults: results go to a [`NullSink`] (pure server-side measurement)
/// and no trace is recorded.
#[must_use = "a Query does nothing until .run() is called"]
pub struct Query<'s, 'q> {
    session: &'s mut Session,
    sql: &'q str,
    sink: Option<&'q mut dyn ResultSink>,
    tracer: Option<&'q Tracer>,
    parallelism: usize,
    morsel_rows: usize,
    cancel: Option<crate::cancel::CancelToken>,
    deadline_ms: Option<f64>,
}

impl<'s, 'q> Query<'s, 'q> {
    /// Delivers the result to `sink` instead of discarding it.
    pub fn sink(mut self, sink: &'q mut dyn ResultSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Records phase and per-operator spans into `tracer` while the query
    /// runs.
    pub fn traced(mut self, tracer: &'q Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Runs this query with `threads` morsel workers (`<= 1` is serial).
    /// The result is bit-identical to a serial run regardless of thread
    /// count or morsel size; only the wall clock changes.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Overrides the rows-per-morsel granularity for this query.
    ///
    /// # Panics
    /// Panics if `rows == 0`.
    pub fn morsel_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "morsel size must be at least one row");
        self.morsel_rows = rows;
        self
    }

    /// Attaches a cancellation handle: the executor polls it at operator
    /// and morsel boundaries and unwinds with [`DbError::Cancelled`],
    /// discarding partial work. The session itself is untouched — the
    /// next query on it runs normally.
    pub fn cancel(mut self, token: crate::cancel::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Gives this query a deadline, milliseconds from the moment
    /// [`run`](Self::run) starts (covering parse, optimize, and
    /// execute). Combines with [`cancel`](Self::cancel): whichever
    /// trigger fires first wins.
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Parses, optimizes, executes, and prints the statement, returning the
    /// timed result.
    pub fn run(self) -> Result<QueryResult, DbError> {
        let Query {
            session,
            sql,
            sink,
            tracer,
            parallelism,
            morsel_rows,
            cancel,
            deadline_ms,
        } = self;
        // The effective token: the caller's handle (if any), tightened by
        // the deadline (if any). The `minidb.cancel` failpoint (keyed by
        // statement ordinal, FailIo arms) force-cancels it up front — the
        // deterministic way chaos tests and E25 inject cancellations.
        let cancel = match (cancel, deadline_ms) {
            (None, None) => None,
            (Some(t), None) => Some(t),
            (None, Some(ms)) => Some(crate::cancel::CancelToken::with_deadline_ms(ms)),
            (Some(t), Some(ms)) => Some(t.deadline_in_ms(ms)),
        };
        let mut null = NullSink;
        let sink: &mut dyn ResultSink = match sink {
            Some(s) => s,
            None => &mut null,
        };

        let statement = session.statements;
        session.statements += 1;
        let cancel = match &session.faults {
            Some(faults) if faults.io_fails("minidb.cancel", statement) => {
                let token = cancel.unwrap_or_default();
                token.cancel();
                Some(token)
            }
            _ => cancel,
        };

        let mut timer = PhaseTimer::new();
        let mut root = tracer.map(|t| t.span("query"));
        if let Some(g) = root.as_mut() {
            g.attr("sql", sql_preview(sql))
                .attr("mode", session.mode.to_string());
        }

        // Deadlines cover the whole statement, so the token is polled
        // before parse as well as inside the executor.
        if let Some(token) = &cancel {
            token.check()?;
        }

        // Parse.
        let t0 = Instant::now();
        let parse_span = tracer.map(|t| t.span("parse"));
        if let Some(faults) = &session.faults {
            faults.fire("minidb.parse", statement, 1);
        }
        let stmt = parse_statement(sql)?;
        let stmt = match stmt {
            Statement::Select(s) => s,
            Statement::CreateTable { name, columns } => {
                let mut builder = crate::table::TableBuilder::new(&name);
                for (col, dt) in &columns {
                    builder = builder.column(col, *dt);
                }
                session.catalog.register(builder.build())?;
                drop(parse_span);
                timer.record_phase(Phase::Parse, t0.elapsed().as_secs_f64() * 1e3);
                return Ok(ddl_result(timer, 0));
            }
            Statement::Insert { table, rows } => {
                let t = session.catalog.table_mut(&table)?;
                let n = rows.len();
                for row in rows {
                    t.push_row(row)?;
                }
                drop(parse_span);
                timer.record_phase(Phase::Parse, t0.elapsed().as_secs_f64() * 1e3);
                return Ok(ddl_result(timer, n));
            }
        };
        let plan = to_plan(&stmt, |t| {
            Ok(session.catalog.table(t)?.column_names().to_vec())
        })?;
        drop(parse_span);
        timer.record_phase(Phase::Parse, t0.elapsed().as_secs_f64() * 1e3);

        // Optimize.
        let t1 = Instant::now();
        let opt_span = tracer.map(|t| t.span("optimize"));
        let plan = optimize(plan, &session.catalog, session.optimizer)?;
        drop(opt_span);
        timer.record_phase(Phase::Optimize, t1.elapsed().as_secs_f64() * 1e3);

        // Execute. Wall time and thread CPU time are measured side by side:
        // their gap (plus simulated I/O) is the user-vs-real exhibit.
        let io_before = session.pool.as_ref().map_or(0.0, |p| p.sim_wait_ns());
        let pool_before = session
            .pool
            .as_ref()
            .map(|p| (p.logical_reads(), p.physical_reads()));
        let store_before = session.catalog.storage().map(|s| s.counters());
        let cpu = CpuClock::new();
        let cpu0 = cpu.now_ns();
        let t2 = Instant::now();
        let mut exec_span = tracer.map(|t| t.span("execute"));
        if let Some(faults) = &session.faults {
            faults.fire("minidb.execute", statement, 1);
        }
        let (result, profile) = {
            let mut executor = Executor::new(&session.catalog, session.mode)
                .with_parallelism(parallelism)
                .with_morsel_rows(morsel_rows);
            if let Some(token) = cancel.clone() {
                executor = executor.with_cancel(token);
            }
            if let Some(pool) = &mut session.pool {
                executor = executor.with_pool(pool);
            }
            if let Some(t) = tracer {
                executor = executor.with_tracer(t);
            }
            let result = executor.run(&plan)?;
            (result, executor.profile().to_vec())
        };
        let execute_cpu_ms = cpu.now_ns().saturating_sub(cpu0) as f64 / 1e6;
        let execute_wall_ms = t2.elapsed().as_secs_f64() * 1e3;
        let io_after = session.pool.as_ref().map_or(0.0, |p| p.sim_wait_ns());
        let sim_io_ms = (io_after - io_before) / 1e6;
        // Real storage-pool deltas, when the catalog is disk-backed.
        let store_io = match (&store_before, session.catalog.storage()) {
            (Some(before), Some(store)) => Some(store.counters().since(before)),
            _ => None,
        };
        session.last_store_io = store_io;
        if let Some(g) = exec_span.as_mut() {
            g.attr("rows_out", result.row_count())
                .attr("cpu_ms", execute_cpu_ms)
                .attr("sim_io_ms", sim_io_ms);
            // pool_hits/pool_misses prefer the *measured* storage pool
            // over the modeled memsim one.
            if let Some(c) = &store_io {
                g.attr("pool_hits", c.hits())
                    .attr("pool_misses", c.physical_reads);
            } else if let (Some((l0, p0)), Some(pool)) = (pool_before, session.pool.as_ref()) {
                let logical = pool.logical_reads().saturating_sub(l0);
                let physical = pool.physical_reads().saturating_sub(p0);
                g.attr("pool_hits", logical.saturating_sub(physical))
                    .attr("pool_misses", physical);
            }
        }
        drop(exec_span);
        timer.record_phase(Phase::Execute, execute_wall_ms);

        // Print.
        let t3 = Instant::now();
        let mut print_span = tracer.map(|t| t.span("print"));
        let report = sink.consume(&result)?;
        if let Some(g) = print_span.as_mut() {
            g.attr("bytes", report.bytes)
                .attr("sim_print_ms", report.sim_overhead_ms);
        }
        drop(print_span);
        timer.record_phase(Phase::Print, t3.elapsed().as_secs_f64() * 1e3);

        let ResultSet { column_names, rows } = result;
        if let Some(g) = root.as_mut() {
            g.attr("rows", rows.len());
        }
        Ok(QueryResult {
            column_names,
            rows,
            phases: timer.finish(),
            execute_cpu_ms,
            sim_io_ms,
            sim_print_ms: report.sim_overhead_ms,
            result_bytes: report.bytes,
            profile,
            store_logical_reads: store_io.as_ref().map_or(0, |c| c.logical_reads),
            store_physical_reads: store_io.as_ref().map_or(0, |c| c.physical_reads),
        })
    }
}

/// Truncates long SQL for span attributes (traces should stay small).
fn sql_preview(sql: &str) -> String {
    const MAX: usize = 120;
    if sql.len() <= MAX {
        return sql.to_owned();
    }
    let mut end = MAX;
    while !sql.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &sql[..end])
}

/// Result shape for DDL/DML statements: no columns, `affected` rows
/// reported via [`QueryResult::row_count`]-independent metadata (we encode
/// it as a single-cell result so scripts can read it).
fn ddl_result(timer: PhaseTimer, affected: usize) -> QueryResult {
    QueryResult {
        column_names: vec!["rows_affected".to_owned()],
        rows: vec![vec![Value::Int(affected as i64)]],
        phases: timer.finish(),
        execute_cpu_ms: 0.0,
        sim_io_ms: 0.0,
        sim_print_ms: 0.0,
        result_bytes: 0,
        profile: Vec::new(),
        store_logical_reads: 0,
        store_physical_reads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TerminalSink;
    use crate::table::TableBuilder;
    use crate::types::DataType;

    fn session() -> Session {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("nums")
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .build();
        for i in 0..10_000 {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
                .unwrap();
        }
        catalog.register(t).unwrap();
        Session::new(catalog)
    }

    #[test]
    fn query_returns_rows_and_phases() {
        let mut s = session();
        let r = s
            .query("SELECT COUNT(*) FROM nums WHERE x < 100")
            .run()
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
        for phase in Phase::ALL {
            assert!(r.phases.phase(phase).is_some(), "missing {phase}");
        }
        assert!(r.server_user_ms() >= 0.0);
        assert_eq!(r.sim_io_ms, 0.0, "no pool attached");
    }

    #[test]
    fn explain_shows_pruned_plan() {
        let s = session();
        let text = s.explain("SELECT SUM(y) FROM nums").unwrap();
        assert!(text.contains("Scan nums [y]"), "{text}");
        assert!(text.contains("HashAggregate"));
    }

    #[test]
    fn profile_entries_render_as_trace() {
        let mut s = session();
        let r = s.query("SELECT MAX(x) FROM nums").run().unwrap();
        let trace = crate::exec::render_profile(&r.profile);
        assert!(trace.contains("Scan nums"));
        assert!(trace.contains("ms"));
    }

    #[test]
    fn debug_mode_is_slower_than_optimized() {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("big")
            .column("v", DataType::Float)
            .build();
        for i in 0..200_000 {
            t.push_row(vec![Value::Float(i as f64)]).unwrap();
        }
        catalog.register(t).unwrap();
        let sql = "SELECT SUM(v) FROM big WHERE v > 1000.0";

        let mut opt = Session::new(catalog.clone()).with_mode(ExecMode::Optimized);
        let mut dbg = Session::new(catalog).with_mode(ExecMode::Debug);
        // Warm once, take the best of three (robust to scheduler noise in
        // dev-profile CI runs).
        let best = |s: &mut Session| {
            s.query(sql).run().unwrap();
            (0..3)
                .map(|_| s.query(sql).run().unwrap().server_user_ms())
                .fold(f64::INFINITY, f64::min)
        };
        let to = best(&mut opt);
        let td = best(&mut dbg);
        assert!(
            td > 1.2 * to,
            "debug ({td:.2} ms) should be clearly slower than optimized ({to:.2} ms)"
        );
    }

    #[test]
    fn cold_run_has_real_much_greater_than_user() {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("big")
            .column("v", DataType::Float)
            .build();
        for i in 0..500_000 {
            t.push_row(vec![Value::Float(i as f64)]).unwrap();
        }
        catalog.register(t).unwrap();
        // A slow 1992-era disk keeps the cold-run I/O wait dominant even
        // when this test runs in an unoptimized dev build (where the CPU
        // component is inflated).
        let mut s = Session::new(catalog).with_disk(Disk::era_1992(), 10_000);
        let sql = "SELECT SUM(v) FROM big";

        s.flush_caches();
        let cold = s.query(sql).run().unwrap();
        // Best of five hot runs, keyed on the real-vs-user gap asserted
        // below: under parallel test execution any single run can be
        // descheduled mid-query, inflating real without touching user.
        let hot = (0..5)
            .map(|_| s.query(sql).run().unwrap())
            .min_by(|a, b| {
                let ga = (a.server_real_ms() - a.server_user_ms()).abs();
                let gb = (b.server_real_ms() - b.server_user_ms()).abs();
                ga.total_cmp(&gb)
            })
            .unwrap();

        assert!(cold.sim_io_ms > 0.0, "cold run must wait on disk");
        assert_eq!(hot.sim_io_ms, 0.0, "hot run must not");
        assert!(
            cold.sim_server_real_ms() > 2.0 * cold.server_user_ms(),
            "cold: sim real {} vs user {}",
            cold.sim_server_real_ms(),
            cold.server_user_ms()
        );
        // Hot real ~ hot user: user is now genuine thread CPU time, so
        // allow scheduler noise instead of demanding bit equality.
        let gap = (hot.server_real_ms() - hot.server_user_ms()).abs();
        assert!(
            gap < 1.0 + 0.5 * hot.server_real_ms(),
            "hot: real {} vs user {}",
            hot.server_real_ms(),
            hot.server_user_ms()
        );
    }

    #[test]
    fn server_real_is_wall_time_not_simulation() {
        // The bugfix this pins: server_real_ms() once added simulated disk
        // waits (pure accounting, no clock ever advanced) to measured wall
        // time, so an in-process run reported a "real" time no stopwatch
        // could reproduce.
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("big")
            .column("v", DataType::Float)
            .build();
        for i in 0..200_000 {
            t.push_row(vec![Value::Float(i as f64)]).unwrap();
        }
        catalog.register(t).unwrap();
        // The slowest era disk maximizes the simulated component.
        let mut s = Session::new(catalog).with_disk(Disk::era_1992(), 10_000);
        s.flush_caches();
        let cold = s.query("SELECT SUM(v) FROM big").run().unwrap();

        assert!(cold.sim_io_ms > 0.0, "cold run accrues simulated waits");
        let wall = cold.phases.phase(Phase::Execute).unwrap();
        assert_eq!(
            cold.server_real_ms(),
            wall,
            "measured real time is execute wall time, nothing else"
        );
        assert_eq!(
            cold.sim_server_real_ms(),
            wall + cold.sim_io_ms,
            "the simulation-inclusive figure is opt-in and labeled as such"
        );
        assert!(
            cold.server_real_ms() < cold.sim_server_real_ms(),
            "simulated waits are not wall time"
        );
    }

    #[test]
    fn terminal_print_dominates_for_large_results() {
        let mut s = session();
        let mut terminal = TerminalSink::new();
        let r = s
            .query("SELECT x, y FROM nums")
            .sink(&mut terminal)
            .run()
            .unwrap();
        assert_eq!(r.row_count(), 10_000);
        assert!(r.sim_print_ms > 0.0);
        assert!(r.sim_client_real_ms() > r.sim_server_real_ms());
        // The measured (non-simulated) figures order the same way: printing
        // 10k rows costs real wall time too.
        assert!(r.client_real_ms() > r.server_real_ms());
        assert!(r.result_bytes > 100_000);
    }

    #[test]
    fn optimizer_toggle_changes_plan() {
        let mut s = session();
        s.set_optimizer(OptimizerConfig::none());
        let unopt = s.explain("SELECT SUM(y) FROM nums").unwrap();
        assert!(unopt.contains("Scan nums [*]"), "{unopt}");
    }

    #[test]
    fn errors_propagate() {
        let mut s = session();
        assert!(matches!(
            s.query("SELECT nope FROM nums").run(),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.query("SELECT x FROM missing").run(),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(s.query("garbage").run(), Err(DbError::Parse(_))));
    }

    #[test]
    fn pool_hit_rate_visible() {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("small")
            .column("v", DataType::Int)
            .build();
        for i in 0..100_000 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        catalog.register(t).unwrap();
        let mut s = Session::new(catalog).with_disk(Disk::raid_2008(), 1_000);
        assert_eq!(s.pool_hit_rate(), Some(0.0));
        s.query("SELECT COUNT(*) FROM small").run().unwrap();
        s.query("SELECT COUNT(*) FROM small").run().unwrap();
        assert!(s.pool_hit_rate().unwrap() > 0.0);
    }

    #[test]
    fn traced_query_records_phase_and_operator_spans() {
        let tracer = Tracer::new();
        let mut s = session();
        let r = s
            .query("SELECT SUM(y) FROM nums WHERE x < 5000")
            .traced(&tracer)
            .run()
            .unwrap();
        assert_eq!(r.row_count(), 1);

        let trace = tracer.snapshot();
        assert_eq!(trace.lanes.len(), 1, "single-threaded query, one lane");
        let root = trace.find("query").next().expect("root span");
        assert!(root.parent.is_none());
        assert!(root.attr("sql").is_some());
        assert!(root.attr("rows").is_some());
        for phase in ["parse", "optimize", "execute", "print"] {
            let span = trace
                .find(phase)
                .next()
                .unwrap_or_else(|| panic!("no {phase}"));
            assert_eq!(span.parent, Some(root.id), "{phase} nests under query");
        }
        let exec = trace.find("execute").next().unwrap();
        assert!(exec.attr("cpu_ms").is_some());
        // Operator spans nest under the execute phase.
        let scan = trace.find("Scan nums").next().expect("scan operator span");
        assert!(scan.attr("rows_out").is_some());
        let agg = trace.find("HashAggregate").next().expect("aggregate span");
        let mut parent = agg.parent;
        let lane = &trace.lanes[0];
        let mut reached_execute = false;
        while let Some(pid) = parent {
            let p = lane.records.iter().find(|r| r.id == pid).unwrap();
            if p.name == "execute" {
                reached_execute = true;
                break;
            }
            parent = p.parent;
        }
        assert!(reached_execute, "operators are descendants of execute");
    }

    #[test]
    fn traced_query_with_pool_records_hit_miss_attrs() {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("small")
            .column("v", DataType::Int)
            .build();
        for i in 0..100_000 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        catalog.register(t).unwrap();
        let mut s = Session::new(catalog).with_disk(Disk::raid_2008(), 1_000);
        let tracer = Tracer::new();
        s.query("SELECT COUNT(*) FROM small")
            .traced(&tracer)
            .run()
            .unwrap();
        s.query("SELECT COUNT(*) FROM small")
            .traced(&tracer)
            .run()
            .unwrap();
        let trace = tracer.snapshot();
        let execs: Vec<_> = trace.lanes[0]
            .records
            .iter()
            .filter(|r| r.name == "execute")
            .collect();
        assert_eq!(execs.len(), 2);
        // Cold run misses, hot run hits.
        assert!(execs[0].attr("pool_misses").is_some(), "cold run misses");
        assert!(execs[1].attr("pool_hits").is_some(), "hot run hits");
        // Scan operator spans carry the same accounting.
        let scan = trace.find("Scan small").next().expect("scan span");
        assert!(scan.attr("pool_misses").is_some() || scan.attr("pool_hits").is_some());
    }

    #[test]
    fn ddl_through_builder_reports_rows_affected() {
        let mut s = Session::new(Catalog::new());
        let r = s.query("CREATE TABLE t (a INT, b FLOAT)").run().unwrap();
        assert_eq!(r.column_names, vec!["rows_affected"]);
        let r = s
            .query("INSERT INTO t VALUES (1, 2.0), (3, 4.0)")
            .run()
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
        assert_eq!(r.execute_cpu_ms, 0.0);
        assert!(r.phases.phase(Phase::Parse).is_some());
    }

    #[test]
    fn failpoints_target_statements_deterministically() {
        use perfeval_fault::{panic_message, FaultAction, Trigger};
        let faults = Arc::new(FaultRegistry::new(11).armed_always(
            "minidb.execute",
            Trigger::Key(1),
            FaultAction::Panic,
        ));
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("nums").column("x", DataType::Int).build();
        for i in 0..100 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        catalog.register(t).unwrap();
        let mut s = Session::new(catalog).with_faults(Arc::clone(&faults));

        // Statement 0 is untouched.
        let r = s.query("SELECT COUNT(*) FROM nums").run().unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(100)]]);

        // Statement 1 dies at the execute failpoint.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.query("SELECT COUNT(*) FROM nums").run()
        }))
        .expect_err("statement 1 panics");
        assert!(panic_message(err.as_ref()).contains("minidb.execute"));

        // Statement 2 recovers — the session survives a contained panic.
        let r = s.query("SELECT MAX(x) FROM nums").run().unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(99)]]);
        assert_eq!(faults.fired("minidb.execute"), 1);
        assert_eq!(
            faults.hits("minidb.parse"),
            3,
            "parse site saw every statement"
        );
    }

    #[test]
    fn injected_latency_preserves_results() {
        use perfeval_fault::{FaultAction, Trigger};
        let faults = Arc::new(FaultRegistry::new(0).armed_always(
            "minidb.execute",
            Trigger::Always,
            FaultAction::DelayMs(2.0),
        ));
        let mut clean = session();
        let baseline = clean.query("SELECT SUM(y) FROM nums").run().unwrap();

        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("nums")
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .build();
        for i in 0..10_000 {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
                .unwrap();
        }
        catalog.register(t).unwrap();
        let mut slow = Session::new(catalog).with_faults(faults);
        let delayed = slow.query("SELECT SUM(y) FROM nums").run().unwrap();
        assert_eq!(
            delayed.rows, baseline.rows,
            "latency injection changes timing, never answers"
        );
        assert!(
            delayed.phases.phase(Phase::Execute).unwrap() >= 2.0,
            "injected delay shows up in the execute phase"
        );
    }

    #[test]
    fn builder_covers_the_removed_entry_points() {
        // `execute` / `execute_to` / `profile` are gone; the builder serves
        // all three shapes.
        let mut s = session();
        let r = s.query("SELECT COUNT(*) FROM nums").run().unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(10_000)]]);
        let mut sink = NullSink;
        let r2 = s
            .query("SELECT COUNT(*) FROM nums")
            .sink(&mut sink)
            .run()
            .unwrap();
        assert_eq!(r2.rows, r.rows);
        let r3 = s.query("SELECT MAX(x) FROM nums").run().unwrap();
        let trace = crate::exec::render_profile(&r3.profile);
        assert!(trace.contains("Scan nums"));
    }
}
