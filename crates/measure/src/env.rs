//! Environment specification: the Goldilocks problem of slides 149–155.
//!
//! *"We use a machine with 3.4 GHz"* is **under-specified** — 3.4 GHz of
//! what? *`lspci -v`*'s 151 lines are **over-specified** — noise nobody can
//! act on. The tutorial's recipe for "just right" is:
//!
//! > CPU: vendor, model, generation, clock speed, cache size(s).
//! > Main memory: size. Disk: size & speed. Network: type, speed, topology.
//!
//! [`EnvSpec`] is that recipe as a struct; [`EnvSpec::spec_level`] grades a
//! description, and [`EnvSpec::capture`] fills in what it can from
//! `/proc/cpuinfo` and `/proc/meminfo` on Linux.

/// How completely an environment is described.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecLevel {
    /// Missing fields the tutorial deems mandatory (the "3.4 GHz machine").
    UnderSpecified,
    /// All mandatory fields present — publishable.
    Adequate,
}

/// Hardware environment description at the tutorial's recommended level of
/// detail.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvSpec {
    /// CPU vendor, e.g. "GenuineIntel".
    pub cpu_vendor: String,
    /// CPU model name, e.g. "Intel(R) Pentium(R) M processor 1.50GHz".
    pub cpu_model: String,
    /// Nominal clock speed in MHz.
    pub cpu_mhz: f64,
    /// Cache sizes in KiB, innermost first (e.g. [32, 2048]).
    pub cache_kib: Vec<u64>,
    /// Main memory size in MiB.
    pub ram_mib: u64,
    /// Disk description, e.g. "120GB laptop ATA @ 5400RPM".
    pub disk: String,
    /// Network description, e.g. "1Gb shared Ethernet" (empty if N/A).
    pub network: String,
    /// Operating system, e.g. "Linux 6.18".
    pub os: String,
}

impl EnvSpec {
    /// The tutorial's example machine: "1.5 GHz Pentium M (Dothan), 32KB L1
    /// cache, 2MB L2 cache, 2GB RAM, 5400RPM disk".
    pub fn tutorial_laptop() -> Self {
        EnvSpec {
            cpu_vendor: "GenuineIntel".into(),
            cpu_model: "Intel(R) Pentium(R) M processor 1.50GHz (Dothan)".into(),
            cpu_mhz: 1500.0,
            cache_kib: vec![32, 2048],
            ram_mib: 2048,
            disk: "120GB Laptop ATA disk @ 5400RPM".into(),
            network: String::new(),
            os: "Linux 2.6".into(),
        }
    }

    /// Captures what it can from the running Linux system; missing pieces
    /// stay empty (and will be flagged by [`EnvSpec::spec_level`], prompting
    /// the experimenter to fill them in — disks and networks are not
    /// reliably introspectable).
    pub fn capture() -> Self {
        let mut spec = EnvSpec::default();
        if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
            for line in cpuinfo.lines() {
                let Some((key, value)) = line.split_once(':') else {
                    continue;
                };
                let key = key.trim();
                let value = value.trim();
                match key {
                    "vendor_id" if spec.cpu_vendor.is_empty() => {
                        spec.cpu_vendor = value.to_owned();
                    }
                    "model name" if spec.cpu_model.is_empty() => {
                        spec.cpu_model = value.to_owned();
                    }
                    "cpu MHz" if spec.cpu_mhz == 0.0 => {
                        spec.cpu_mhz = value.parse().unwrap_or(0.0);
                    }
                    "cache size" if spec.cache_kib.is_empty() => {
                        // Format: "2048 KB"
                        if let Some(kb) = value.split_whitespace().next() {
                            if let Ok(kb) = kb.parse::<u64>() {
                                spec.cache_kib.push(kb);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Ok(meminfo) = std::fs::read_to_string("/proc/meminfo") {
            for line in meminfo.lines() {
                if let Some(rest) = line.strip_prefix("MemTotal:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        spec.ram_mib = kb.parse::<u64>().unwrap_or(0) / 1024;
                    }
                    break;
                }
            }
        }
        if let Ok(osrel) = std::fs::read_to_string("/proc/sys/kernel/osrelease") {
            spec.os = format!("Linux {}", osrel.trim());
        }
        spec
    }

    /// Grades the description against the tutorial's mandatory list.
    /// `network` is optional (single-machine experiments have none).
    pub fn spec_level(&self) -> SpecLevel {
        let mandatory_present = !self.cpu_model.is_empty()
            && self.cpu_mhz > 0.0
            && !self.cache_kib.is_empty()
            && self.ram_mib > 0
            && !self.disk.is_empty()
            && !self.os.is_empty();
        if mandatory_present {
            SpecLevel::Adequate
        } else {
            SpecLevel::UnderSpecified
        }
    }

    /// The fields still missing for an adequate specification.
    pub fn missing_fields(&self) -> Vec<&'static str> {
        let mut missing = Vec::new();
        if self.cpu_model.is_empty() {
            missing.push("cpu_model");
        }
        if self.cpu_mhz <= 0.0 {
            missing.push("cpu_mhz");
        }
        if self.cache_kib.is_empty() {
            missing.push("cache_kib");
        }
        if self.ram_mib == 0 {
            missing.push("ram_mib");
        }
        if self.disk.is_empty() {
            missing.push("disk");
        }
        if self.os.is_empty() {
            missing.push("os");
        }
        missing
    }

    /// Renders the paper-ready environment paragraph.
    pub fn render(&self) -> String {
        let caches = self
            .cache_kib
            .iter()
            .enumerate()
            .map(|(i, kb)| format!("L{} {} KiB", i + 1, kb))
            .collect::<Vec<_>>()
            .join(", ");
        let disk = if self.disk.is_empty() {
            "(unspecified)"
        } else {
            &self.disk
        };
        let mut out = format!(
            "CPU: {} ({:.0} MHz); caches: {}; RAM: {} MiB; disk: {}; OS: {}",
            self.cpu_model, self.cpu_mhz, caches, self.ram_mib, disk, self.os
        );
        if !self.network.is_empty() {
            out.push_str(&format!("; network: {}", self.network));
        }
        out
    }
}

/// Software environment: "product names, exact version numbers, and/or
/// sources where obtained from" (slide 156).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareSpec {
    /// Product name, e.g. "MonetDB/SQL".
    pub name: String,
    /// Exact version, e.g. "v5.5.0/2.23.0".
    pub version: String,
    /// Where it was obtained (URL, package, commit).
    pub source: String,
    /// Build configuration that affects performance (the DBG/OPT trap):
    /// compiler flags, tuning knobs.
    pub build_config: String,
}

impl SoftwareSpec {
    /// Creates a software spec.
    pub fn new(name: &str, version: &str, source: &str, build_config: &str) -> Self {
        SoftwareSpec {
            name: name.to_owned(),
            version: version.to_owned(),
            source: source.to_owned(),
            build_config: build_config.to_owned(),
        }
    }

    /// True if the version string looks exact (contains a digit) — "latest"
    /// or "recent" do not satisfy repeatability.
    pub fn has_exact_version(&self) -> bool {
        self.version.chars().any(|c| c.is_ascii_digit())
    }

    /// Renders the one-line software citation.
    pub fn render(&self) -> String {
        format!(
            "{} {} (from {}; built with {})",
            self.name, self.version, self.source, self.build_config
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tutorial_laptop_is_adequate() {
        let spec = EnvSpec::tutorial_laptop();
        assert_eq!(spec.spec_level(), SpecLevel::Adequate);
        assert!(spec.missing_fields().is_empty());
        let text = spec.render();
        assert!(text.contains("Pentium"));
        assert!(text.contains("L2 2048 KiB"));
        assert!(text.contains("5400RPM"));
    }

    #[test]
    fn bare_clock_speed_is_underspecified() {
        // "We use a machine with 3.4 GHz."
        let spec = EnvSpec {
            cpu_mhz: 3400.0,
            ..EnvSpec::default()
        };
        assert_eq!(spec.spec_level(), SpecLevel::UnderSpecified);
        let missing = spec.missing_fields();
        assert!(missing.contains(&"cpu_model"));
        assert!(missing.contains(&"disk"));
        assert!(!missing.contains(&"cpu_mhz"));
    }

    #[test]
    fn capture_reads_procfs_on_linux() {
        let spec = EnvSpec::capture();
        #[cfg(target_os = "linux")]
        {
            assert!(!spec.cpu_model.is_empty(), "cpuinfo should give a model");
            assert!(spec.ram_mib > 0, "meminfo should give RAM");
            assert!(spec.os.starts_with("Linux"));
        }
        // Captured spec is typically still under-specified (no disk info) —
        // by design: the experimenter must describe the disk.
        let _ = spec.spec_level();
    }

    #[test]
    fn network_is_optional_but_rendered_when_present() {
        let mut spec = EnvSpec::tutorial_laptop();
        assert!(!spec.render().contains("network"));
        spec.network = "1Gb shared Ethernet".into();
        assert_eq!(spec.spec_level(), SpecLevel::Adequate);
        assert!(spec.render().contains("1Gb shared Ethernet"));
    }

    #[test]
    fn software_spec_versions() {
        let good = SoftwareSpec::new(
            "MonetDB/SQL",
            "v5.5.0/2.23.0",
            "monetdb.org",
            "--disable-debug --enable-optimize",
        );
        assert!(good.has_exact_version());
        assert!(good.render().contains("v5.5.0"));
        let bad = SoftwareSpec::new("MySQL", "latest", "apt", "default");
        assert!(!bad.has_exact_version());
    }
}
