//! Run protocols: hot vs. cold, warmup, replication.
//!
//! Slide 32 gives the tutorial's only formal-ish definitions:
//!
//! > **Cold run** — a run of the query right after a DBMS is started and no
//! > (benchmark-relevant) data is preloaded into the system's main memory
//! > […] achieved via a system reboot or by running an application that
//! > accesses sufficient (benchmark-irrelevant) data to flush caches.
//! >
//! > **Hot run** — a run such that as much (query-relevant) data is
//! > available as close to the CPU as possible […] achieved by running the
//! > query (at least) once before the actual measured run starts.
//!
//! [`RunProtocol`] encodes the choice, plus *how many* measured replications
//! to take and which to keep — including the tables' "measured last of three
//! consecutive runs" policy. Crucially, the protocol is part of the result
//! ([`RunResult::protocol_description`]): *"Be aware and document what you
//! do / choose."*

use crate::sample::Measurement;

/// The memory state a measured run starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Caches flushed before *every* measured run (reboot-equivalent).
    Cold,
    /// Warmup runs executed first so data is resident.
    Hot,
}

impl std::fmt::Display for CacheState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheState::Cold => "cold",
            CacheState::Hot => "hot",
        })
    }
}

/// Which measured replications enter the reported statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepPolicy {
    /// Keep every measured replication.
    All,
    /// Keep only the last one — the tutorial's "measured last of three
    /// consecutive runs".
    Last,
    /// Keep the last `n`.
    LastN(usize),
}

/// A fully specified run protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProtocol {
    /// Hot or cold runs.
    pub state: CacheState,
    /// Number of unmeasured warmup runs (only meaningful for hot runs;
    /// forced to 0 for cold runs).
    pub warmup: usize,
    /// Number of measured replications.
    pub replications: usize,
    /// Which replications to keep.
    pub keep: KeepPolicy,
}

impl RunProtocol {
    /// The tutorial's table protocol: hot, "measured last of three
    /// consecutive runs" (two warmups, one kept measurement — but we measure
    /// all three and keep the last, which is equivalent and records more).
    pub fn last_of_three_hot() -> Self {
        RunProtocol {
            state: CacheState::Hot,
            warmup: 0,
            replications: 3,
            keep: KeepPolicy::Last,
        }
    }

    /// A cold protocol: flush before each of `replications` measured runs.
    pub fn cold(replications: usize) -> Self {
        RunProtocol {
            state: CacheState::Cold,
            warmup: 0,
            replications,
            keep: KeepPolicy::All,
        }
    }

    /// A hot protocol with explicit warmup and replication counts, keeping
    /// all measured runs (the statistically preferable default).
    pub fn hot(warmup: usize, replications: usize) -> Self {
        RunProtocol {
            state: CacheState::Hot,
            warmup,
            replications,
            keep: KeepPolicy::All,
        }
    }

    /// Executes the protocol.
    ///
    /// * `flush` — invoked before every measured run when cold (the
    ///   reboot / cache-flusher equivalent); invoked once before the first
    ///   warmup when hot, so the first warmup starts from a defined state.
    /// * `run` — executes the workload once and returns its measurement.
    ///
    /// # Panics
    /// Panics if `replications == 0`.
    pub fn execute(
        &self,
        mut flush: impl FnMut(),
        mut run: impl FnMut() -> Measurement,
    ) -> RunResult {
        assert!(self.replications > 0, "protocol needs >= 1 replication");
        let mut measured = Vec::with_capacity(self.replications);
        match self.state {
            CacheState::Cold => {
                for _ in 0..self.replications {
                    flush();
                    measured.push(run());
                }
            }
            CacheState::Hot => {
                flush();
                for _ in 0..self.warmup {
                    let _ = run(); // warmups discarded
                }
                for _ in 0..self.replications {
                    measured.push(run());
                }
            }
        }
        let kept: Vec<Measurement> = match self.keep {
            KeepPolicy::All => measured.clone(),
            KeepPolicy::Last => vec![measured.last().expect("replications >= 1").clone()],
            KeepPolicy::LastN(n) => {
                let skip = measured.len().saturating_sub(n.max(1));
                measured[skip..].to_vec()
            }
        };
        RunResult {
            protocol: *self,
            all: measured,
            kept,
        }
    }

    /// One-line description for documentation/output headers.
    pub fn describe(&self) -> String {
        let keep = match self.keep {
            KeepPolicy::All => "all kept".to_owned(),
            KeepPolicy::Last => "last kept".to_owned(),
            KeepPolicy::LastN(n) => format!("last {n} kept"),
        };
        format!(
            "{} runs: {} warmup(s), {} measured, {}",
            self.state, self.warmup, self.replications, keep
        )
    }
}

/// Output of executing a [`RunProtocol`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The protocol that produced this result (self-documentation).
    pub protocol: RunProtocol,
    /// Every measured replication, in execution order.
    pub all: Vec<Measurement>,
    /// The replications selected by the keep policy.
    pub kept: Vec<Measurement>,
}

impl RunResult {
    /// Total-time values (ms) of the kept replications.
    pub fn kept_totals(&self) -> Vec<f64> {
        self.kept.iter().map(|m| m.total_ms()).collect()
    }

    /// Mean of the kept totals.
    pub fn mean_total_ms(&self) -> f64 {
        let totals = self.kept_totals();
        totals.iter().sum::<f64>() / totals.len() as f64
    }

    /// The documentation line: protocol description for inclusion next to
    /// any reported number.
    pub fn protocol_description(&self) -> String {
        self.protocol.describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake system whose run time drops after the first access (cache
    /// warming) and resets when flushed.
    struct FakeSystem {
        warm: bool,
        flushes: usize,
        runs: usize,
    }

    impl FakeSystem {
        fn new() -> Self {
            FakeSystem {
                warm: false,
                flushes: 0,
                runs: 0,
            }
        }

        fn flush(&mut self) {
            self.warm = false;
            self.flushes += 1;
        }

        fn run(&mut self) -> Measurement {
            self.runs += 1;
            let ms = if self.warm { 100.0 } else { 1000.0 };
            self.warm = true;
            Measurement::total(ms)
        }
    }

    #[test]
    fn cold_protocol_flushes_before_every_run() {
        let sys = std::cell::RefCell::new(FakeSystem::new());
        let result =
            RunProtocol::cold(3).execute(|| sys.borrow_mut().flush(), || sys.borrow_mut().run());
        assert_eq!(sys.borrow().flushes, 3);
        assert_eq!(result.kept_totals(), vec![1000.0, 1000.0, 1000.0]);
    }

    #[test]
    fn hot_protocol_warms_up_first() {
        let sys = std::cell::RefCell::new(FakeSystem::new());
        let result =
            RunProtocol::hot(1, 3).execute(|| sys.borrow_mut().flush(), || sys.borrow_mut().run());
        // 1 warmup (cold, discarded) + 3 measured (all hot).
        assert_eq!(sys.borrow().runs, 4);
        assert_eq!(result.kept_totals(), vec![100.0, 100.0, 100.0]);
    }

    #[test]
    fn last_of_three_keeps_only_final_run() {
        let sys = std::cell::RefCell::new(FakeSystem::new());
        let result = RunProtocol::last_of_three_hot()
            .execute(|| sys.borrow_mut().flush(), || sys.borrow_mut().run());
        // First measured run is cold (1000), the last two hot (100);
        // only the final hot run is kept.
        assert_eq!(result.all.len(), 3);
        assert_eq!(result.kept_totals(), vec![100.0]);
        assert_eq!(result.mean_total_ms(), 100.0);
    }

    #[test]
    fn hot_and_cold_differ_like_the_tutorial_table() {
        // The whole point of slide 33: same query, wildly different numbers.
        let sys = std::cell::RefCell::new(FakeSystem::new());
        let cold =
            RunProtocol::cold(1).execute(|| sys.borrow_mut().flush(), || sys.borrow_mut().run());
        let sys2 = std::cell::RefCell::new(FakeSystem::new());
        let hot = RunProtocol::hot(1, 1)
            .execute(|| sys2.borrow_mut().flush(), || sys2.borrow_mut().run());
        assert!(cold.mean_total_ms() > 5.0 * hot.mean_total_ms());
    }

    #[test]
    fn keep_last_n() {
        let mut i = 0.0;
        let proto = RunProtocol {
            state: CacheState::Hot,
            warmup: 0,
            replications: 5,
            keep: KeepPolicy::LastN(2),
        };
        let result = proto.execute(
            || {},
            || {
                i += 1.0;
                Measurement::total(i)
            },
        );
        assert_eq!(result.kept_totals(), vec![4.0, 5.0]);
        assert_eq!(result.all.len(), 5);
    }

    #[test]
    fn keep_last_n_larger_than_replications() {
        let proto = RunProtocol {
            state: CacheState::Hot,
            warmup: 0,
            replications: 2,
            keep: KeepPolicy::LastN(10),
        };
        let result = proto.execute(|| {}, || Measurement::total(1.0));
        assert_eq!(result.kept.len(), 2);
    }

    #[test]
    #[should_panic(expected = "protocol needs >= 1 replication")]
    fn zero_replications_panics() {
        let proto = RunProtocol {
            state: CacheState::Hot,
            warmup: 0,
            replications: 0,
            keep: KeepPolicy::All,
        };
        let _ = proto.execute(|| {}, || Measurement::total(1.0));
    }

    #[test]
    fn describe_documents_the_choice() {
        let d = RunProtocol::last_of_three_hot().describe();
        assert!(d.contains("hot"));
        assert!(d.contains("3 measured"));
        assert!(d.contains("last kept"));
        let d = RunProtocol::cold(5).describe();
        assert!(d.contains("cold"));
    }

    #[test]
    fn display_cache_state() {
        assert_eq!(CacheState::Cold.to_string(), "cold");
        assert_eq!(CacheState::Hot.to_string(), "hot");
    }
}
