//! Named event counters — the software face of hardware performance
//! counters.
//!
//! Slide 47's lesson: wall-clock alone could not explain why a memory-bound
//! scan did not speed up with a 10× faster CPU; only *cache-hit / cache-miss
//! / memory-access* counters (VTune, oprofile, perfctr, PAPI, …) revealed
//! the memory wall. Our `memsim` substrate emits exactly such events into a
//! [`CounterSet`], and analyses consume them the way the tutorial's CSI
//! chapter prescribes.

use std::collections::BTreeMap;

/// An ordered map of named `u64` event counters.
///
/// `BTreeMap` keeps rendering deterministic — important for golden-file
/// tests and repeatable reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero first).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Resets every counter to zero (keeps the names — useful to preserve
    /// column sets across runs).
    pub fn reset(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
    }

    /// Merges another counter set into this one by addition.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Ratio of two counters, e.g. miss rate = `ratio("l2_miss",
    /// "l2_access")`. `None` when the denominator is zero.
    pub fn ratio(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let d = self.get(denominator);
        if d == 0 {
            None
        } else {
            Some(self.get(numerator) as f64 / d as f64)
        }
    }

    /// Renders a fixed-width report, one counter per line.
    pub fn render(&self) -> String {
        let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("{name:<width$} {value:>14}\n"));
        }
        out
    }
}

impl std::fmt::Display for CounterSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = CounterSet::new();
        c.add("l1_miss", 10);
        c.add("l1_miss", 5);
        c.incr("l1_hit");
        assert_eq!(c.get("l1_miss"), 15);
        assert_eq!(c.get("l1_hit"), 1);
        assert_eq!(c.get("unknown"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut c = CounterSet::new();
        c.incr("zeta");
        c.incr("alpha");
        c.incr("mid");
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn reset_keeps_names() {
        let mut c = CounterSet::new();
        c.add("x", 7);
        c.reset();
        assert_eq!(c.get("x"), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_adds() {
        let mut a = CounterSet::new();
        a.add("hits", 10);
        let mut b = CounterSet::new();
        b.add("hits", 5);
        b.add("misses", 2);
        a.merge(&b);
        assert_eq!(a.get("hits"), 15);
        assert_eq!(a.get("misses"), 2);
    }

    #[test]
    fn miss_rate_ratio() {
        let mut c = CounterSet::new();
        c.add("l2_miss", 25);
        c.add("l2_access", 100);
        assert_eq!(c.ratio("l2_miss", "l2_access"), Some(0.25));
        assert_eq!(c.ratio("l2_miss", "nonexistent"), None);
    }

    #[test]
    fn render_is_aligned_and_deterministic() {
        let mut c = CounterSet::new();
        c.add("cycles", 123_456);
        c.add("l1_miss", 42);
        let r1 = c.render();
        let r2 = c.to_string();
        assert_eq!(r1, r2);
        assert!(r1.contains("cycles"));
        assert_eq!(r1.lines().count(), 2);
        // "cycles " padded to width of "l1_miss" (7).
        assert!(r1.starts_with("cycles "));
    }

    #[test]
    fn empty_set() {
        let c = CounterSet::new();
        assert!(c.is_empty());
        assert_eq!(c.render(), "");
    }
}
