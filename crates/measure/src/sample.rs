//! Measurement records and derived metrics.
//!
//! A [`Measurement`] is one timed run, optionally broken into named phases —
//! the shape of MonetDB's `mclient -t` output on slide 29:
//!
//! ```text
//! Trans 11.626 msec
//! Shred  0.000 msec
//! Query  6.462 msec
//! Print  1.934 msec
//! ```
//!
//! The derived metrics (`throughput`, `speedup`, `scaleup`) are the "What to
//! measure?" basics of slide 22.

/// The canonical client-observed query phases, replacing stringly-typed
/// phase lookups: a typo like `phase_ms("exeucte")` silently returned
/// `None`, while `phase(Phase::Execute)` cannot be misspelled.
///
/// Custom phase names (e.g. `"io"` in simulator measurements) remain
/// available through [`Measurement::named`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// SQL text → AST (MonetDB's `Trans`).
    Parse,
    /// Plan rewriting.
    Optimize,
    /// Engine execution (the "server time" of the user-vs-real exhibit).
    Execute,
    /// Result delivery to the sink (MonetDB's `Print`).
    Print,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 4] = [Phase::Parse, Phase::Optimize, Phase::Execute, Phase::Print];

    /// The stable lowercase key this phase is stored under, used by
    /// [`Measurement::named`] and [`PhaseTimer::record_phase`].
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Optimize => "optimize",
            Phase::Execute => "execute",
            Phase::Print => "print",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timed run with optional per-phase breakdown (all times in
/// milliseconds, the tutorial's universal unit).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Ordered (phase name, duration ms) pairs.
    phases: Vec<(String, f64)>,
}

impl Measurement {
    /// Creates a single-phase measurement named `"total"`.
    pub fn total(ms: f64) -> Self {
        Measurement {
            phases: vec![("total".to_owned(), ms)],
        }
    }

    /// Creates a measurement from explicit phases.
    pub fn from_phases(phases: Vec<(String, f64)>) -> Self {
        Measurement { phases }
    }

    /// Total duration: the sum of all phases.
    pub fn total_ms(&self) -> f64 {
        self.phases.iter().map(|(_, ms)| ms).sum()
    }

    /// Duration of a canonical [`Phase`], if present.
    pub fn phase(&self, phase: Phase) -> Option<f64> {
        self.named(phase.as_str())
    }

    /// Duration of a custom-named phase, if present. For the canonical
    /// query phases prefer the typo-proof [`Measurement::phase`].
    pub fn named(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ms)| *ms)
    }

    /// All phases in order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Renders the `mclient -t` style breakdown.
    pub fn render(&self) -> String {
        let width = self.phases.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, ms) in &self.phases {
            out.push_str(&format!("{name:<width$} {ms:10.3} msec\n"));
        }
        out
    }
}

/// Accumulates named phases while a run executes, producing a
/// [`Measurement`]. Phase times are supplied by any
/// [`Clock`](crate::clock::Clock) via [`PhaseTimer::record`].
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, f64)>,
}

impl PhaseTimer {
    /// Creates an empty phase timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed phase. Repeated names accumulate into the same
    /// phase (useful for per-operator accounting across a loop).
    pub fn record(&mut self, name: &str, ms: f64) {
        if let Some(slot) = self.phases.iter_mut().find(|(n, _)| n == name) {
            slot.1 += ms;
        } else {
            self.phases.push((name.to_owned(), ms));
        }
    }

    /// Records a completed canonical [`Phase`].
    pub fn record_phase(&mut self, phase: Phase, ms: f64) {
        self.record(phase.as_str(), ms);
    }

    /// Finishes, yielding the measurement.
    pub fn finish(self) -> Measurement {
        Measurement::from_phases(self.phases)
    }
}

/// Throughput in operations per second given `ops` completed in
/// `elapsed_ms`.
///
/// # Panics
/// Panics if `elapsed_ms <= 0`.
pub fn throughput(ops: u64, elapsed_ms: f64) -> f64 {
    assert!(
        elapsed_ms > 0.0,
        "throughput requires positive elapsed time"
    );
    ops as f64 / (elapsed_ms / 1000.0)
}

/// Speedup of `new` over `old` on a lower-is-better metric:
/// `old / new` (2.0 = twice as fast).
///
/// # Panics
/// Panics if `new_ms <= 0`.
pub fn speedup(old_ms: f64, new_ms: f64) -> f64 {
    assert!(new_ms > 0.0, "speedup requires positive new time");
    old_ms / new_ms
}

/// Scale-up efficiency: when the problem grows by `scale_factor` and time
/// grows from `base_ms` to `scaled_ms`, perfect linear scale-up gives 1.0;
/// values below 1.0 mean super-linear cost growth.
///
/// # Panics
/// Panics if any argument is non-positive.
pub fn scaleup_efficiency(base_ms: f64, scaled_ms: f64, scale_factor: f64) -> f64 {
    assert!(
        base_ms > 0.0 && scaled_ms > 0.0 && scale_factor > 0.0,
        "scaleup_efficiency requires positive inputs"
    );
    (base_ms * scale_factor) / scaled_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_measurement() {
        let m = Measurement::total(3533.0);
        assert_eq!(m.total_ms(), 3533.0);
        assert_eq!(m.named("total"), Some(3533.0));
        assert_eq!(m.named("query"), None);
    }

    #[test]
    fn phase_breakdown_sums() {
        // Slide 29's actual numbers.
        let m = Measurement::from_phases(vec![
            ("Trans".into(), 11.626),
            ("Shred".into(), 0.0),
            ("Query".into(), 6.462),
            ("Print".into(), 1.934),
        ]);
        assert!((m.total_ms() - 20.022).abs() < 1e-9);
        assert_eq!(m.named("Query"), Some(6.462));
    }

    #[test]
    fn render_looks_like_mclient() {
        let m = Measurement::from_phases(vec![("Trans".into(), 11.626), ("Query".into(), 6.462)]);
        let text = m.render();
        assert!(text.contains("Trans"));
        assert!(text.contains("msec"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn phase_timer_accumulates_repeats() {
        let mut t = PhaseTimer::new();
        t.record("scan", 1.0);
        t.record("join", 2.0);
        t.record("scan", 0.5);
        let m = t.finish();
        assert_eq!(m.named("scan"), Some(1.5));
        assert_eq!(m.named("join"), Some(2.0));
        assert_eq!(m.phases().len(), 2);
        // Order of first appearance preserved.
        assert_eq!(m.phases()[0].0, "scan");
    }

    #[test]
    fn throughput_math() {
        assert_eq!(throughput(100, 1000.0), 100.0);
        assert_eq!(throughput(50, 500.0), 100.0);
        assert_eq!(throughput(0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive elapsed")]
    fn throughput_rejects_zero_time() {
        throughput(1, 0.0);
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(200.0, 100.0), 2.0);
        assert_eq!(speedup(100.0, 200.0), 0.5);
    }

    #[test]
    fn scaleup_efficiency_math() {
        // 10x data, 10x time -> perfect linear scale-up.
        assert!((scaleup_efficiency(100.0, 1000.0, 10.0) - 1.0).abs() < 1e-12);
        // 10x data, 20x time -> efficiency 0.5.
        assert!((scaleup_efficiency(100.0, 2000.0, 10.0) - 0.5).abs() < 1e-12);
        // Sub-linear growth (e.g. fixed overheads amortized) -> >1.
        assert!(scaleup_efficiency(100.0, 500.0, 10.0) > 1.0);
    }

    #[test]
    fn phase_enum_reads_canonical_keys() {
        let mut t = PhaseTimer::new();
        t.record_phase(Phase::Parse, 1.0);
        t.record_phase(Phase::Execute, 5.0);
        t.record_phase(Phase::Execute, 2.0);
        let m = t.finish();
        assert_eq!(m.phase(Phase::Parse), Some(1.0));
        assert_eq!(m.phase(Phase::Execute), Some(7.0));
        assert_eq!(m.phase(Phase::Print), None);
        // Typed and string views agree: Phase stores under stable keys.
        assert_eq!(m.named("execute"), Some(7.0));
        assert_eq!(Phase::ALL.len(), 4);
        assert_eq!(Phase::Optimize.to_string(), "optimize");
    }

    #[test]
    fn empty_measurement_total_is_zero() {
        let m = Measurement::from_phases(vec![]);
        assert_eq!(m.total_ms(), 0.0);
        assert_eq!(m.render(), "");
    }
}
