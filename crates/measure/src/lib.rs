//! # perfeval-measure
//!
//! Measurement substrate: *what* to measure, *how* to measure it, and *how
//! to run* — the tutorial's planning chapter as a library.
//!
//! * [`clock`] — the "which timer?" question (slide 27). A [`clock::Clock`]
//!   abstraction with wall-clock, process-CPU ("user") time, a quantized
//!   clock reproducing the Windows `timeGetTime` 10 ms-resolution pitfall,
//!   and a manual clock for simulators and tests.
//! * [`protocol`] — hot vs. cold runs, warmup, replication, and the
//!   "measured last of three consecutive runs" policy (slides 30–36).
//! * [`sample`] — measurement records with per-phase breakdown (the
//!   `mclient -t` style `Trans/Shred/Query/Print` output of slide 29) and
//!   derived metrics: throughput, speedup, scale-up.
//! * [`env`] — hardware/software environment capture with the
//!   under-/over-specification check of slides 149–155: report CPU vendor +
//!   model + clock + caches + RAM + disk + network, not "a machine with
//!   3.4 GHz" and not 151 lines of `lspci -v`.
//! * [`counters`] — named event counters, the software face of "hardware
//!   performance counters" (filled in by the `memsim` simulator).
//! * [`guard`] — the measurement-validity guard: MAD-based interference
//!   detection over replicated samples with bounded, deterministic
//!   re-measurement — and an honest `clean: false` when flags persist.
#![warn(missing_docs)]

pub mod adaptive;
pub mod clock;
pub mod counters;
pub mod env;
pub mod guard;
pub mod protocol;
pub mod sample;

pub use adaptive::{measure_until, AdaptiveResult};
pub use clock::{AtomicClock, Clock, CpuClock, ManualClock, QuantizedClock, WallClock};
pub use counters::CounterSet;
pub use env::{EnvSpec, SoftwareSpec, SpecLevel};
pub use guard::{GuardOutcome, ValidityGuard};
pub use protocol::{CacheState, KeepPolicy, RunProtocol, RunResult};
pub use sample::{Measurement, Phase, PhaseTimer};
