//! Measurement-validity guard: detect interference, re-measure, report.
//!
//! The tutorial's "variation due to experimental error is ignored" mistake
//! has a second face: variation due to *interference* (a cron job, a
//! checkpoint, a thermal event) is averaged in as if it were the system
//! under test. The guard runs the replicates, scans them with the MAD
//! detector (robust even when interference hits several replicates at
//! once), deterministically re-measures the flagged indices, and repeats
//! up to a bounded number of rounds. If flags persist, the outcome says so
//! — `clean: false` — instead of quietly shipping a contaminated sample.

use perfeval_stats::outlier::mad_outliers;

/// Policy for validity-guarded sampling: the MAD modified-z threshold and
/// how many re-measurement rounds to attempt before giving up honestly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidityGuard {
    /// Modified z-score threshold passed to
    /// [`mad_outliers`] (3.5 is the customary Iglewicz–Hoaglin value).
    pub threshold: f64,
    /// Re-measurement rounds after the initial pass. 0 = detect only.
    pub max_rounds: usize,
}

impl Default for ValidityGuard {
    fn default() -> Self {
        ValidityGuard {
            threshold: 3.5,
            max_rounds: 2,
        }
    }
}

/// What the guard did and what it believes about the final sample.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardOutcome {
    /// The final sample, one value per replicate index. Flagged replicates
    /// hold their most recent re-measurement.
    pub samples: Vec<f64>,
    /// Replicate indices still flagged by the final detection pass. Empty
    /// when `clean`.
    pub suspected: Vec<usize>,
    /// Total re-measurements performed across all rounds.
    pub remeasured: usize,
    /// Detection rounds run (1 initial + up to `max_rounds` re-measure
    /// rounds; 0 when the sample was too small to scan).
    pub rounds: usize,
    /// True iff the final pass flagged nothing. `false` means persistent
    /// contamination — report it, don't average over it.
    pub clean: bool,
}

impl GuardOutcome {
    /// One-line summary for reports.
    pub fn describe(&self) -> String {
        if self.clean && self.remeasured == 0 {
            format!("{} replicate(s), clean on first pass", self.samples.len())
        } else if self.clean {
            format!(
                "{} replicate(s), clean after {} re-measurement(s) in {} round(s)",
                self.samples.len(),
                self.remeasured,
                self.rounds
            )
        } else {
            format!(
                "{} replicate(s), SUSPECT: {} still flagged after {} re-measurement(s) — \
                 interference persists",
                self.samples.len(),
                self.suspected.len(),
                self.remeasured
            )
        }
    }
}

impl ValidityGuard {
    /// A guard with the given MAD threshold and default rounds.
    pub fn new(threshold: f64) -> Self {
        ValidityGuard {
            threshold,
            ..ValidityGuard::default()
        }
    }

    /// Sets the number of re-measurement rounds.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Measures `n` replicates via `workload(replicate)`, scanning each
    /// round with the MAD detector and re-measuring flagged replicates —
    /// by index, so the re-measurement schedule is a pure function of the
    /// observed values, not of timing or thread interleaving.
    ///
    /// Samples smaller than 4 cannot be scanned (the detector's floor);
    /// they are measured once and returned with `rounds: 0, clean: true`.
    pub fn guard_sample(&self, n: usize, mut workload: impl FnMut(usize) -> f64) -> GuardOutcome {
        let mut samples: Vec<f64> = (0..n).map(&mut workload).collect();
        if n < 4 {
            return GuardOutcome {
                samples,
                suspected: Vec::new(),
                remeasured: 0,
                rounds: 0,
                clean: true,
            };
        }
        let mut remeasured = 0;
        let mut rounds = 0;
        let mut flagged: Vec<usize>;
        loop {
            rounds += 1;
            flagged = mad_outliers(&samples, self.threshold)
                .expect("guarded samples are finite and n >= 4")
                .flagged;
            if flagged.is_empty() || rounds > self.max_rounds {
                break;
            }
            for &i in &flagged {
                samples[i] = workload(i);
                remeasured += 1;
            }
        }
        GuardOutcome {
            samples,
            clean: flagged.is_empty(),
            suspected: flagged,
            remeasured,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_workload_passes_first_round() {
        let out = ValidityGuard::default().guard_sample(8, |i| 100.0 + (i % 3) as f64 * 0.1);
        assert!(out.clean);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.remeasured, 0);
        assert!(out.describe().contains("clean on first pass"));
    }

    #[test]
    fn transient_interference_is_remeasured_away() {
        // Replicate 3's first measurement is hit by "interference"; its
        // re-measurement is clean.
        let mut hit = false;
        let out = ValidityGuard::default().guard_sample(8, |i| {
            if i == 3 && !hit {
                hit = true;
                return 5000.0;
            }
            100.0 + i as f64 * 0.01
        });
        assert!(out.clean);
        assert_eq!(out.remeasured, 1);
        assert_eq!(out.rounds, 2, "initial pass + one confirming pass");
        assert!((out.samples[3] - 100.03).abs() < 1e-9);
        assert!(out.describe().contains("clean after 1 re-measurement"));
    }

    #[test]
    fn persistent_interference_reports_suspect_honestly() {
        // Replicate 5 is contaminated on every measurement — the guard
        // must give up after max_rounds and say so.
        let out = ValidityGuard::default()
            .with_max_rounds(2)
            .guard_sample(8, |i| {
                if i == 5 {
                    9000.0
                } else {
                    100.0 + i as f64 * 0.01
                }
            });
        assert!(!out.clean);
        assert_eq!(out.suspected, vec![5]);
        assert_eq!(out.remeasured, 2, "one re-measurement per round");
        assert!(out.describe().contains("SUSPECT"));
        assert!(out.describe().contains("interference persists"));
    }

    #[test]
    fn remeasurement_is_deterministic_in_indices() {
        // Two runs of the same deterministic workload produce identical
        // outcomes — the guard adds no hidden nondeterminism.
        let run = || {
            let mut first = [true; 8];
            ValidityGuard::default().guard_sample(8, |i| {
                if (i == 2 || i == 6) && std::mem::take(&mut first[i]) {
                    4000.0
                } else {
                    50.0 + i as f64
                }
            })
        };
        assert_eq!(run(), run());
        assert!(run().clean);
        assert_eq!(run().remeasured, 2);
    }

    #[test]
    fn tiny_samples_skip_detection() {
        let out = ValidityGuard::default().guard_sample(3, |i| i as f64);
        assert_eq!(out.rounds, 0);
        assert!(out.clean);
        assert_eq!(out.samples, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn detect_only_mode_never_remeasures() {
        let out = ValidityGuard::new(3.5)
            .with_max_rounds(0)
            .guard_sample(8, |i| if i == 0 { 7000.0 } else { 10.0 });
        assert!(!out.clean);
        assert_eq!(out.remeasured, 0);
        assert_eq!(out.suspected, vec![0]);
    }
}
