//! Adaptive replication: run until the confidence interval is tight
//! enough.
//!
//! The tutorial's design chapter asks for the replication degree to be
//! *chosen*, not defaulted. [`measure_until`] implements the standard
//! sequential procedure: take a pilot of `min_runs` measurements, then keep
//! replicating until the relative half-width of the confidence interval on
//! the mean drops below `target`, or `max_runs` is reached (reported
//! honestly either way).

use perfeval_stats::ci::{mean_confidence_interval, ConfidenceInterval};
use perfeval_stats::Summary;

/// Outcome of an adaptive measurement.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// All measurements taken.
    pub samples: Vec<f64>,
    /// Confidence interval on the mean at the stopping point.
    pub interval: ConfidenceInterval,
    /// Did the run meet the target, or stop at the budget?
    pub converged: bool,
}

impl AdaptiveResult {
    /// Summary over the samples.
    pub fn summary(&self) -> Summary {
        Summary::from_slice(&self.samples)
    }

    /// Number of replications spent.
    pub fn runs(&self) -> usize {
        self.samples.len()
    }
}

/// Replicates `workload` until the `level` confidence interval's relative
/// half-width is at most `target`, bounded by `min_runs ..= max_runs`.
///
/// # Panics
/// Panics unless `2 <= min_runs <= max_runs`, `0 < target`, and
/// `0 < level < 1`.
pub fn measure_until(
    level: f64,
    target: f64,
    min_runs: usize,
    max_runs: usize,
    mut workload: impl FnMut() -> f64,
) -> AdaptiveResult {
    assert!(
        min_runs >= 2,
        "need at least 2 runs for a variance estimate"
    );
    assert!(min_runs <= max_runs, "min_runs must not exceed max_runs");
    assert!(target > 0.0, "target relative half-width must be positive");
    assert!(0.0 < level && level < 1.0, "level must be in (0,1)");
    let mut samples = Vec::with_capacity(min_runs);
    for _ in 0..min_runs {
        samples.push(workload());
    }
    loop {
        let interval = mean_confidence_interval(&samples, level).expect("len >= 2 and finite");
        let converged = interval
            .relative_half_width()
            .map(|rhw| rhw <= target)
            .unwrap_or(false);
        if converged || samples.len() >= max_runs {
            return AdaptiveResult {
                samples,
                interval,
                converged,
            };
        }
        samples.push(workload());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_stats::rng::SplitMix64;

    #[test]
    fn quiet_workload_converges_at_the_pilot() {
        let mut i = 0.0;
        let result = measure_until(0.95, 0.05, 3, 100, || {
            i += 1e-9; // virtually constant
            10.0 + i
        });
        assert!(result.converged);
        assert_eq!(result.runs(), 3);
        assert!(result.interval.contains(10.0));
    }

    #[test]
    fn noisy_workload_takes_more_runs() {
        let mut rng = SplitMix64::new(5);
        let result = measure_until(0.95, 0.02, 3, 500, || {
            100.0 + rng.next_range_f64(-20.0, 20.0)
        });
        assert!(result.converged, "500 runs is plenty for ±20% noise at 2%");
        assert!(result.runs() > 10, "took only {} runs", result.runs());
        assert!(result.interval.relative_half_width().unwrap() <= 0.02);
    }

    #[test]
    fn budget_exhaustion_is_reported_honestly() {
        let mut rng = SplitMix64::new(9);
        let result = measure_until(0.95, 0.0001, 3, 10, || {
            50.0 + rng.next_range_f64(-25.0, 25.0)
        });
        assert!(!result.converged);
        assert_eq!(result.runs(), 10);
    }

    #[test]
    fn tighter_target_needs_more_runs() {
        let run = |target: f64| {
            let mut rng = SplitMix64::new(7);
            measure_until(0.95, target, 3, 10_000, || {
                100.0 + rng.next_range_f64(-30.0, 30.0)
            })
            .runs()
        };
        let loose = run(0.10);
        let tight = run(0.01);
        assert!(
            tight > 5 * loose,
            "1% target ({tight} runs) should dwarf 10% ({loose} runs)"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 runs")]
    fn rejects_tiny_pilot() {
        let _ = measure_until(0.95, 0.1, 1, 10, || 1.0);
    }
}
