//! Timers: the "How to measure?" slide made explicit.
//!
//! The tutorial catalogues `/usr/bin/time` (whole process, coarse),
//! `gettimeofday()` (microseconds, wall clock), and Windows' `timeGetTime()`
//! (milliseconds, and *"resolution implementation dependent; default can be
//! as low as 10 milliseconds"*). The lesson: a timer is a measurement
//! instrument with a resolution and a scope, and you must know both.
//!
//! [`Clock`] models that: each implementation documents what it measures
//! (wall vs. CPU time) and at what resolution. [`QuantizedClock`] wraps any
//! clock and truncates readings, letting experiments demonstrate — and tests
//! assert — the quantization artifacts the tutorial warns about.

use std::time::Instant;

/// A monotonic time source reporting nanoseconds since an arbitrary origin.
pub trait Clock {
    /// Current reading in nanoseconds.
    fn now_ns(&self) -> u64;

    /// The granularity of readings in nanoseconds (best effort).
    fn resolution_ns(&self) -> u64;

    /// Human-readable description of *what* this clock measures — the
    /// "be aware what you measure" metadata.
    fn describe(&self) -> &'static str;

    /// Measures the wall of a closure: returns (result, elapsed ns).
    fn time<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.now_ns();
        let out = f();
        let end = self.now_ns();
        (out, end.saturating_sub(start))
    }
}

/// Wall-clock ("real") time backed by [`std::time::Instant`] — the moral
/// equivalent of `gettimeofday()`.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock anchored at construction time.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn resolution_ns(&self) -> u64 {
        1 // Instant is nanosecond-granular on the platforms we target
    }

    fn describe(&self) -> &'static str {
        "wall-clock (real) time, ns resolution"
    }
}

/// CPU ("user" + "system") time, read from `/proc/thread-self/stat` on
/// Linux — the number `/usr/bin/time` reports as `user`/`sys`.
///
/// CPU time excludes time spent blocked on I/O or descheduled, which is why
/// the tutorial's cold-run table shows user ≈ 2930 ms while real ≈ 13243 ms:
/// the missing ten seconds were disk waits that only the wall clock sees.
///
/// Readings are **per-thread** (falling back to the process-wide
/// `/proc/self/stat` on pre-3.17 kernels): a parallel sweep has several
/// workers measuring concurrently, and with a process-wide clock each
/// measurement would silently include every other worker's CPU — the
/// thread count would become an unrecorded factor. In a single-threaded
/// program the two readings coincide.
///
/// On non-Linux platforms (or if `/proc` is unavailable) readings fall back
/// to wall-clock time; [`CpuClock::is_native`] reports which you got.
#[derive(Debug, Clone)]
pub struct CpuClock {
    fallback: WallClock,
    ticks_per_sec: u64,
    native: bool,
}

impl CpuClock {
    /// Creates a CPU clock, probing `/proc` stat availability once.
    pub fn new() -> Self {
        let native = read_proc_cpu_ticks().is_some();
        CpuClock {
            fallback: WallClock::new(),
            // Linux exposes utime/stime in clock ticks; USER_HZ is 100 on
            // every mainstream configuration.
            ticks_per_sec: 100,
            native,
        }
    }

    /// True if real CPU-time readings are available (Linux with procfs).
    pub fn is_native(&self) -> bool {
        self.native
    }
}

impl Default for CpuClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads the calling thread's `utime + stime` from `/proc/thread-self/stat`
/// (Linux ≥ 3.17), falling back to the process-wide `/proc/self/stat`.
fn read_proc_cpu_ticks() -> Option<u64> {
    read_stat_ticks("/proc/thread-self/stat").or_else(|| read_stat_ticks("/proc/self/stat"))
}

/// Reads `utime + stime` (in clock ticks) from a procfs `stat` file.
fn read_stat_ticks(path: &str) -> Option<u64> {
    let stat = std::fs::read_to_string(path).ok()?;
    // Field 2 is the comm which may contain spaces/parens; skip past the
    // closing paren, then utime/stime are fields 14/15 (1-based), i.e.
    // index 11/12 after the paren.
    let after = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

impl Clock for CpuClock {
    fn now_ns(&self) -> u64 {
        match read_proc_cpu_ticks() {
            Some(ticks) => ticks * (1_000_000_000 / self.ticks_per_sec),
            None => self.fallback.now_ns(),
        }
    }

    fn resolution_ns(&self) -> u64 {
        if self.native {
            1_000_000_000 / self.ticks_per_sec // 10 ms at USER_HZ=100
        } else {
            1
        }
    }

    fn describe(&self) -> &'static str {
        "per-thread CPU (user+system) time via /proc/thread-self/stat, 10 ms ticks"
    }
}

/// Wraps another clock and truncates readings to a fixed resolution —
/// the `timeGetTime()` default-10 ms pitfall as a first-class object.
///
/// ```
/// use perfeval_measure::clock::{Clock, ManualClock, QuantizedClock};
/// let inner = ManualClock::new();
/// inner.advance_ns(12_345_678);
/// let q = QuantizedClock::new(inner.clone(), 10_000_000); // 10 ms
/// assert_eq!(q.now_ns(), 10_000_000); // 12.3 ms reads as 10 ms
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedClock<C: Clock> {
    inner: C,
    quantum_ns: u64,
}

impl<C: Clock> QuantizedClock<C> {
    /// Wraps `inner`, truncating readings to multiples of `quantum_ns`.
    ///
    /// # Panics
    /// Panics if `quantum_ns == 0`.
    pub fn new(inner: C, quantum_ns: u64) -> Self {
        assert!(quantum_ns > 0, "quantum must be positive");
        QuantizedClock { inner, quantum_ns }
    }
}

impl<C: Clock> Clock for QuantizedClock<C> {
    fn now_ns(&self) -> u64 {
        (self.inner.now_ns() / self.quantum_ns) * self.quantum_ns
    }

    fn resolution_ns(&self) -> u64 {
        self.quantum_ns.max(self.inner.resolution_ns())
    }

    fn describe(&self) -> &'static str {
        "quantized clock (deliberately coarse resolution)"
    }
}

/// A manually advanced clock for tests and simulators. Cloning shares the
/// underlying time cell, so a simulator can advance the clock that a
/// measurement harness is reading.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ns: std::rc::Rc<std::cell::Cell<u64>>,
}

impl ManualClock {
    /// Creates a manual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns.set(self.ns.get() + delta);
    }

    /// Sets the absolute reading.
    pub fn set_ns(&self, ns: u64) {
        self.ns.set(ns);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.get()
    }

    fn resolution_ns(&self) -> u64 {
        1
    }

    fn describe(&self) -> &'static str {
        "manual clock (test/simulation driven)"
    }
}

/// Convenience: nanoseconds to fractional milliseconds, the unit every
/// table in the tutorial uses.
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert_eq!(c.resolution_ns(), 1);
    }

    #[test]
    fn wall_clock_measures_work() {
        let c = WallClock::new();
        let (sum, ns) = c.time(|| (0..100_000u64).sum::<u64>());
        assert_eq!(sum, 4_999_950_000);
        assert!(ns > 0);
    }

    #[test]
    fn cpu_clock_probes_procfs() {
        let c = CpuClock::new();
        // On the Linux CI machines this runs on, procfs must be available.
        #[cfg(target_os = "linux")]
        {
            assert!(c.is_native());
            assert_eq!(c.resolution_ns(), 10_000_000);
        }
        let _ = c.now_ns(); // must not panic either way
    }

    #[test]
    fn cpu_clock_advances_under_cpu_load() {
        let c = CpuClock::new();
        if !c.is_native() {
            return; // nothing to assert on non-Linux
        }
        let start = c.now_ns();
        // Burn enough CPU for a few 10 ms ticks.
        let mut acc = 0u64;
        while c.now_ns() - start < 30_000_000 {
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
        assert!(c.now_ns() - start >= 30_000_000);
    }

    #[test]
    fn quantized_clock_truncates() {
        let inner = ManualClock::new();
        let q = QuantizedClock::new(inner.clone(), 10);
        inner.set_ns(9);
        assert_eq!(q.now_ns(), 0);
        inner.set_ns(10);
        assert_eq!(q.now_ns(), 10);
        inner.set_ns(25);
        assert_eq!(q.now_ns(), 20);
        assert_eq!(q.resolution_ns(), 10);
    }

    #[test]
    fn quantized_clock_loses_short_events() {
        // The tutorial's pitfall: an 8 ms query measured with a 10 ms timer
        // can read as zero.
        let inner = ManualClock::new();
        let q = QuantizedClock::new(inner.clone(), 10_000_000);
        let before = q.now_ns();
        inner.advance_ns(8_000_000); // the "query" takes 8 ms
        let after = q.now_ns();
        assert_eq!(after - before, 0, "8 ms event invisible to 10 ms timer");
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn quantized_clock_rejects_zero_quantum() {
        let _ = QuantizedClock::new(ManualClock::new(), 0);
    }

    #[test]
    fn manual_clock_shares_state_across_clones() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance_ns(500);
        assert_eq!(b.now_ns(), 500);
        b.set_ns(1000);
        assert_eq!(a.now_ns(), 1000);
    }

    #[test]
    fn ns_to_ms_converts() {
        assert_eq!(ns_to_ms(3_533_000_000), 3533.0);
        assert_eq!(ns_to_ms(0), 0.0);
        assert_eq!(ns_to_ms(1_500_000), 1.5);
    }

    #[test]
    fn describe_mentions_scope() {
        assert!(WallClock::new().describe().contains("wall"));
        assert!(CpuClock::new().describe().contains("CPU"));
    }
}
