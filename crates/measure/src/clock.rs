//! Timers: the "How to measure?" slide made explicit.
//!
//! The tutorial catalogues `/usr/bin/time` (whole process, coarse),
//! `gettimeofday()` (microseconds, wall clock), and Windows' `timeGetTime()`
//! (milliseconds, and *"resolution implementation dependent; default can be
//! as low as 10 milliseconds"*). The lesson: a timer is a measurement
//! instrument with a resolution and a scope, and you must know both.
//!
//! [`Clock`] models that: each implementation documents what it measures
//! (wall vs. CPU time) and at what resolution. [`QuantizedClock`] wraps any
//! clock and truncates readings, letting experiments demonstrate — and tests
//! assert — the quantization artifacts the tutorial warns about.

use std::time::Instant;

/// A monotonic time source reporting nanoseconds since an arbitrary origin.
pub trait Clock {
    /// Current reading in nanoseconds.
    fn now_ns(&self) -> u64;

    /// The granularity of readings in nanoseconds (best effort).
    fn resolution_ns(&self) -> u64;

    /// Human-readable description of *what* this clock measures — the
    /// "be aware what you measure" metadata.
    fn describe(&self) -> &'static str;

    /// Measures the wall of a closure: returns (result, elapsed ns).
    fn time<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.now_ns();
        let out = f();
        let end = self.now_ns();
        (out, end.saturating_sub(start))
    }
}

/// Wall-clock ("real") time backed by [`std::time::Instant`] — the moral
/// equivalent of `gettimeofday()`.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock anchored at construction time.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn resolution_ns(&self) -> u64 {
        1 // Instant is nanosecond-granular on the platforms we target
    }

    fn describe(&self) -> &'static str {
        "wall-clock (real) time, ns resolution"
    }
}

/// CPU ("user" + "system") time — the number `/usr/bin/time` reports as
/// `user`/`sys`.
///
/// CPU time excludes time spent blocked on I/O or descheduled, which is why
/// the tutorial's cold-run table shows user ≈ 2930 ms while real ≈ 13243 ms:
/// the missing ten seconds were disk waits that only the wall clock sees.
///
/// Readings are **per-thread**: a parallel sweep has several workers
/// measuring concurrently, and with a process-wide clock each measurement
/// would silently include every other worker's CPU — the thread count would
/// become an unrecorded factor. In a single-threaded program per-thread and
/// per-process readings coincide.
///
/// Sources, probed once at construction and in preference order:
/// 1. `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` — nanosecond resolution,
///    needed now that `QueryResult::server_user_ms` reports genuine CPU
///    time for sub-10 ms queries;
/// 2. `/proc/thread-self/stat` (or the process-wide `/proc/self/stat` on
///    pre-3.17 kernels) — 10 ms USER_HZ ticks, the `timeGetTime`-style
///    coarse instrument the tutorial warns about;
/// 3. wall clock, on platforms with neither; [`CpuClock::is_native`]
///    reports whether you got real CPU time.
#[derive(Debug, Clone)]
pub struct CpuClock {
    fallback: WallClock,
    ticks_per_sec: u64,
    source: CpuSource,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CpuSource {
    ClockGettime,
    Procfs,
    Wall,
}

impl CpuClock {
    /// Creates a CPU clock, probing the available sources once.
    pub fn new() -> Self {
        let source = if sys::thread_cputime_ns().is_some() {
            CpuSource::ClockGettime
        } else if read_proc_cpu_ticks().is_some() {
            CpuSource::Procfs
        } else {
            CpuSource::Wall
        };
        CpuClock {
            fallback: WallClock::new(),
            // Linux exposes utime/stime in clock ticks; USER_HZ is 100 on
            // every mainstream configuration.
            ticks_per_sec: 100,
            source,
        }
    }

    /// True if real CPU-time readings are available (Linux).
    pub fn is_native(&self) -> bool {
        self.source != CpuSource::Wall
    }
}

impl Default for CpuClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Hand-declared binding to `clock_gettime(2)`: the workspace is
/// dependency-free (no `libc` crate), and this is the one syscall the
/// measurement substrate needs beyond `std`.
#[cfg(target_os = "linux")]
mod sys {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    /// The calling thread's consumed CPU time in nanoseconds, if the
    /// kernel supports per-thread CPU clocks.
    pub fn thread_cputime_ns() -> Option<u64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: clock_gettime only writes through the valid tp pointer.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc == 0 && ts.tv_sec >= 0 && ts.tv_nsec >= 0 {
            Some(ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
        } else {
            None
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    /// Non-Linux: no per-thread CPU clock; callers fall back to procfs or
    /// the wall clock.
    pub fn thread_cputime_ns() -> Option<u64> {
        None
    }
}

/// Reads the calling thread's `utime + stime` from `/proc/thread-self/stat`
/// (Linux ≥ 3.17), falling back to the process-wide `/proc/self/stat`.
fn read_proc_cpu_ticks() -> Option<u64> {
    read_stat_ticks("/proc/thread-self/stat").or_else(|| read_stat_ticks("/proc/self/stat"))
}

/// Reads `utime + stime` (in clock ticks) from a procfs `stat` file.
fn read_stat_ticks(path: &str) -> Option<u64> {
    let stat = std::fs::read_to_string(path).ok()?;
    // Field 2 is the comm which may contain spaces/parens; skip past the
    // closing paren, then utime/stime are fields 14/15 (1-based), i.e.
    // index 11/12 after the paren.
    let after = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

impl Clock for CpuClock {
    fn now_ns(&self) -> u64 {
        match self.source {
            CpuSource::ClockGettime => {
                sys::thread_cputime_ns().unwrap_or_else(|| self.fallback.now_ns())
            }
            CpuSource::Procfs => match read_proc_cpu_ticks() {
                Some(ticks) => ticks * (1_000_000_000 / self.ticks_per_sec),
                None => self.fallback.now_ns(),
            },
            CpuSource::Wall => self.fallback.now_ns(),
        }
    }

    fn resolution_ns(&self) -> u64 {
        match self.source {
            CpuSource::ClockGettime => 1,
            CpuSource::Procfs => 1_000_000_000 / self.ticks_per_sec, // 10 ms
            CpuSource::Wall => 1,
        }
    }

    fn describe(&self) -> &'static str {
        match self.source {
            CpuSource::ClockGettime => {
                "per-thread CPU (user+system) time via clock_gettime(CLOCK_THREAD_CPUTIME_ID), ns resolution"
            }
            CpuSource::Procfs => {
                "per-thread CPU (user+system) time via /proc/thread-self/stat, 10 ms ticks"
            }
            CpuSource::Wall => "wall clock standing in for CPU time (no native source)",
        }
    }
}

/// Wraps another clock and truncates readings to a fixed resolution —
/// the `timeGetTime()` default-10 ms pitfall as a first-class object.
///
/// ```
/// use perfeval_measure::clock::{Clock, ManualClock, QuantizedClock};
/// let inner = ManualClock::new();
/// inner.advance_ns(12_345_678);
/// let q = QuantizedClock::new(inner.clone(), 10_000_000); // 10 ms
/// assert_eq!(q.now_ns(), 10_000_000); // 12.3 ms reads as 10 ms
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedClock<C: Clock> {
    inner: C,
    quantum_ns: u64,
}

impl<C: Clock> QuantizedClock<C> {
    /// Wraps `inner`, truncating readings to multiples of `quantum_ns`.
    ///
    /// # Panics
    /// Panics if `quantum_ns == 0`.
    pub fn new(inner: C, quantum_ns: u64) -> Self {
        assert!(quantum_ns > 0, "quantum must be positive");
        QuantizedClock { inner, quantum_ns }
    }
}

impl<C: Clock> Clock for QuantizedClock<C> {
    fn now_ns(&self) -> u64 {
        (self.inner.now_ns() / self.quantum_ns) * self.quantum_ns
    }

    fn resolution_ns(&self) -> u64 {
        self.quantum_ns.max(self.inner.resolution_ns())
    }

    fn describe(&self) -> &'static str {
        "quantized clock (deliberately coarse resolution)"
    }
}

/// A manually advanced clock for tests and simulators. Cloning shares the
/// underlying time cell, so a simulator can advance the clock that a
/// measurement harness is reading.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ns: std::rc::Rc<std::cell::Cell<u64>>,
}

impl ManualClock {
    /// Creates a manual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns.set(self.ns.get() + delta);
    }

    /// Sets the absolute reading.
    pub fn set_ns(&self, ns: u64) {
        self.ns.set(ns);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.get()
    }

    fn resolution_ns(&self) -> u64 {
        1
    }

    fn describe(&self) -> &'static str {
        "manual clock (test/simulation driven)"
    }
}

/// A manually advanced clock that is `Send + Sync` — the cross-thread
/// sibling of [`ManualClock`] (whose `Rc` cell keeps it single-threaded).
/// Cloning shares the underlying cell. Used to drive a
/// `perfeval-trace` tracer deterministically from tests and simulators.
#[derive(Debug, Clone, Default)]
pub struct AtomicClock {
    ns: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl AtomicClock {
    /// Creates an atomic clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns
            .fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
    }

    /// Sets the absolute reading.
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Clock for AtomicClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn resolution_ns(&self) -> u64 {
        1
    }

    fn describe(&self) -> &'static str {
        "atomic manual clock (test/simulation driven, thread-safe)"
    }
}

/// Convenience: nanoseconds to fractional milliseconds, the unit every
/// table in the tutorial uses.
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert_eq!(c.resolution_ns(), 1);
    }

    #[test]
    fn wall_clock_measures_work() {
        let c = WallClock::new();
        let (sum, ns) = c.time(|| (0..100_000u64).sum::<u64>());
        assert_eq!(sum, 4_999_950_000);
        assert!(ns > 0);
    }

    #[test]
    fn cpu_clock_probes_a_native_source() {
        let c = CpuClock::new();
        // On the Linux CI machines this runs on, at least one native CPU
        // source must be available — and clock_gettime gives ns resolution.
        #[cfg(target_os = "linux")]
        {
            assert!(c.is_native());
            assert!(c.resolution_ns() <= 10_000_000);
            assert_eq!(c.source, CpuSource::ClockGettime);
            assert_eq!(c.resolution_ns(), 1);
        }
        let _ = c.now_ns(); // must not panic either way
    }

    #[test]
    fn cpu_clock_advances_under_cpu_load() {
        let c = CpuClock::new();
        if !c.is_native() {
            return; // nothing to assert on non-Linux
        }
        let start = c.now_ns();
        // Burn enough CPU to be visible even at 10 ms resolution.
        let mut acc = 0u64;
        while c.now_ns() - start < 30_000_000 {
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
        assert!(c.now_ns() - start >= 30_000_000);
    }

    #[test]
    fn cpu_clock_ignores_sleep_but_wall_clock_does_not() {
        let cpu = CpuClock::new();
        if !cpu.is_native() || cpu.resolution_ns() > 1_000 {
            return; // needs the fine-grained source to be observable
        }
        let wall = WallClock::new();
        let (_, wall_ns) = wall.time(|| std::thread::sleep(std::time::Duration::from_millis(20)));
        let (_, cpu_ns) = cpu.time(|| std::thread::sleep(std::time::Duration::from_millis(20)));
        assert!(wall_ns >= 20_000_000);
        // Sleeping consumes (almost) no CPU: the tutorial's user ≪ real.
        assert!(cpu_ns < 10_000_000, "sleep burned {cpu_ns} ns of CPU time?");
    }

    #[test]
    fn procfs_fallback_still_reads_ticks() {
        // The old 10 ms source stays exercised even where clock_gettime
        // wins the probe.
        if let Some(ticks) = read_proc_cpu_ticks() {
            let again = read_proc_cpu_ticks().unwrap();
            assert!(again >= ticks);
        }
    }

    #[test]
    fn atomic_clock_shares_state_and_crosses_threads() {
        let a = AtomicClock::new();
        let b = a.clone();
        a.advance_ns(250);
        assert_eq!(b.now_ns(), 250);
        std::thread::scope(|s| {
            s.spawn(|| b.set_ns(1_000));
        });
        assert_eq!(a.now_ns(), 1_000);
        assert!(a.describe().contains("atomic"));
    }

    #[test]
    fn quantized_clock_truncates() {
        let inner = ManualClock::new();
        let q = QuantizedClock::new(inner.clone(), 10);
        inner.set_ns(9);
        assert_eq!(q.now_ns(), 0);
        inner.set_ns(10);
        assert_eq!(q.now_ns(), 10);
        inner.set_ns(25);
        assert_eq!(q.now_ns(), 20);
        assert_eq!(q.resolution_ns(), 10);
    }

    #[test]
    fn quantized_clock_loses_short_events() {
        // The tutorial's pitfall: an 8 ms query measured with a 10 ms timer
        // can read as zero.
        let inner = ManualClock::new();
        let q = QuantizedClock::new(inner.clone(), 10_000_000);
        let before = q.now_ns();
        inner.advance_ns(8_000_000); // the "query" takes 8 ms
        let after = q.now_ns();
        assert_eq!(after - before, 0, "8 ms event invisible to 10 ms timer");
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn quantized_clock_rejects_zero_quantum() {
        let _ = QuantizedClock::new(ManualClock::new(), 0);
    }

    #[test]
    fn manual_clock_shares_state_across_clones() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance_ns(500);
        assert_eq!(b.now_ns(), 500);
        b.set_ns(1000);
        assert_eq!(a.now_ns(), 1000);
    }

    #[test]
    fn ns_to_ms_converts() {
        assert_eq!(ns_to_ms(3_533_000_000), 3533.0);
        assert_eq!(ns_to_ms(0), 0.0);
        assert_eq!(ns_to_ms(1_500_000), 1.5);
    }

    #[test]
    fn describe_mentions_scope() {
        assert!(WallClock::new().describe().contains("wall"));
        assert!(CpuClock::new().describe().contains("CPU"));
    }
}
