//! End-to-end proof that the CI perf gate actually gates: drive the real
//! `minidb-bench` binary over synthetic trajectory files and check its
//! exit codes. A gate that cannot fail is measurement theater — this test
//! injects a 1.3× slowdown and demands a nonzero exit.

use perfeval_bench::trajectory::{to_json, BenchFile, BenchRecord, SCHEMA_VERSION, SUITE_NAME};
use std::path::{Path, PathBuf};
use std::process::Command;

fn synthetic_file(cells: &[(&str, &[f64])]) -> BenchFile {
    BenchFile {
        schema_version: SCHEMA_VERSION,
        suite: SUITE_NAME.to_owned(),
        host: "gate-test-host".to_owned(),
        scale_factor: 0.01,
        seed: 20080408,
        replicates: cells.first().map(|(_, v)| v.len()).unwrap_or(0),
        records: cells
            .iter()
            .map(|(id, ms)| {
                let (workload, engine) = id.split_once('/').expect("id is workload/engine");
                BenchRecord {
                    id: (*id).to_owned(),
                    workload: workload.to_owned(),
                    engine: engine.to_owned(),
                    median_ms: perfeval_bench::median(ms.to_vec()),
                    replicates_ms: ms.to_vec(),
                }
            })
            .collect(),
    }
}

fn write_tmp(name: &str, file: &BenchFile) -> PathBuf {
    let path = std::env::temp_dir().join(format!("perfeval_gate_{}_{name}", std::process::id()));
    std::fs::write(&path, to_json(file)).expect("write synthetic file");
    path
}

fn run_compare(baseline: &Path, head: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_minidb-bench"))
        .args([
            "compare",
            "--baseline",
            baseline.to_str().unwrap(),
            "--head",
            head.to_str().unwrap(),
        ])
        .output()
        .expect("run minidb-bench")
}

const BASE: [f64; 7] = [10.0, 10.2, 9.8, 10.1, 9.9, 10.05, 9.95];
const SLOW: [f64; 7] = [13.0, 13.3, 12.7, 13.1, 12.9, 13.05, 12.95];
const FAST: [f64; 7] = [7.0, 7.2, 6.8, 7.1, 6.9, 7.05, 6.95];

#[test]
fn injected_slowdown_fails_the_gate() {
    let baseline = write_tmp(
        "base_a",
        &synthetic_file(&[("agg-heavy/SIMD", &BASE), ("filter-heavy/OPT", &BASE)]),
    );
    // 1.3x on one cell, the other unchanged: one regression is enough.
    let head = write_tmp(
        "head_a",
        &synthetic_file(&[("agg-heavy/SIMD", &SLOW), ("filter-heavy/OPT", &BASE)]),
    );
    let out = run_compare(&baseline, &head);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "a 1.3x slowdown must exit nonzero; stdout:\n{stdout}"
    );
    assert!(stdout.contains("REGRESSION"), "stdout:\n{stdout}");
    assert!(stdout.contains("gate: FAIL"), "stdout:\n{stdout}");
}

#[test]
fn unchanged_and_improved_runs_pass_the_gate() {
    let baseline = write_tmp(
        "base_b",
        &synthetic_file(&[("agg-heavy/SIMD", &BASE), ("filter-heavy/OPT", &BASE)]),
    );
    let head = write_tmp(
        "head_b",
        &synthetic_file(&[("agg-heavy/SIMD", &BASE), ("filter-heavy/OPT", &FAST)]),
    );
    let out = run_compare(&baseline, &head);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "identical + improved cells must exit zero; stdout:\n{stdout}"
    );
    assert!(stdout.contains("gate: PASS"), "stdout:\n{stdout}");
    assert!(stdout.contains("improvement"), "stdout:\n{stdout}");
}

#[test]
fn missing_cell_fails_the_gate() {
    let baseline = write_tmp(
        "base_c",
        &synthetic_file(&[("agg-heavy/SIMD", &BASE), ("filter-heavy/OPT", &BASE)]),
    );
    let head = write_tmp("head_c", &synthetic_file(&[("agg-heavy/SIMD", &BASE)]));
    let out = run_compare(&baseline, &head);
    assert!(
        !out.status.success(),
        "a silently dropped cell must fail the gate"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("MISSING"));
}

#[test]
fn compare_writes_the_markdown_report() {
    let baseline = write_tmp("base_d", &synthetic_file(&[("agg-heavy/SIMD", &BASE)]));
    let head = write_tmp("head_d", &synthetic_file(&[("agg-heavy/SIMD", &SLOW)]));
    let report =
        std::env::temp_dir().join(format!("perfeval_gate_{}_report.md", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_minidb-bench"))
        .args([
            "compare",
            "--baseline",
            baseline.to_str().unwrap(),
            "--head",
            head.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("run minidb-bench");
    assert!(!out.status.success(), "slowdown still fails with --report");
    let doc = std::fs::read_to_string(&report).expect("report written");
    assert!(doc.contains("## Perf trajectory"));
    assert!(doc.contains("REGRESSION"));
    assert!(
        doc.contains("incomplete report"),
        "regressed gate flags the report"
    );
}
