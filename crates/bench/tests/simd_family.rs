//! The engine-factor acceptance battery: all 22 family queries must be
//! bit-identical across DBG / OPT / SIMD, at every thread count and
//! morsel size the determinism suite pins. This is the precondition for
//! treating the engine as a design factor — if the answers differ, the
//! timing comparison is apples and oranges.

use minidb::{ExecMode, Value};
use perfeval_bench::catalog_at;
use workload::queries;

fn rows_bit_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                })
        })
}

#[test]
fn family_queries_bit_identical_across_engines_threads_and_morsels() {
    let catalog = catalog_at(0.001);
    for (qi, sql) in queries::all_family().iter().enumerate() {
        let reference = minidb::Session::new(catalog.clone())
            .with_mode(ExecMode::Debug)
            .query(sql)
            .run()
            .unwrap()
            .rows;
        for mode in [ExecMode::Optimized, ExecMode::Simd] {
            for threads in [1usize, 2, 8] {
                for morsel in [1usize, 64, 1024] {
                    let rows = minidb::Session::new(catalog.clone())
                        .with_mode(mode)
                        .with_parallelism(threads)
                        .with_morsel_rows(morsel)
                        .query(sql)
                        .run()
                        .unwrap()
                        .rows;
                    assert!(
                        rows_bit_equal(&reference, &rows),
                        "Q{} diverged under {mode} ({threads} threads, morsel {morsel})",
                        qi + 1
                    );
                }
            }
        }
    }
}
