//! The storage acceptance battery: all 22 family queries must be
//! bit-identical between the in-memory catalog and the same catalog
//! persisted and reopened from disk — at DBG / OPT / SIMD × 1 and 8
//! threads, and again under a pool budget small enough to force
//! eviction mid-query. If persistence changed a single bit, every
//! hot-vs-cold comparison on top of it would be apples and oranges.

use minidb::{Catalog, ExecMode, StoreConfig, Value};
use perfeval_bench::catalog_at;
use std::path::PathBuf;
use workload::queries;

fn rows_bit_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                })
        })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store_family_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(catalog: Catalog, mode: ExecMode, threads: usize, sql: &str) -> Vec<Vec<Value>> {
    minidb::Session::new(catalog)
        .with_mode(mode)
        .with_parallelism(threads)
        .query(sql)
        .run()
        .unwrap()
        .rows
}

#[test]
fn family_queries_bit_identical_memory_vs_disk() {
    let mem = catalog_at(0.001);
    let dir = temp_dir("full");
    mem.persist(&dir).unwrap();
    for (qi, sql) in queries::all_family().iter().enumerate() {
        for mode in [ExecMode::Debug, ExecMode::Optimized, ExecMode::Simd] {
            for threads in [1usize, 8] {
                let want = run(mem.clone(), mode, threads, sql);
                let disk = Catalog::open(&dir).unwrap();
                let got = run(disk, mode, threads, sql);
                assert!(
                    rows_bit_equal(&want, &got),
                    "Q{} diverged on disk under {mode} ({threads} threads)",
                    qi + 1
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn family_queries_bit_identical_under_forced_eviction() {
    let mem = catalog_at(0.001);
    let dir = temp_dir("evict");
    // Small chunks + an 8 KiB pool: multi-chunk scans must evict their
    // own head mid-assembly.
    mem.persist_with(&dir, &StoreConfig::default().chunk_rows(256))
        .unwrap();
    let mut evicted = false;
    for (qi, sql) in queries::all_family().iter().enumerate() {
        let want = run(mem.clone(), ExecMode::Optimized, 8, sql);
        let disk = Catalog::open_with(&dir, StoreConfig::default().pool_bytes(8 * 1024)).unwrap();
        let store = std::sync::Arc::clone(disk.storage().unwrap());
        let got = run(disk, ExecMode::Optimized, 8, sql);
        assert!(
            rows_bit_equal(&want, &got),
            "Q{} diverged under forced eviction",
            qi + 1
        );
        evicted |= store.counters().evictions > 0;
    }
    assert!(evicted, "an 8 KiB pool must evict on at least one query");
    let _ = std::fs::remove_dir_all(&dir);
}
