//! Criterion benchmarks of the morsel-parallel OPT engine: serial OPT vs
//! parallel OPT at several worker counts on a scan-heavy and an
//! aggregate-heavy query. The results are bit-identical by construction
//! (see `minidb/tests/parallel_query.rs`), so the only question left is
//! the wall clock — exhibit E19 turns these same arms into a designed
//! experiment with CIs; this bench is the quick local loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfeval_bench::catalog_at;
use workload::queries;

const SCAN_HEAVY: &str = "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
     FROM lineitem WHERE l_shipdate >= 365 AND l_shipdate < 1460 AND l_quantity < 30";

fn bench_scan_heavy(c: &mut Criterion) {
    let catalog = catalog_at(0.01);
    let mut group = c.benchmark_group("parallel_scan_heavy");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        let mut session = minidb::Session::new(catalog.clone())
            .with_parallelism(threads)
            .with_morsel_rows(4096);
        session.query(SCAN_HEAVY).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| session.query(SCAN_HEAVY).run().unwrap().row_count())
        });
    }
    group.finish();
}

fn bench_aggregate_heavy(c: &mut Criterion) {
    let catalog = catalog_at(0.01);
    let sql = queries::q1();
    let mut group = c.benchmark_group("parallel_aggregate_heavy");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let mut session = minidb::Session::new(catalog.clone())
            .with_parallelism(threads)
            .with_morsel_rows(4096);
        session.query(&sql).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &sql, |b, sql| {
            b.iter(|| session.query(sql).run().unwrap().row_count())
        });
    }
    group.finish();
}

fn bench_morsel_size(c: &mut Criterion) {
    let catalog = catalog_at(0.01);
    let mut group = c.benchmark_group("parallel_morsel_size");
    group.sample_size(20);
    for morsel in [1024usize, 4096, 16 * 1024] {
        let mut session = minidb::Session::new(catalog.clone())
            .with_parallelism(4)
            .with_morsel_rows(morsel);
        session.query(SCAN_HEAVY).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(morsel), &morsel, |b, _| {
            b.iter(|| session.query(SCAN_HEAVY).run().unwrap().row_count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scan_heavy,
    bench_aggregate_heavy,
    bench_morsel_size
);
criterion_main!(benches);
