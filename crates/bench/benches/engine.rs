//! Criterion benchmarks of the engine primitives: the numbers behind every
//! timing table. One group per operator class, each swept DBG vs OPT so the
//! "apples and oranges" factor is measured continuously.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::ExecMode;
use perfeval_bench::catalog_at;
use workload::queries;

fn bench_scan_aggregate(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let mut group = c.benchmark_group("scan_max");
    group.sample_size(20);
    for mode in [ExecMode::Debug, ExecMode::Optimized] {
        let mut session = minidb::Session::new(catalog.clone()).with_mode(mode);
        session
            .query("SELECT MAX(l_extendedprice) FROM lineitem")
            .run()
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, _| {
            b.iter(|| {
                session
                    .query("SELECT MAX(l_extendedprice) FROM lineitem")
                    .run()
                    .unwrap()
                    .row_count()
            })
        });
    }
    group.finish();
}

fn bench_filter_selectivity(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let mut group = c.benchmark_group("filter_selectivity");
    group.sample_size(20);
    // l_shipdate spans 0..2557: cutoffs give ~10%, ~50%, ~90% selectivity.
    for cutoff in [256i64, 1280, 2300] {
        let sql = format!("SELECT COUNT(*) FROM lineitem WHERE l_shipdate < {cutoff}");
        let mut session = minidb::Session::new(catalog.clone());
        session.query(&sql).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(cutoff), &sql, |b, sql| {
            b.iter(|| session.query(sql).run().unwrap().row_count())
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let sql = "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey";
    let mut group = c.benchmark_group("hash_join");
    group.sample_size(10);
    for mode in [ExecMode::Debug, ExecMode::Optimized] {
        let mut session = minidb::Session::new(catalog.clone()).with_mode(mode);
        session.query(sql).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, _| {
            b.iter(|| session.query(sql).run().unwrap().row_count())
        });
    }
    group.finish();
}

fn bench_q1_q6(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let mut group = c.benchmark_group("tpch_like");
    group.sample_size(10);
    for (name, sql) in [("q1", queries::q1()), ("q6", queries::q6())] {
        let mut session = minidb::Session::new(catalog.clone());
        session.query(&sql).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, sql| {
            b.iter(|| session.query(sql).run().unwrap().row_count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scan_aggregate,
    bench_filter_selectivity,
    bench_join,
    bench_q1_q6
);
criterion_main!(benches);
