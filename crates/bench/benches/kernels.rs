//! Criterion benchmarks of the SIMD kernel tier, measured end-to-end
//! through the engine: each pinned trajectory workload swept across all
//! three engines (DBG / OPT / SIMD), so the kernel speedups are observed
//! exactly where the perf-trajectory gate measures them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfeval_bench::catalog_at;
use perfeval_bench::trajectory::{suite, ENGINES};

fn bench_trajectory_workloads(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    for w in suite() {
        let mut group = c.benchmark_group(w.name);
        group.sample_size(20);
        let sql = (w.sql)();
        for mode in ENGINES {
            let mut session = minidb::Session::new(catalog.clone()).with_mode(mode);
            session.query(&sql).run().unwrap();
            group.bench_with_input(BenchmarkId::from_parameter(mode), &sql, |b, sql| {
                b.iter(|| session.query(sql).run().unwrap().row_count())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_trajectory_workloads);
criterion_main!(benches);
