//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! optimizer rules on/off, projection pruning, filter pushdown, and the
//! cost of statistical rigor (replication count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::optimizer::OptimizerConfig;
use minidb::Session;
use perfeval_bench::catalog_at;
use perfeval_core::runner::{Assignment, Runner};
use perfeval_core::twolevel::TwoLevelDesign;

/// Projection pruning: a narrow aggregate over the wide lineitem table.
fn bench_projection_pruning(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let sql = "SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate < 1500";
    let mut group = c.benchmark_group("ablation_projection_pruning");
    group.sample_size(10);
    for (name, pruning) in [("on", true), ("off", false)] {
        let mut session = Session::new(catalog.clone());
        session.set_optimizer(OptimizerConfig {
            projection_pruning: pruning,
            ..OptimizerConfig::all()
        });
        session.query(sql).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, sql| {
            b.iter(|| session.query(sql).run().unwrap().row_count())
        });
    }
    group.finish();
}

/// Filter pushdown below the join.
fn bench_filter_pushdown(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let sql = "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
               WHERE o_orderdate < 300 AND l_shipdate < 400";
    let mut group = c.benchmark_group("ablation_filter_pushdown");
    group.sample_size(10);
    for (name, pushdown) in [("on", true), ("off", false)] {
        let mut session = Session::new(catalog.clone());
        session.set_optimizer(OptimizerConfig {
            filter_pushdown: pushdown,
            ..OptimizerConfig::all()
        });
        session.query(sql).run().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, sql| {
            b.iter(|| session.query(sql).run().unwrap().row_count())
        });
    }
    group.finish();
}

/// The price of rigor: executing a 2^2 design with growing replication.
fn bench_replication_cost(c: &mut Criterion) {
    let catalog = catalog_at(0.001);
    let sql = "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 25";
    let mut group = c.benchmark_group("ablation_replication_cost");
    group.sample_size(10);
    for reps in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(reps), &reps, |b, &reps| {
            b.iter(|| {
                let design = TwoLevelDesign::full(&["A", "B"]);
                let mut session = Session::new(catalog.clone());
                let mut exp = |_a: &Assignment| session.query(sql).run().unwrap().server_user_ms();
                Runner::new(reps)
                    .run_two_level(&design, &mut exp)
                    .run_count()
            })
        });
    }
    group.finish();
}

/// Fractional vs full screening: 2^4 vs 2^(4−1) over a synthetic system.
fn bench_fraction_vs_full(c: &mut Criterion) {
    use perfeval_core::alias::Generator;
    use perfeval_core::screen::screen;
    let mut group = c.benchmark_group("ablation_fraction_vs_full");
    group.sample_size(10);
    let system = |a: &Assignment| {
        let mut acc = 0.0;
        // A non-trivial response surface with some busywork.
        for i in 0..2_000 {
            acc += (i as f64).sqrt();
        }
        acc * 1e-9
            + 10.0 * a.num("A").unwrap()
            + 3.0 * a.num("B").unwrap()
            + a.num("C").unwrap() * a.num("D").unwrap()
    };
    group.bench_function("full_2_4", |b| {
        b.iter(|| {
            let mut exp = system;
            screen(&["A", "B", "C", "D"], &[], 1, &mut exp)
                .unwrap()
                .runs_spent
        })
    });
    group.bench_function("fraction_2_4_1", |b| {
        b.iter(|| {
            let mut exp = system;
            screen(
                &["A", "B", "C", "D"],
                &[Generator::parse("D=ABC").unwrap()],
                1,
                &mut exp,
            )
            .unwrap()
            .runs_spent
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_projection_pruning,
    bench_filter_pushdown,
    bench_replication_cost,
    bench_fraction_vs_full,
    bench_topn_fusion
);
criterion_main!(benches);

/// TopN fusion: ORDER BY ... LIMIT k over lineitem, fused vs full sort.
fn bench_topn_fusion(c: &mut Criterion) {
    use criterion::BenchmarkId as Id;
    let catalog = catalog_at(0.004);
    let sql = "SELECT l_extendedprice FROM lineitem \
               ORDER BY l_extendedprice DESC LIMIT 10";
    let mut group = c.benchmark_group("ablation_topn_fusion");
    group.sample_size(10);
    for (name, fusion) in [("on", true), ("off", false)] {
        let mut session = Session::new(catalog.clone());
        session.set_optimizer(OptimizerConfig {
            topn_fusion: fusion,
            ..OptimizerConfig::all()
        });
        session.query(sql).run().unwrap();
        group.bench_with_input(Id::from_parameter(name), &sql, |b, sql| {
            b.iter(|| session.query(sql).run().unwrap().row_count())
        });
    }
    group.finish();
}
