//! Criterion benchmarks, one per paper exhibit with a timing dimension:
//! E2 (hot vs cold), E3 (DBG vs OPT per query shape), E4 (memory wall by
//! machine), E1 (result sinks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsim::scan::scan_cost;
use memsim::{Disk, MachineSpec};
use minidb::{ExecMode, FileSink, NullSink, Session, TerminalSink};
use perfeval_bench::catalog_at;
use workload::queries;

/// E2: the same Q6 executed cold (flush before every iteration) vs hot.
fn bench_e2_hot_cold(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let sql = queries::q6();
    let mut group = c.benchmark_group("e2_hot_cold");
    group.sample_size(10);
    let mut hot = Session::new(catalog.clone()).with_disk(Disk::raid_2008(), 100_000);
    hot.query(&sql).run().unwrap();
    group.bench_function("hot", |b| {
        b.iter(|| hot.query(&sql).run().unwrap().sim_server_real_ms())
    });
    let mut cold = Session::new(catalog).with_disk(Disk::raid_2008(), 100_000);
    group.bench_function("cold", |b| {
        b.iter(|| {
            cold.flush_caches();
            cold.query(&sql).run().unwrap().sim_server_real_ms()
        })
    });
    group.finish();
}

/// E3: DBG vs OPT on three representative query shapes.
fn bench_e3_dbg_opt(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let mut group = c.benchmark_group("e3_dbg_opt");
    group.sample_size(10);
    for (name, sql) in [
        ("q1_scan_agg", queries::q1()),
        ("q6_selective", queries::q6()),
        ("q16_join_group", queries::q16()),
    ] {
        for mode in [ExecMode::Debug, ExecMode::Optimized] {
            let mut session = Session::new(catalog.clone()).with_mode(mode);
            session.query(&sql).run().unwrap();
            group.bench_with_input(BenchmarkId::new(name, mode), &sql, |b, sql| {
                b.iter(|| session.query(sql).run().unwrap().row_count())
            });
        }
    }
    group.finish();
}

/// E4: the memory-wall scan on each historical machine (simulation speed;
/// the simulated per-iteration costs are printed by exp_e4_memory_wall).
fn bench_e4_memory_wall(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_memory_wall_sim");
    group.sample_size(10);
    for machine in MachineSpec::memory_wall_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(&machine.system),
            &machine,
            |b, m| b.iter(|| scan_cost(m, 50_000, 128).total_ns_per_iter()),
        );
    }
    group.finish();
}

/// E1: where the result goes — null vs file vs terminal sink on the
/// large-result query.
fn bench_e1_sinks(c: &mut Criterion) {
    let catalog = catalog_at(0.002);
    let sql = queries::q16();
    let mut session = Session::new(catalog);
    session.query(&sql).run().unwrap();
    let mut group = c.benchmark_group("e1_sinks");
    group.sample_size(10);
    group.bench_function("null", |b| {
        b.iter(|| {
            session
                .query(&sql)
                .sink(&mut NullSink)
                .run()
                .unwrap()
                .result_bytes
        })
    });
    let tmp = std::env::temp_dir().join("perfeval_bench_sink.tsv");
    group.bench_function("file", |b| {
        b.iter(|| {
            let mut sink = FileSink::new(&tmp);
            session
                .query(&sql)
                .sink(&mut sink)
                .run()
                .unwrap()
                .result_bytes
        })
    });
    group.bench_function("terminal", |b| {
        b.iter(|| {
            let mut sink = TerminalSink::new();
            session
                .query(&sql)
                .sink(&mut sink)
                .run()
                .unwrap()
                .result_bytes
        })
    });
    std::fs::remove_file(&tmp).ok();
    group.finish();
}

criterion_group!(
    benches,
    bench_e2_hot_cold,
    bench_e3_dbg_opt,
    bench_e4_memory_wall,
    bench_e1_sinks
);
criterion_main!(benches);
