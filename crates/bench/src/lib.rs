//! # perfeval-bench
//!
//! The benchmark harness reproducing **every table and figure** of the
//! paper's content. Each `exp_*` binary regenerates one exhibit and prints
//! the same rows/series the slides show; `EXPERIMENTS.md` at the repository
//! root records paper-vs-measured for each.
//!
//! | binary | exhibit |
//! |--------|---------|
//! | `exp_e1_what_to_measure` | slides 23–26: server/client, file/terminal table |
//! | `exp_e2_hot_cold` | slides 33–36: hot vs cold × user vs real |
//! | `exp_e3_dbg_opt` | slide 41: DBG/OPT ratio across 22 queries |
//! | `exp_e4_memory_wall` | slides 46/51: scan ns/iteration, 5 machines |
//! | `exp_e5_interaction` | slide 58: interaction tables (a) and (b) |
//! | `exp_e6_twok` | slides 70–85: 2² design, sign table, allocation |
//! | `exp_e8_networks` | slides 86–93: variation-explained table |
//! | `exp_e9_latin` | slide 67: 9-run fractional design table |
//! | `exp_e10_2_7_4` | slides 102–103: 2^(7−4) sign table |
//! | `exp_e11_confounding` | slides 104–109: D=ABC vs D=AB |
//! | `exp_e12_profile` | slide 54: per-operator profile trace |
//! | `exp_e13_presentation` | slides 142/144: CI overlap + histogram cells |
//! | `exp_e14_repeatability` | slides 218–220: SIGMOD 2008 outcomes |
//! | `exp_e15_gnuplot` | slides 202–205: CSV → gnuplot automation |
//! | `exp_e16_locale` | slides 212–215: the 13.666 → 13666 bug |
//! | `exp_e17_timers` | slides 27–29: timers and their resolutions |
//! | `exp_e18_observer_effect` | tracing overhead: off/disabled/sampled/full arms |
//! | `exp_e19_parallel_speedup` | morsel-parallel speed-up as a 2³ designed experiment |
//! | `exp_e20_fault_robustness` | injected panics/hangs: retries, quarantine, watchdog deadlines |
//! | `exp_e21_client_server` | slides 23–26 measured over a real wire: transport × sink × result size |
//! | `exp_e22_load_knee` | the throughput knee: arrival × concurrency × mix, coordinated-omission-safe tails |
//! | `exp_e23_sharded_server` | sharded event loop vs thread-per-connection × connection scale |
//! | `exp_e24_simd` | the engine as a 3-level factor (DBG/OPT/SIMD): effect CIs + allocation of variation |
//! | `minidb-serve` | standalone TCP server for `minidb-net` clients (not an exhibit) |
//! | `minidb-load` | multi-client load-generator CLI (not an exhibit) |
//! | `minidb-bench` | perf-trajectory suite runner + the CI regression gate (not an exhibit) |
//!
//! Criterion benches under `benches/` measure the engine primitives and the
//! ablations DESIGN.md calls out.

pub mod trajectory;

use minidb::{Catalog, ExecMode, Session};
use perfeval_harness::Properties;
use workload::dbgen::{generate, GenConfig};

/// The standard scale factor used by the experiment binaries: large enough
/// for stable timings, small enough to regenerate in seconds.
pub const BENCH_SCALE_FACTOR: f64 = 0.01;

/// The standard seed (recorded; the whole data set regenerates from it).
pub const BENCH_SEED: u64 = 20080408;

/// Generates the standard benchmark catalog.
pub fn bench_catalog() -> Catalog {
    generate(&GenConfig {
        scale_factor: BENCH_SCALE_FACTOR,
        seed: BENCH_SEED,
        part_skew: None,
    })
}

/// Generates a catalog at an explicit scale factor.
pub fn catalog_at(scale_factor: f64) -> Catalog {
    generate(&GenConfig {
        scale_factor,
        seed: BENCH_SEED,
        part_skew: None,
    })
}

/// Median of a sample (destructive order).
pub fn median(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty(), "median of empty sample");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    values[values.len() / 2]
}

/// Measures a query's server user time: one warmup run, then the median of
/// `reps` measured runs.
pub fn measure_user_ms(session: &mut Session, sql: &str, reps: usize) -> f64 {
    session.query(sql).run().expect("warmup run");
    median(
        (0..reps)
            .map(|_| {
                session
                    .query(sql)
                    .run()
                    .expect("measured run")
                    .server_user_ms()
            })
            .collect(),
    )
}

/// Builds a session in the given mode over a shared catalog.
pub fn session_with_mode(catalog: &Catalog, mode: ExecMode) -> Session {
    Session::new(catalog.clone()).with_mode(mode)
}

/// The shared experiment knobs, defaults overridden by `-Dkey=value`
/// command-line arguments (the slide-193 layering):
///
/// * `threads` — worker count for parallel sweeps (default 1, serial).
/// * `cache` — `on`/`off`, the resumable result cache (default off here;
///   experiments that use it honor `-Dcache=on`).
///
/// # Panics
/// Panics with the malformed argument when a `-D` option does not parse.
pub fn bench_props() -> Properties {
    let mut props = Properties::with_defaults(&[("threads", "1"), ("cache", "off")]);
    let args: Vec<String> = std::env::args().skip(1).collect();
    props
        .apply_args(args.iter().map(String::as_str))
        .expect("arguments must be -Dkey=value");
    props
}

/// The `threads` knob of [`bench_props`], clamped to at least 1.
pub fn threads_knob(props: &Properties) -> usize {
    props
        .get_u64("threads")
        .expect("-Dthreads must be a number")
        .unwrap_or(1)
        .max(1) as usize
}

/// Prints a horizontal rule and a heading, the shared exhibit banner.
pub fn banner(experiment: &str, slide: &str) {
    println!("{}", "=".repeat(72));
    println!("{experiment}  (reproduces {slide})");
    println!("{}", "=".repeat(72));
}

/// Environment line printed by every experiment: "document what you do".
pub fn print_environment() {
    let spec = perfeval_measure::EnvSpec::capture();
    println!("host: {}", spec.render());
    println!(
        "workload: TPC-H-like, sf={BENCH_SCALE_FACTOR}, seed={BENCH_SEED} \
         (regenerates bit-identically)"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_catalog_is_deterministic() {
        let a = bench_catalog();
        let b = bench_catalog();
        assert_eq!(
            a.table("lineitem").unwrap().row_count(),
            b.table("lineitem").unwrap().row_count()
        );
    }

    #[test]
    fn median_behaviour() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![5.0]), 5.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    fn measure_user_ms_is_positive() {
        let catalog = catalog_at(0.001);
        let mut s = Session::new(catalog);
        let ms = measure_user_ms(&mut s, "SELECT COUNT(*) FROM lineitem", 3);
        assert!(ms >= 0.0);
    }

    #[test]
    #[should_panic(expected = "median of empty sample")]
    fn median_empty_panics() {
        median(Vec::new());
    }

    #[test]
    fn threads_knob_defaults_and_clamps() {
        let props = Properties::with_defaults(&[("threads", "4")]);
        assert_eq!(threads_knob(&props), 4);
        let zero = Properties::with_defaults(&[("threads", "0")]);
        assert_eq!(threads_knob(&zero), 1, "0 threads clamps to serial");
        assert_eq!(threads_knob(&Properties::new()), 1, "default is serial");
    }
}
