//! The committed perf-trajectory suite: `minidb-bench run` / `compare`.
//!
//! The paper's repeatability argument (slides 218–220) is that a result
//! nobody can re-measure is an anecdote. This module turns the repository
//! itself into the longitudinal experiment: a pinned suite of four
//! workloads × three engines is measured with replication, summarized into
//! a `BENCH_<pr>.json` file at the repository root, and every subsequent
//! change is compared against the committed baseline with the
//! Kalibera–Jones effect-size interval from `perfeval_stats` — CI fails
//! the build when a slowdown's confidence interval clears the tolerance.
//!
//! Design choices, in the paper's terms:
//!
//! * **Replicates, not single runs.** Each cell records every replicate
//!   (server user-time ms), not just a median, so the comparison can form
//!   a real confidence interval instead of eyeballing two numbers.
//! * **Interleaved sweeps.** Replicate `r` of every cell runs before
//!   replicate `r+1` of any cell, so slow drift (thermal, page cache)
//!   lands evenly across engines instead of confounding one of them.
//! * **Effect sizes, not p-values.** `compare` reports the ratio
//!   head/baseline with a CI on `ratio − 1`; a regression is declared only
//!   when the *lower* bound clears `tolerance` — "visibly slower, with
//!   the noise accounted for".
//! * **Environment is recorded.** The JSON carries the host spec; when
//!   baseline and head hosts differ the comparison says so, because a
//!   cross-machine ratio is a different experiment.

use crate::{catalog_at, BENCH_SEED};
use minidb::{ExecMode, Session};
use perfeval_trace::json::{self, Json};
use std::fmt::Write as _;
use std::path::Path;

/// Suite identifier written into the JSON; bump when the workload set or
/// measurement protocol changes incompatibly.
pub const SUITE_NAME: &str = "perf-trajectory-v1";

/// Schema version of the JSON file.
pub const SCHEMA_VERSION: u64 = 1;

/// The three engine levels, in presentation order.
pub const ENGINES: [ExecMode; 3] = [ExecMode::Debug, ExecMode::Optimized, ExecMode::Simd];

/// One pinned workload of the trajectory suite.
pub struct Workload {
    /// Stable name used in record ids (`<workload>/<engine>`).
    pub name: &'static str,
    /// The SQL it measures.
    pub sql: fn() -> String,
}

fn filter_heavy() -> String {
    // Conjunctive integer filters + COUNT: exercises compare-select and
    // the branchless compaction kernels, nothing else.
    "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24 AND l_orderkey > 100".to_owned()
}

fn agg_heavy() -> String {
    // Global integer folds: every aggregate qualifies for the lane
    // kernels (sum with the 2^53 exactness guard, order-free min/max).
    "SELECT SUM(l_quantity), MIN(l_orderkey), MAX(l_quantity), COUNT(*) FROM lineitem".to_owned()
}

fn join_heavy() -> String {
    // Integer-keyed join: exercises the open-addressed SIMD build/probe
    // index against the scalar directory.
    workload::queries::family(12)
}

fn end_to_end() -> String {
    // TPC-H Q1-like: parse → filter → wide group-by → sort, the whole
    // engine in one query.
    workload::queries::q1()
}

/// The pinned suite. Order is fixed; ids derive from it.
pub fn suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "filter-heavy",
            sql: filter_heavy,
        },
        Workload {
            name: "agg-heavy",
            sql: agg_heavy,
        },
        Workload {
            name: "join-heavy",
            sql: join_heavy,
        },
        Workload {
            name: "end-to-end",
            sql: end_to_end,
        },
    ]
}

/// Measurement knobs for one suite run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// TPC-H-like scale factor of the generated catalog.
    pub scale_factor: f64,
    /// Measured replicates per cell (after one warmup).
    pub replicates: usize,
    /// When set, the suite measures a **disk-backed** catalog: the data
    /// is persisted into this directory (once — reused on later runs)
    /// and reopened through `perfeval-store`'s segment files and buffer
    /// pool, so the measurement exercises the real read path instead of
    /// purely in-memory columns. `None` keeps the historical in-memory
    /// protocol that the committed baselines were measured under.
    pub data_dir: Option<std::path::PathBuf>,
}

impl RunConfig {
    /// The full-fidelity configuration used for committed baselines.
    pub fn full() -> Self {
        RunConfig {
            scale_factor: 0.01,
            replicates: 15,
            data_dir: None,
        }
    }

    /// A fast configuration for CI smoke gating: smaller data, fewer
    /// replicates, to be paired with a wider tolerance. (When `compare`
    /// measures a live head it overrides the scale factor with the
    /// baseline's, so the gate stays commensurable — only the replicate
    /// count and tolerance come from here.)
    pub fn smoke() -> Self {
        RunConfig {
            scale_factor: 0.002,
            replicates: 7,
            data_dir: None,
        }
    }
}

/// One measured cell: a workload under one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable id, `<workload>/<engine>` (e.g. `agg-heavy/SIMD`).
    pub id: String,
    /// Workload name.
    pub workload: String,
    /// Engine level (`DBG`/`OPT`/`SIMD`).
    pub engine: String,
    /// Every measured replicate, server user-time milliseconds, in
    /// measurement order.
    pub replicates_ms: Vec<f64>,
    /// Median of `replicates_ms` (redundant but human-scannable).
    pub median_ms: f64,
}

/// A full trajectory measurement — what `BENCH_<pr>.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Suite identifier ([`SUITE_NAME`]).
    pub suite: String,
    /// Host description at measurement time.
    pub host: String,
    /// Scale factor the catalog was generated at.
    pub scale_factor: f64,
    /// Generator seed (the data regenerates bit-identically from it).
    pub seed: u64,
    /// Replicates per cell.
    pub replicates: usize,
    /// All measured cells, suite order × engine order.
    pub records: Vec<BenchRecord>,
}

impl BenchFile {
    /// Looks up a record by id.
    pub fn record(&self, id: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.id == id)
    }
}

/// Runs the pinned suite and returns the measurement.
///
/// Sweeps are interleaved: one warmup pass over every cell, then
/// replicate `r` of every cell before replicate `r+1` of any — slow
/// environmental drift averages across engines instead of biasing one.
pub fn run_suite(cfg: RunConfig) -> BenchFile {
    let catalog = match &cfg.data_dir {
        Some(dir) => {
            // Persist once (an existing manifest is reused as-is), then
            // measure the disk-backed catalog: warmup faults the pool,
            // measured replicates run against real resident segments.
            if !dir
                .join(perfeval_store::manifest::CATALOG_MANIFEST)
                .exists()
            {
                catalog_at(cfg.scale_factor)
                    .persist(dir)
                    .expect("persist suite catalog");
            }
            minidb::Catalog::open(dir).expect("open disk-backed suite catalog")
        }
        None => catalog_at(cfg.scale_factor),
    };
    let workloads = suite();
    let mut sessions: Vec<(String, String, Session, String)> = Vec::new();
    for w in &workloads {
        for engine in ENGINES {
            let s = Session::new(catalog.clone()).with_mode(engine);
            sessions.push((w.name.to_owned(), engine.to_string(), s, (w.sql)()));
        }
    }
    // Warmup: one run per cell, untimed (fills caches, settles allocators).
    for (_, _, session, sql) in &mut sessions {
        session.query(sql).run().expect("warmup run");
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.replicates); sessions.len()];
    for _ in 0..cfg.replicates {
        for (i, (_, _, session, sql)) in sessions.iter_mut().enumerate() {
            let ms = session
                .query(sql)
                .run()
                .expect("measured run")
                .server_user_ms();
            samples[i].push(ms);
        }
    }
    let records = sessions
        .iter()
        .zip(samples)
        .map(|((workload, engine, _, _), replicates_ms)| BenchRecord {
            id: format!("{workload}/{engine}"),
            workload: workload.clone(),
            engine: engine.clone(),
            median_ms: crate::median(replicates_ms.clone()),
            replicates_ms,
        })
        .collect();
    BenchFile {
        schema_version: SCHEMA_VERSION,
        suite: SUITE_NAME.to_owned(),
        host: perfeval_measure::EnvSpec::capture().render(),
        scale_factor: cfg.scale_factor,
        seed: BENCH_SEED,
        replicates: cfg.replicates,
        records,
    }
}

// ------------------------------------------------------------------
// JSON serialization (hand-rolled: the workspace is offline, no serde).
// ------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the measurement as pretty-printed JSON (stable key order, one
/// record per block — the file is committed, so diffs should read well).
pub fn to_json(file: &BenchFile) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": {},", file.schema_version);
    s.push_str("  \"suite\": ");
    push_json_str(&mut s, &file.suite);
    s.push_str(",\n  \"host\": ");
    push_json_str(&mut s, &file.host);
    let _ = write!(
        s,
        ",\n  \"scale_factor\": {},\n  \"seed\": {},\n  \"replicates\": {},\n",
        file.scale_factor, file.seed, file.replicates
    );
    s.push_str("  \"records\": [\n");
    for (i, r) in file.records.iter().enumerate() {
        s.push_str("    {\"id\": ");
        push_json_str(&mut s, &r.id);
        s.push_str(", \"workload\": ");
        push_json_str(&mut s, &r.workload);
        s.push_str(", \"engine\": ");
        push_json_str(&mut s, &r.engine);
        let _ = write!(s, ",\n     \"median_ms\": {},", r.median_ms);
        s.push('\n');
        s.push_str("     \"replicates_ms\": [");
        for (j, v) in r.replicates_ms.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{v}");
        }
        s.push_str("]}");
        s.push_str(if i + 1 < file.records.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn get_num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn get_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))?
        .to_owned())
}

/// Parses a trajectory file back (via the workspace's own JSON reader).
pub fn from_json(text: &str) -> Result<BenchFile, String> {
    let root = json::parse(text)?;
    let schema_version = get_num(&root, "schema_version")? as u64;
    if schema_version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {schema_version} (expected {SCHEMA_VERSION})"
        ));
    }
    let records = root
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing 'records' array")?
        .iter()
        .map(|r| {
            let replicates_ms = r
                .get("replicates_ms")
                .and_then(Json::as_arr)
                .ok_or("missing 'replicates_ms'")?
                .iter()
                .map(|v| v.as_num().ok_or("non-numeric replicate"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(BenchRecord {
                id: get_str(r, "id")?,
                workload: get_str(r, "workload")?,
                engine: get_str(r, "engine")?,
                median_ms: get_num(r, "median_ms")?,
                replicates_ms,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchFile {
        schema_version,
        suite: get_str(&root, "suite")?,
        host: get_str(&root, "host")?,
        scale_factor: get_num(&root, "scale_factor")?,
        seed: get_num(&root, "seed")? as u64,
        replicates: get_num(&root, "replicates")? as usize,
        records,
    })
}

/// Writes the measurement to `path`.
///
/// # Panics
/// Panics when the file cannot be written.
pub fn write_file(file: &BenchFile, path: &Path) {
    std::fs::write(path, to_json(file))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Reads a measurement from `path`.
pub fn read_file(path: &Path) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    from_json(&text)
}

// ------------------------------------------------------------------
// Comparison: head vs committed baseline, Kalibera–Jones intervals.
// ------------------------------------------------------------------

/// Verdict for one record id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The slowdown CI clears the tolerance: head is credibly slower.
    Regression,
    /// The speedup CI clears the tolerance: head is credibly faster.
    Improvement,
    /// The CI does not clear the tolerance either way.
    Unchanged,
}

/// One compared record.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Record id (`<workload>/<engine>`).
    pub id: String,
    /// Baseline median, ms.
    pub baseline_ms: f64,
    /// Head median, ms.
    pub head_ms: f64,
    /// Head/baseline ratio of means (−1), with its confidence interval:
    /// positive means head is slower.
    pub effect: perfeval_stats::EffectSize,
    /// Gate verdict at the configured tolerance.
    pub verdict: Verdict,
}

/// The full comparison.
pub struct CompareReport {
    /// Per-record rows, suite order.
    pub rows: Vec<CompareRow>,
    /// Ids present in the baseline but missing from head (warned, not
    /// gated — a renamed workload should fail loudly in review, not
    /// silently pass).
    pub missing_in_head: Vec<String>,
    /// Ids present in head but not in the baseline (new cells, informational).
    pub new_in_head: Vec<String>,
    /// Whether the two files were measured on the same host description.
    pub same_host: bool,
    /// Tolerance on the ratio−1 scale that the verdicts used.
    pub tolerance: f64,
}

impl CompareReport {
    /// Number of gated regressions.
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regression)
            .count()
    }

    /// True when the gate passes (no regression and nothing missing).
    pub fn passes(&self) -> bool {
        self.regressions() == 0 && self.missing_in_head.is_empty()
    }
}

/// Compares `head` against `baseline` at confidence `level`.
///
/// A record regresses when the lower bound of the Kalibera–Jones CI on
/// `head/baseline − 1` exceeds `tolerance` — i.e. we are `level`-confident
/// the slowdown is worse than the tolerance, noise accounted for. The
/// symmetric criterion flags improvements.
pub fn compare(
    head: &BenchFile,
    baseline: &BenchFile,
    level: f64,
    tolerance: f64,
) -> Result<CompareReport, String> {
    if head.suite != baseline.suite {
        return Err(format!(
            "suite mismatch: head '{}' vs baseline '{}'",
            head.suite, baseline.suite
        ));
    }
    // Raw milliseconds are only commensurable over the same data: a head
    // measured at a smaller scale factor would read as an across-the-board
    // "improvement" and hide any real regression behind the ratio.
    if head.scale_factor != baseline.scale_factor {
        return Err(format!(
            "scale-factor mismatch: head {} vs baseline {} — cells are not comparable",
            head.scale_factor, baseline.scale_factor
        ));
    }
    if head.seed != baseline.seed {
        return Err(format!(
            "generator-seed mismatch: head {} vs baseline {}",
            head.seed, baseline.seed
        ));
    }
    let mut rows = Vec::new();
    let mut missing_in_head = Vec::new();
    for b in &baseline.records {
        let Some(h) = head.record(&b.id) else {
            missing_in_head.push(b.id.clone());
            continue;
        };
        let effect = perfeval_stats::effect_size_ci(&h.replicates_ms, &b.replicates_ms, level)
            .map_err(|e| format!("{}: {e}", b.id))?;
        let verdict = if effect.effect.lower > tolerance {
            Verdict::Regression
        } else if effect.effect.upper < -tolerance {
            Verdict::Improvement
        } else {
            Verdict::Unchanged
        };
        rows.push(CompareRow {
            id: b.id.clone(),
            baseline_ms: b.median_ms,
            head_ms: h.median_ms,
            effect,
            verdict,
        });
    }
    let new_in_head = head
        .records
        .iter()
        .filter(|h| baseline.record(&h.id).is_none())
        .map(|h| h.id.clone())
        .collect();
    Ok(CompareReport {
        rows,
        missing_in_head,
        new_in_head,
        same_host: head.host == baseline.host,
        tolerance,
    })
}

/// Renders the comparison as the table `minidb-bench compare` prints.
pub fn render_report(report: &CompareReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<22} {:>10} {:>10} {:>8}  {:>18}  verdict",
        "cell", "base ms", "head ms", "ratio", "CI on ratio-1"
    );
    for r in &report.rows {
        let ratio = r.effect.effect.estimate + 1.0;
        let _ = writeln!(
            s,
            "{:<22} {:>10.3} {:>10.3} {:>8.3}  [{:>+7.1}%, {:>+7.1}%]  {}",
            r.id,
            r.baseline_ms,
            r.head_ms,
            ratio,
            r.effect.effect.lower * 100.0,
            r.effect.effect.upper * 100.0,
            match r.verdict {
                Verdict::Regression => "REGRESSION",
                Verdict::Improvement => "improvement",
                Verdict::Unchanged => "ok",
            }
        );
    }
    for id in &report.missing_in_head {
        let _ = writeln!(s, "{id:<22} MISSING from head (gate fails)");
    }
    for id in &report.new_in_head {
        let _ = writeln!(s, "{id:<22} new in head (no baseline)");
    }
    if !report.same_host {
        let _ = writeln!(
            s,
            "note: baseline and head were measured on different hosts; \
             cross-machine ratios are a different experiment — interpret \
             with the tolerance ({:.0}%) in mind",
            report.tolerance * 100.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(ms: &[f64]) -> BenchFile {
        BenchFile {
            schema_version: SCHEMA_VERSION,
            suite: SUITE_NAME.to_owned(),
            host: "test-host".to_owned(),
            scale_factor: 0.01,
            seed: BENCH_SEED,
            replicates: ms.len(),
            records: vec![BenchRecord {
                id: "agg-heavy/SIMD".to_owned(),
                workload: "agg-heavy".to_owned(),
                engine: "SIMD".to_owned(),
                median_ms: crate::median(ms.to_vec()),
                replicates_ms: ms.to_vec(),
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let f = synthetic(&[1.25, 1.5, 1.0, 1.125]);
        let back = from_json(&to_json(&f)).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn json_escapes_host_strings() {
        let mut f = synthetic(&[1.0, 2.0]);
        f.host = "quote \" backslash \\ tab\t".to_owned();
        let back = from_json(&to_json(&f)).unwrap();
        assert_eq!(f.host, back.host);
    }

    #[test]
    fn compare_flags_injected_slowdown() {
        let base = synthetic(&[10.0, 10.1, 9.9, 10.0, 10.05]);
        let head = synthetic(&[13.0, 13.1, 12.9, 13.0, 13.05]);
        let report = compare(&head, &base, 0.95, 0.10).unwrap();
        assert_eq!(report.rows[0].verdict, Verdict::Regression);
        assert_eq!(report.regressions(), 1);
        assert!(!report.passes());
        assert!(render_report(&report).contains("REGRESSION"));
    }

    #[test]
    fn compare_tolerates_noise_and_flags_improvement() {
        let base = synthetic(&[10.0, 10.4, 9.6, 10.1, 9.9]);
        let same = synthetic(&[10.1, 9.8, 10.2, 10.0, 9.95]);
        let report = compare(&same, &base, 0.95, 0.10).unwrap();
        assert_eq!(report.rows[0].verdict, Verdict::Unchanged);
        assert!(report.passes());

        let faster = synthetic(&[7.0, 7.1, 6.9, 7.0, 7.05]);
        let report = compare(&faster, &base, 0.95, 0.10).unwrap();
        assert_eq!(report.rows[0].verdict, Verdict::Improvement);
        assert!(report.passes());
    }

    #[test]
    fn compare_gates_on_missing_cells() {
        let base = synthetic(&[10.0, 10.0, 10.0]);
        let mut head = synthetic(&[10.0, 10.0, 10.0]);
        head.records[0].id = "renamed/OPT".to_owned();
        let report = compare(&head, &base, 0.95, 0.10).unwrap();
        assert_eq!(report.missing_in_head, vec!["agg-heavy/SIMD".to_owned()]);
        assert_eq!(report.new_in_head, vec!["renamed/OPT".to_owned()]);
        assert!(!report.passes());
    }

    #[test]
    fn compare_rejects_suite_mismatch() {
        let base = synthetic(&[10.0, 10.0]);
        let mut head = synthetic(&[10.0, 10.0]);
        head.suite = "other-suite".to_owned();
        assert!(compare(&head, &base, 0.95, 0.10).is_err());
    }

    #[test]
    fn compare_rejects_incommensurable_measurements() {
        // A head measured over less data would read as a fake improvement;
        // the gate must refuse rather than pass vacuously.
        let base = synthetic(&[10.0, 10.0]);
        let mut head = synthetic(&[2.0, 2.0]);
        head.scale_factor = 0.002;
        assert!(compare(&head, &base, 0.95, 0.10).is_err());

        let mut reseeded = synthetic(&[10.0, 10.0]);
        reseeded.seed = 42;
        assert!(compare(&reseeded, &base, 0.95, 0.10).is_err());
    }

    #[test]
    fn suite_runs_end_to_end_at_tiny_scale() {
        let file = run_suite(RunConfig {
            scale_factor: 0.001,
            replicates: 2,
            data_dir: None,
        });
        assert_eq!(file.records.len(), suite().len() * ENGINES.len());
        assert!(file.records.iter().all(|r| r.replicates_ms.len() == 2));
        assert!(file
            .records
            .iter()
            .all(|r| r.replicates_ms.iter().all(|v| v.is_finite() && *v >= 0.0)));
        // The file the suite writes is the file compare reads.
        let back = from_json(&to_json(&file)).unwrap();
        assert_eq!(file, back);
        // A suite compared against itself never gates.
        let report = compare(&file, &file, 0.95, 0.10).unwrap();
        assert!(report.passes());
    }
}
