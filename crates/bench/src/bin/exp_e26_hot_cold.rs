//! E26 — hot vs. cold on *real* storage: measured, not simulated.
//!
//! E2 reproduces the paper's hot/cold table with a modeled era disk
//! (`memsim`): instructive for what-ifs, but its "I/O" is arithmetic.
//! This experiment persists the benchmark catalog to real segment files
//! and reruns the hot/cold comparison against `perfeval-store`'s real
//! buffer pool, where every hit, miss, and eviction is a **counter**,
//! not a model:
//!
//! * **Design**: state (cold / hot) × eviction policy (LRU / Clock / 2Q)
//!   at a pool-fitting scale factor, fully replicated; plus one scale
//!   factor *exceeding* the pool budget, which must complete by evicting
//!   (the working set does not fit — the pool has to stream it).
//! * **Cold protocol**: `Session::flush_caches` empties the buffer pool
//!   and drops the segment files' OS page-cache pages
//!   (`posix_fadvise(DONTNEED)`). On tmpfs the fadvise is a no-op and
//!   "cold" degrades to pool-cold-only — the *counters* are unaffected,
//!   which is why the assertions gate on counters, not on seconds.
//! * **Analysis**: per-policy cold/hot effect with Kalibera–Jones CIs,
//!   and a two-factor allocation of variation (state × policy) over log
//!   times.
//!
//! Knobs: `-Dsmoke=on`, `-Dreps=N`, `-Ddata_dir=PATH` (default: a
//! process-scoped temp directory).

use minidb::{Catalog, Session, StoreConfig};
use perfeval_bench::{banner, bench_props, catalog_at, median, print_environment};
use perfeval_stats::effect_size_ci;
use perfeval_store::Evict;
use std::path::PathBuf;
use workload::queries;

/// Two-factor allocation of variation with replication (general levels),
/// as in E24: responses indexed `y[a][b][r]`.
fn allocate_variation_general(y: &[Vec<Vec<f64>>]) -> (f64, f64, f64, f64, f64) {
    let a = y.len();
    let b = y[0].len();
    let r = y[0][0].len();
    let grand: f64 = y.iter().flatten().flatten().sum::<f64>() / (a * b * r) as f64;
    let cell_mean = |i: usize, j: usize| -> f64 { y[i][j].iter().sum::<f64>() / r as f64 };
    let a_mean = |i: usize| -> f64 { (0..b).map(|j| cell_mean(i, j)).sum::<f64>() / b as f64 };
    let b_mean = |j: usize| -> f64 { (0..a).map(|i| cell_mean(i, j)).sum::<f64>() / a as f64 };

    let ss_a: f64 = (0..a)
        .map(|i| (b * r) as f64 * (a_mean(i) - grand).powi(2))
        .sum();
    let ss_b: f64 = (0..b)
        .map(|j| (a * r) as f64 * (b_mean(j) - grand).powi(2))
        .sum();
    let mut ss_ab = 0.0;
    let mut ss_err = 0.0;
    let mut ss_total = 0.0;
    for (i, row) in y.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            let cm = cell_mean(i, j);
            ss_ab += r as f64 * (cm - a_mean(i) - b_mean(j) + grand).powi(2);
            for &v in cell {
                ss_err += (v - cm).powi(2);
                ss_total += (v - grand).powi(2);
            }
        }
    }
    (ss_a, ss_b, ss_ab, ss_err, ss_total)
}

/// Decoded size of a catalog's data, for sizing the pool budget.
fn catalog_bytes(catalog: &Catalog) -> u64 {
    catalog
        .table_names()
        .iter()
        .map(|n| {
            let t = catalog.table(n).expect("listed table");
            t.row_count() as u64 * t.row_bytes()
        })
        .sum()
}

fn persist_at(sf: f64, dir: &PathBuf, chunk_rows: usize) -> u64 {
    let _ = std::fs::remove_dir_all(dir);
    let mem = catalog_at(sf);
    mem.persist_with(dir, &StoreConfig::default().chunk_rows(chunk_rows))
        .expect("persist benchmark catalog");
    catalog_bytes(&mem)
}

fn main() {
    banner(
        "E26: hot vs cold on real storage (measured, not simulated)",
        "slides 33-36, with real counters",
    );
    print_environment();
    let props = bench_props();
    let smoke = props.get("smoke").map(|s| s == "on").unwrap_or(false);
    let reps = props
        .get_u64("reps")
        .expect("-Dreps must be a number")
        .map(|r| (r as usize).max(2))
        .unwrap_or(if smoke { 3 } else { 7 });
    let root = props
        .get("data_dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("exp_e26_{}", std::process::id())));
    let (sf_fit, sf_over) = if smoke { (0.001, 0.004) } else { (0.005, 0.02) };
    let chunk_rows = 4096;

    let fit_dir = root.join("fit");
    let over_dir = root.join("over");
    let fit_bytes = persist_at(sf_fit, &fit_dir, chunk_rows);
    let over_bytes = persist_at(sf_over, &over_dir, chunk_rows);
    // The budget is the design's hinge. Projection pushdown means a
    // query's working set is only the columns it scans (~45% of the
    // catalog for Q1), so the budget sits at 1x the fitting catalog:
    // comfortably above the fitting working set, well below the
    // exceeding one (the over catalog is 4x the fitting data).
    let pool_bytes = fit_bytes;
    assert!(
        over_bytes > pool_bytes,
        "sf {sf_over} ({over_bytes} B) must exceed the pool budget ({pool_bytes} B)"
    );
    println!(
        "design: state (cold/hot) x policy (lru/clock/2q), r={reps}, sf={sf_fit} \
         ({fit_bytes} B decoded)\npool budget: {pool_bytes} B; over-budget probe: sf={sf_over} \
         ({over_bytes} B decoded)\n"
    );

    let sql = queries::q1();
    let policies = Evict::all();

    // y[state][policy][rep], state 0 = cold, 1 = hot. Counters checked
    // per replicate; times kept for the analysis.
    let mut y: Vec<Vec<Vec<f64>>> = vec![vec![Vec::with_capacity(reps); policies.len()]; 2];
    for (pi, &evict) in policies.iter().enumerate() {
        let disk = Catalog::open_with(
            &fit_dir,
            StoreConfig::default().pool_bytes(pool_bytes).evict(evict),
        )
        .expect("open fitting catalog");
        let mut session = Session::new(disk);
        for rep in 0..reps {
            // Cold: a real restart-equivalent, then one measured run.
            session.flush_caches();
            let cold = session.query(&sql).run().expect("cold run");
            assert!(
                cold.store_physical_reads > 0,
                "{evict:?} rep {rep}: cold run must do real I/O"
            );
            y[0][pi].push(cold.server_real_ms());

            // Hot: measured last of three consecutive runs; the pool
            // fits the working set, so the rerun must converge to pure
            // hits.
            let _ = session.query(&sql).run().expect("hot warm");
            let hot = session.query(&sql).run().expect("hot measured");
            assert_eq!(
                hot.store_physical_reads, 0,
                "{evict:?} rep {rep}: hot rerun must not touch disk"
            );
            let hit_rate = session.pool_hit_rate().expect("backed catalog");
            assert!(
                hit_rate >= 0.99,
                "{evict:?} rep {rep}: hot hit rate {hit_rate:.4} below 99%"
            );
            y[1][pi].push(hot.server_real_ms());
        }
    }

    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "policy", "cold ms", "hot ms", "cold/hot"
    );
    for (pi, &evict) in policies.iter().enumerate() {
        let c = median(y[0][pi].clone());
        let h = median(y[1][pi].clone());
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>10.2}",
            evict.as_str(),
            c,
            h,
            c / h.max(1e-9)
        );
    }

    // Cold-vs-hot effect per policy, with the interval that must back
    // any claim (Kalibera-Jones, 95%).
    println!("\ncold vs hot effect (ratio - 1, 95% CI):");
    for (pi, &evict) in policies.iter().enumerate() {
        let e = effect_size_ci(&y[0][pi], &y[1][pi], 0.95).expect("effect");
        let verdict = if e.effect.lower > 0.0 {
            "cold slower (CI clears zero)"
        } else if e.effect.upper < 0.0 {
            "cold faster?! (suspect environment)"
        } else {
            "indistinguishable (likely tmpfs + tiny data)"
        };
        println!(
            "  {:<8} {:+7.1}%  [{:+7.1}%, {:+7.1}%]  {}",
            evict.as_str(),
            e.effect.estimate * 100.0,
            e.effect.lower * 100.0,
            e.effect.upper * 100.0,
            verdict
        );
    }

    // Allocation of variation over log times: state x policy.
    let logs: Vec<Vec<Vec<f64>>> = y
        .iter()
        .map(|row| {
            row.iter()
                .map(|cell| cell.iter().map(|v| v.max(1e-9).ln()).collect())
                .collect()
        })
        .collect();
    let (ss_state, ss_policy, ss_int, ss_err, ss_t) = allocate_variation_general(&logs);
    println!("\nallocation of variation (log ms):");
    for (name, ss) in [
        ("state", ss_state),
        ("policy", ss_policy),
        ("interaction", ss_int),
        ("replicates", ss_err),
    ] {
        println!("  {:<12} {:>6.1}%", name, 100.0 * ss / ss_t.max(1e-12));
    }

    // Over-budget probe: the working set does not fit, so the pool must
    // stream it — completing, evicting, and staying within budget (or
    // counting overcommits, never silently ballooning).
    println!("\nover-budget probe (sf {sf_over}, pool {pool_bytes} B):");
    let disk = Catalog::open_with(&over_dir, StoreConfig::default().pool_bytes(pool_bytes))
        .expect("open over-budget catalog");
    let store = std::sync::Arc::clone(disk.storage().expect("backed"));
    let mut session = Session::new(disk);
    let over = session.query(&sql).run().expect("over-budget scan");
    let c = store.counters();
    println!(
        "  completed: {} rows out, {} logical / {} physical reads, {} evictions, \
         {} overcommits, resident {} B",
        over.row_count(),
        c.logical_reads,
        c.physical_reads,
        c.evictions,
        c.overcommits,
        store.resident_bytes()
    );
    assert!(c.evictions > 0, "over-budget scan must evict");
    assert!(
        store.resident_bytes() <= pool_bytes || c.overcommits > 0,
        "pool must respect its budget or count the overcommit"
    );
    // Rerunning over-budget stays physical: there is no way to cache a
    // working set larger than the pool.
    let before = store.counters();
    let _ = session.query(&sql).run().expect("over-budget rerun");
    let delta = store.counters().since(&before);
    assert!(
        delta.physical_reads > 0,
        "an over-budget working set cannot run hot"
    );

    // The cold/hot counter gap is the exhibit; the time gap depends on
    // the medium (tmpfs vs disk), so it is reported, not asserted.
    let cold_mean: f64 = y[0].iter().flatten().sum::<f64>() / (policies.len() * reps) as f64;
    let hot_mean: f64 = y[1].iter().flatten().sum::<f64>() / (policies.len() * reps) as f64;
    println!(
        "\ncold mean {cold_mean:.3} ms vs hot mean {hot_mean:.3} ms \
         (gap is medium-dependent; the counters above are not)"
    );
    println!("conclusion: hot vs cold is now a measured factor — the I/O is real,");
    println!("the counters are real, and the eviction policy is a real knob.");
}
