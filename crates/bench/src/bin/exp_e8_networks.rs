//! E8 — allocation of variation: the memory-interconnect example
//! (slides 86–93).
//!
//! Paper's table of variation explained (%):
//!
//! ```text
//!        T     N     R
//! qA   17.2   20   10.9
//! qB   77.0   80   87.8
//! qAB   5.8    0    1.3
//! ```
//!
//! with A = type of network (Crossbar/Omega), B = address pattern
//! (Random/Matrix), and the conclusion *"the address pattern influences
//! most."* Note: the slide's data table lists its ± columns in the order
//! that makes the *first* column the address pattern; we follow the
//! printed responses and label factors so the published percentages come
//! out (see EXPERIMENTS.md).

use perfeval_bench::banner;
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation;

fn main() {
    banner(
        "E8: allocation of variation, interconnection networks",
        "slides 86-93",
    );

    // First (fast-toggling) factor: B = address pattern; second: A =
    // network type.
    let design = TwoLevelDesign::full(&["B", "A"]);
    let responses = [
        ("T (throughput)", vec![0.6041, 0.4220, 0.7922, 0.4717]),
        ("N (90% transit time)", vec![3.0, 5.0, 2.0, 4.0]),
        ("R (response time)", vec![1.655, 2.378, 1.262, 2.190]),
    ];

    println!("factors: A = network type (Crossbar/Omega), B = address pattern (Random/Matrix)\n");
    println!("variation explained (%):");
    println!("        {:>8} {:>8} {:>8}", "T", "N", "R");

    let mut table_pct = Vec::new();
    for effect in [vec!["A"], vec!["B"], vec!["B", "A"]] {
        let mut row = Vec::new();
        for (_, y) in &responses {
            let t = allocate_variation(&design, y).expect("responses match design");
            let frac = t
                .fraction_of(&design, &effect.iter().map(|s| &**s).collect::<Vec<_>>())
                .expect("effect exists");
            row.push(frac * 100.0);
        }
        let label = match effect.len() {
            1 => format!("q{}", effect[0]),
            _ => "qAB".to_owned(),
        };
        println!(
            "{:<7} {:>8.1} {:>8.1} {:>8.1}",
            label, row[0], row[1], row[2]
        );
        table_pct.push(row);
    }

    println!("\npaper:   qA 17.2/20/10.9, qB 77.0/80/87.8, qAB 5.8/0/1.3");

    // Assert the published numbers within rounding.
    let expect = [[17.2, 20.0, 10.9], [77.0, 80.0, 87.8], [5.8, 0.0, 1.3]];
    for (got_row, want_row) in table_pct.iter().zip(&expect) {
        for (got, want) in got_row.iter().zip(want_row) {
            assert!(
                (got - want).abs() < 0.15,
                "got {got:.2}%, paper says {want}%"
            );
        }
    }

    // The conclusion.
    for (name, y) in &responses {
        let t = allocate_variation(&design, y).expect("responses match design");
        assert_eq!(
            t.ranked_effects()[0].0,
            "B",
            "{name}: address pattern must dominate"
        );
    }
    println!("\nconclusion: the address pattern influences most — the chosen");
    println!("patterns are very different. (Reproduced for all three responses.)");
}
