//! E3 — DBG/OPT relative execution time across 22 queries (slides 40–41).
//!
//! The paper's figure plots `DBG/OPT` per TPC-H query, all points between
//! 1.0 and ~2.2 ("compiler optimization ⇒ up to factor 2 performance
//! difference"). Our DBG engine is a row-at-a-time interpreter rather than
//! a `-O0` build of the same binary, so the ratios skew larger on
//! scan-heavy queries; the shape to match is: OPT wins essentially
//! everywhere, by a query-dependent factor of roughly one-to-a-few.
//!
//! Also writes `dbg_opt.csv` + a gnuplot script if `PERFEVAL_OUT` is set.

use minidb::ExecMode;
use perfeval_bench::{
    banner, bench_catalog, bench_props, measure_user_ms, print_environment, session_with_mode,
    threads_knob,
};
use perfeval_harness::{write_csv, GnuplotScript};
use perfeval_stats::Summary;
use workload::queries;

fn main() {
    banner("E3: DBG vs OPT across the query family", "slides 40-41");
    print_environment();
    let props = bench_props();
    let threads = threads_knob(&props);
    if threads > 1 {
        println!("running on {threads} worker threads (-Dthreads={threads})\n");
    }
    let catalog = bench_catalog();
    let family = queries::all_family();

    // Each query measures on its own worker; results come back in query
    // order regardless of thread count. With -Dthreads=1 (the default, and
    // the right choice for publishable timings) this is the serial loop.
    let measured = perfeval_exec::parallel_map(family.len(), threads, |i| {
        let mut dbg = session_with_mode(&catalog, ExecMode::Debug);
        let mut opt = session_with_mode(&catalog, ExecMode::Optimized);
        let d = measure_user_ms(&mut dbg, &family[i], 5);
        let o = measure_user_ms(&mut opt, &family[i], 5);
        (d, o)
    })
    .0;

    let mut ratios = Vec::new();
    let mut rows = Vec::new();
    println!(" q   DBG (ms)   OPT (ms)   DBG/OPT");
    for (i, &(d, o)) in measured.iter().enumerate() {
        let ratio = d / o.max(1e-9);
        println!("{:>2}  {:>9.3}  {:>9.3}  {:>8.2}", i + 1, d, o, ratio);
        ratios.push(ratio);
        rows.push(vec![(i + 1) as f64, ratio]);
    }

    let s = Summary::from_slice(&ratios);
    let geo = s.geometric_mean().expect("positive ratios");
    println!(
        "\nDBG/OPT ratio: min {:.2}, geometric mean {:.2}, max {:.2}",
        s.min(),
        geo,
        s.max()
    );
    println!("paper's figure: ratios between 1.0 and ~2.2 across 22 TPC-H queries");

    // Shape assertions.
    let opt_wins = ratios.iter().filter(|r| **r > 1.0).count();
    assert!(
        opt_wins >= 18,
        "OPT must win on (almost) every query; won {opt_wins}/22"
    );
    assert!(geo > 1.3, "the build factor must be material: {geo:.2}");
    assert!(
        s.max() / s.min().max(0.1) > 1.5,
        "ratio must vary per query"
    );

    if let Ok(dir) = std::env::var("PERFEVAL_OUT") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create PERFEVAL_OUT dir {}: {e}", dir.display()));
        write_csv(&dir.join("dbg_opt.csv"), &["query", "ratio"], &rows).expect("write csv");
        GnuplotScript::new(
            "relative execution time: DBG/OPT",
            "TPC-H-like queries",
            "relative execution time DBG/OPT (ratio)",
            "dbg_opt.eps",
        )
        .single("dbg_opt.csv")
        .paper_size(0.5, 0.5)
        .write_to(&dir.join("dbg_opt.gnu"))
        .expect("write gnuplot");
        println!("wrote {}/dbg_opt.{{csv,gnu}}", dir.display());
    }
}
