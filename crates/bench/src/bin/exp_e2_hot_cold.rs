//! E2 — hot vs. cold × user vs. real time (slides 33–36).
//!
//! Paper's table (Pentium M laptop, TPC-H sf 1, Q1):
//!
//! ```text
//!        cold            hot
//! Q   user   real    user   real
//! 1   2930  13243    2830   3534
//! ```
//!
//! Shape to match: cold-user ≈ hot-user (same CPU work), cold-real ≫
//! cold-user (disk waits), hot-real ≈ hot-user. Our absolute numbers come
//! from the simulated 5400 RPM disk and a much smaller scale factor.
//!
//! This is an **era what-if**: the disk is `memsim`'s model of the
//! tutorial laptop, useful precisely because we cannot ship that
//! hardware. For the measured version of this table — real segment
//! files, a real buffer pool, counted (not modeled) hits and misses —
//! see `exp_e26_hot_cold`.

use memsim::Disk;
use minidb::Session;
use perfeval_bench::{banner, bench_catalog, print_environment};
use perfeval_measure::RunProtocol;
use workload::queries;

fn main() {
    banner("E2: hot vs cold runs", "slides 33-36");
    print_environment();
    println!("protocol (cold): {}", RunProtocol::cold(1).describe());
    println!(
        "protocol (hot) : {}\n",
        RunProtocol::last_of_three_hot().describe()
    );

    let mut session = Session::new(bench_catalog()).with_disk(Disk::laptop_5400rpm(), 100_000);
    let sql = queries::q1();

    // Cold: flush, run once.
    session.flush_caches();
    let cold = session.query(&sql).run().expect("cold run");

    // Hot: measured last of three consecutive runs.
    let _ = session.query(&sql).run().expect("hot warm 1");
    let _ = session.query(&sql).run().expect("hot warm 2");
    let hot = session.query(&sql).run().expect("hot measured");

    println!("        cold               hot        (real = simulated era-disk real time)");
    println!("Q    user    real      user    real    ... time (milliseconds)");
    println!(
        "1  {:>6.0}  {:>6.0}    {:>6.0}  {:>6.0}",
        cold.server_user_ms(),
        cold.sim_server_real_ms(),
        hot.server_user_ms(),
        hot.sim_server_real_ms()
    );

    let cold_gap = cold.sim_server_real_ms() / cold.server_user_ms();
    let hot_gap = hot.sim_server_real_ms() / hot.server_user_ms();
    println!("\ncold real/user = {cold_gap:.1}x   hot real/user = {hot_gap:.2}x");
    println!(
        "paper: cold 13243/2930 = {:.1}x, hot 3534/2830 = {:.2}x",
        13243.0 / 2930.0,
        3534.0 / 2830.0
    );

    assert!(cold_gap > 2.0, "cold real must dwarf cold user");
    assert!(hot_gap < 1.05, "hot real ~ hot user");
    assert_eq!(hot.sim_io_ms, 0.0, "hot run touches no disk");
    let user_ratio = cold.server_user_ms() / hot.server_user_ms();
    // Wide tolerance: this is real wall-clock CPU work on a possibly noisy
    // host; the claim is only that the CPU component is the *same order*
    // hot and cold, unlike the I/O component.
    assert!(
        (0.1..10.0).contains(&user_ratio),
        "CPU work is similar hot and cold (ratio {user_ratio:.2})"
    );
    println!("\nBe aware what you measure!");
}
