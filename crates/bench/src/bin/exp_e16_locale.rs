//! E16 — why you should generate your own graphs (slides 212–215).
//!
//! The war story: `avgs.out` holds average times 13.666 / 15 / 12.3333 /
//! 13; copy-pasting into OpenOffice 2.3.0 under the wrong locale turns
//! them into 13666 / 15 / 123333 / 13, "the graph doesn't look good", and
//! with twenty hand-made graphs the corruption ships. The harness pipeline
//! detects exactly this on read.

use perfeval_bench::banner;
use perfeval_harness::csvio::{parse_csv, validate_locale, CsvError};

fn main() {
    banner("E16: the locale copy-paste corruption", "slides 212-215");

    let original = "run,avg_ms\n1,13.666\n2,15\n3,12.3333\n4,13\n";
    let pasted = "run,avg_ms\n1,13666\n2,15\n3,123333\n4,13\n";

    println!("avgs.out (averages over three runs):");
    print!("{original}");
    println!("\nafter copy-paste into a wrong-locale spreadsheet:");
    print!("{pasted}");

    let clean = parse_csv(original).expect("well-formed csv");
    assert!(validate_locale(&clean).is_ok());
    println!("\noriginal file: validation passes.");

    let corrupt = parse_csv(pasted).expect("well-formed csv");
    match validate_locale(&corrupt) {
        Err(CsvError::LocaleCorruption { column, ratio }) => {
            println!(
                "pasted file:   CORRUPTION DETECTED in column '{column}' \
                 (values ~{ratio:.0}x the rest; 13666/10^3 = 13.666 is no accident)"
            );
            assert_eq!(column, "avg_ms");
            assert!(ratio > 500.0);
        }
        other => panic!("corruption must be detected, got {other:?}"),
    }

    println!("\n\"Hard to figure out when you have to produce by hand 20 such");
    println!("graphs and most of them look OK\" — so don't produce them by hand:");
    println!("the suite writes CSV directly and validates on every read.");
}
