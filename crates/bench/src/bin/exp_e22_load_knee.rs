//! E22 — the load knee: arrival discipline × concurrency × query mix,
//! with honest tail latencies.
//!
//! Everything before this experiment measured one query at a time. E22
//! drives the server at production-like concurrency through
//! `perfeval-load` and asks the questions that only make sense under
//! load:
//!
//! * **Where is the knee?** Offered load is swept by concurrency; the
//!   knee curve shows achieved throughput saturating while the offered
//!   schedule keeps climbing — and what that does to p99/p99.9.
//! * **Does the arrival discipline matter?** The same concurrency run
//!   closed-loop (clients throttle with the server) and open-loop (the
//!   schedule marches on) produces different tails — arrival mode is a
//!   factor in the allocation of variation, not a harness accident.
//! * **Are the answers still right?** Every result is checksummed
//!   against serial in-process execution (bit-identical floats). A
//!   throughput number over wrong answers would be worse than no number.
//!
//! The factorial is a replicated 2³ — arrival (closed → open), clients
//! (4 → 64), mix (light Q6 → heavy Q1) — with allocation of variation on
//! the p99 intended-time latency. A separate 3-level concurrency sweep
//! (4, 16, 64) per arrival mode draws the knee curve, and a fault arm
//! (flapping client, slow client) shows that degraded sessions are
//! contained scenarios, not crashes. Tail confidence intervals follow
//! Kalibera–Jones: one estimate per replicated run, CI over runs.

use std::sync::Arc;

use minidb::{Catalog, Session};
use minidb_net::{LoopbackEndpoint, Server, ServerMode, Transport};
use perfeval_bench::{banner, bench_catalog, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation_replicated;
use perfeval_fault::{FaultAction, FaultRegistry, Trigger};
use perfeval_harness::{Properties, Report, ResultTable};
use perfeval_load::{expected_checksums, Arrival, Dialer, LoadReport, LoadRunner, LoadSpec};
use perfeval_measure::{EnvSpec, SoftwareSpec};
use workload::queries;

/// Runs one load arm against a fresh loopback server (thread-per-
/// connection: workers must cover every concurrent session, plus slack
/// for reconnect churn).
fn run_arm(
    catalog: &Catalog,
    spec: LoadSpec,
    faults: Option<Arc<FaultRegistry>>,
    reps: usize,
) -> LoadReport {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server_catalog = catalog.clone();
    let server = Server::builder()
        .transport(ep)
        .mode(ServerMode::ThreadPerConn {
            workers: spec.clients + 2,
        })
        .serve(move || Session::new(server_catalog.clone()));
    let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
    let mut runner = LoadRunner::new(spec.clone(), dialer)
        .expecting(expected_checksums(catalog.clone(), &spec.mix));
    if let Some(f) = faults {
        runner = runner.with_faults(f);
    }
    let report = runner.run_replicated(reps);
    server.shutdown();
    report
}

fn tail_line(r: &LoadReport) -> String {
    let ci = |i: usize| match r.tail_ci(i, 0.95) {
        Ok(ci) => format!("{:.2} [{:.2},{:.2}]", ci.estimate, ci.lower, ci.upper),
        Err(_) => "n/a".to_owned(),
    };
    format!("p50 {}  p99 {}  p99.9 {}", ci(0), ci(2), ci(3))
}

fn main() {
    banner(
        "E22: the load knee — arrival x concurrency x mix",
        "ROADMAP item 1: production-like concurrency, honest tails",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[
        ("reps", "3"),
        ("requests", "1200"),
        ("think_ms", "1.0"),
        ("rate_per_client", "400"),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let reps = if smoke {
        2
    } else {
        props.get_u64("reps").expect("-Dreps").unwrap_or(3).max(2) as usize
    };
    let requests = if smoke {
        120
    } else {
        props
            .get_u64("requests")
            .expect("-Drequests")
            .unwrap_or(1200)
            .max(100) as usize
    };
    let think_ms = props
        .get_f64("think_ms")
        .expect("-Dthink_ms")
        .unwrap_or(1.0);
    let rate_per_client = props
        .get_f64("rate_per_client")
        .expect("-Drate_per_client")
        .unwrap_or(400.0);

    // --smoke shrinks the catalog so the heavy arms stay CI-friendly even
    // on a single slow core; the knee is about queueing, not table size.
    let catalog = if smoke {
        catalog_at(BENCH_SCALE_FACTOR / 4.0)
    } else {
        bench_catalog()
    };
    let light = vec![queries::q6(), queries::family(4)];
    let heavy = vec![queries::q1()];

    // ---- 2^3 factorial with allocation of variation on p99 ----
    let design = TwoLevelDesign::full(&["arrival", "clients", "mix"]);
    let mut replicates: Vec<Vec<f64>> = Vec::with_capacity(design.run_count());
    let mut sections = Vec::new();
    println!(
        "\nfactorial: {} arms x {reps} reps x {requests} requests\n",
        design.run_count()
    );
    println!("  arm               offered q/s  achieved q/s  tails (ms, 95% CI over runs)");
    for r in 0..design.run_count() {
        let open = design.factor_sign(r, 0) > 0.0;
        let many = design.factor_sign(r, 1) > 0.0;
        let heavy_mix = design.factor_sign(r, 2) > 0.0;
        let clients = if many { 64 } else { 4 };
        let arrival = if open {
            Arrival::OpenPoisson {
                rate_qps: clients as f64 * rate_per_client,
            }
        } else {
            Arrival::Closed { think_ms }
        };
        let name = format!(
            "{}/{clients}/{}",
            if open { "open" } else { "closed" },
            if heavy_mix { "heavy" } else { "light" }
        );
        let spec = LoadSpec::new(&name, clients, requests, arrival).mix(if heavy_mix {
            heavy.clone()
        } else {
            light.clone()
        });
        let report = run_arm(&catalog, spec, None, reps);
        assert!(
            report.is_complete(),
            "arm {name}: {} error(s), {} dropped, {} checksum mismatch(es)",
            report.errors,
            report.dropped_sessions,
            report.checksum_mismatches
        );
        println!(
            "  {name:<17} {:>11}  {:>12.1}  {}",
            report
                .offered_qps
                .map_or("(closed)".to_owned(), |o| format!("{o:.0}")),
            report.achieved_qps(),
            tail_line(&report)
        );
        // Response for the allocation of variation: per-run p99 of the
        // coordinated-omission-safe latency.
        replicates.push(report.runs.iter().map(|run| run.tail_ms[2]).collect());
        sections.push(report.to_section());
    }

    let table =
        allocate_variation_replicated(&design, &replicates).expect("responses match design");
    println!("\nallocation of variation (response = p99 intended-time latency, ms):");
    print!("{}", table.render());
    let ranked = table.ranked_effects();
    println!(
        "largest effect on tail latency: {} ({:.1}% of variation)\n",
        ranked[0].0,
        ranked[0].1 * 100.0
    );

    // ---- knee curve: 3 concurrency levels per arrival mode, heavy mix ----
    // Open-loop offered scales with concurrency; achieved saturates at the
    // server's capacity — the knee. The closed loop self-throttles, so its
    // "offered" column is what it achieved.
    let levels = [4usize, 16, 64];
    let mut knee_table = ResultTable::new("knee: achieved throughput by concurrency", "q/s");
    let mut knee_utilization: Vec<(usize, f64)> = Vec::new();
    println!(
        "knee curve ({} requests, heavy mix, {reps} reps):",
        requests
    );
    println!("  arrival  clients  offered q/s  achieved q/s  p99 ms  p99.9 ms");
    for open in [false, true] {
        for &clients in &levels {
            let arrival = if open {
                Arrival::OpenPoisson {
                    rate_qps: clients as f64 * rate_per_client,
                }
            } else {
                Arrival::Closed { think_ms }
            };
            let name = format!("knee/{}/{clients}", if open { "open" } else { "closed" });
            let spec = LoadSpec::new(&name, clients, requests, arrival).mix(heavy.clone());
            let report = run_arm(&catalog, spec, None, reps);
            assert!(report.is_complete(), "knee arm {name} incomplete");
            let offered = report.offered_qps;
            println!(
                "  {:<7}  {clients:>7}  {:>11}  {:>12.1}  {:>6.2}  {:>8.2}",
                if open { "open" } else { "closed" },
                offered.map_or("(closed)".to_owned(), |o| format!("{o:.0}")),
                report.achieved_qps(),
                report.intended.quantile(0.99).unwrap_or(0.0),
                report.intended.quantile(0.999).unwrap_or(0.0),
            );
            if let Some(o) = offered {
                knee_utilization.push((clients, report.achieved_qps() / o));
            }
            knee_table.row(&name, report.achieved_qps_runs());
            sections.push(report.to_section());
        }
    }

    // The knee, quantitatively: open-loop utilization (achieved/offered)
    // must fall as offered load climbs past capacity.
    let low = knee_utilization.first().expect("open arms ran").1;
    let high = knee_utilization.last().expect("open arms ran").1;
    assert!(
        high < low,
        "knee: utilization should fall with offered load (low {low:.2}, high {high:.2})"
    );
    println!(
        "knee confirmed: open-loop utilization falls {:.0}% -> {:.0}% as offered climbs {}x.\n",
        low * 100.0,
        high * 100.0,
        levels[levels.len() - 1] / levels[0]
    );

    // ---- fault arm: flapping + slow client are contained scenarios ----
    // Client 5 suffers an injected send failure on every request (reconnect
    // + retry each time); client 3's receive path is slowed 15 ms per
    // request (visible in ITS latencies, nobody else's).
    let faults = Arc::new(
        FaultRegistry::new(20080408)
            .armed_always("load.send", Trigger::Key(5), FaultAction::FailIo)
            .armed_always("load.recv", Trigger::Key(3), FaultAction::DelayMs(15.0)),
    );
    let spec = LoadSpec::new(
        "fault/8/light",
        8,
        requests.min(400),
        Arrival::Closed { think_ms },
    )
    .mix(light.clone());
    let report = run_arm(&catalog, spec, Some(Arc::clone(&faults)), reps);
    println!("fault arm (flapping client 5, slow client 3):");
    for line in report.render_lines() {
        println!("  {line}");
    }
    println!("  fired: {:?}", faults.fired_summary());
    assert!(
        report.reconnects > 0,
        "the flapping client must have reconnected"
    );
    assert_eq!(
        report.dropped_sessions, 0,
        "flapping is contained, not fatal"
    );
    assert_eq!(report.errors, 0, "every retried request still succeeded");
    assert_eq!(report.checksum_mismatches, 0, "degraded but still correct");
    sections.push(report.to_section());

    // ---- the report: load arms under the same documentation contract ----
    let mut full = Report::new(
        "E22: the load knee",
        "locate the throughput knee and quantify what arrival discipline, \
         concurrency, and query mix do to tail latency",
    )
    .environment(EnvSpec::capture())
    .software(SoftwareSpec::new(
        "minidb + minidb-net + perfeval-load",
        "0.1.0",
        "this repository",
        "release, OPT engine, loopback transport, thread-per-connection",
    ))
    .protocol(
        "replicated runs per arm (fresh connections each), coordinated-omission-safe \
         recording from the intended arrival schedule, results checksummed against \
         serial execution",
    )
    .config(props)
    .table(knee_table)
    .conclusions(
        "the open-loop tail diverges from the closed-loop tail past the knee; \
         arrival discipline is a design factor, not a harness detail.",
    );
    for s in sections {
        full = full.load(s);
    }
    let missing = full.missing_sections();
    assert!(
        missing.is_empty(),
        "E22's own report fails the documentation contract: {missing:?}"
    );
    println!(
        "report: {} load arm(s), documentation contract satisfied.",
        full.loads.len()
    );

    if smoke {
        println!("\n--smoke: reduced requests/reps; same arms, same assertions.");
    }
    println!(
        "\nconclusion: throughput saturates at the knee while the open-loop tail \
         keeps growing — only intended-time recording shows what users behind \
         the backlog actually wait."
    );
}
