//! E15 — automatically generating graphs with gnuplot (slides 202–205).
//!
//! Reproduces the tutorial's exact workflow: a data file
//! `results-m1-n5.csv` with the slide's numbers, a generated
//! `plot-m1-n5.gnu` command file, and the full suite layout
//! (`data/ res/ graphs/`) with recorded configuration and instructions.

use perfeval_bench::banner;
use perfeval_harness::csvio::read_csv;
use perfeval_harness::suite::{ExperimentSuite, Instructions};
use perfeval_harness::{GnuplotScript, Properties};

fn main() {
    banner("E15: automatic graph generation", "slides 202-205");

    let root = std::env::var("PERFEVAL_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("perfeval_e15"));
    std::fs::create_dir_all(&root)
        .unwrap_or_else(|e| panic!("cannot create PERFEVAL_OUT dir {}: {e}", root.display()));
    let suite = ExperimentSuite::create(&root, "m1-n5").expect("suite layout");

    // 1. The data file, exactly as on the slide.
    let rows = vec![vec![1.0, 1234.0], vec![2.0, 2467.0], vec![3.0, 4623.0]];
    let csv = suite
        .write_result("results-m1-n5.csv", &["scale_factor", "ms"], &rows)
        .expect("write results");
    println!("1. data file {}:", csv.display());
    print!("{}", std::fs::read_to_string(&csv).expect("readable"));

    // 2. The gnuplot command file, exactly the slide's settings.
    let script = GnuplotScript::new(
        "Execution time for various scale factors",
        "Scale factor",
        "Execution time (ms)",
        "results-m1-n5.eps",
    )
    .single("../res/results-m1-n5.csv")
    .paper_size(0.5, 0.5);
    let gnu = suite
        .write_plot("plot-m1-n5.gnu", &script)
        .expect("write plot");
    println!("\n2. command file {}:", gnu.display());
    print!("{}", std::fs::read_to_string(&gnu).expect("readable"));

    // 3. Configuration + instructions recorded next to the results.
    let mut props = Properties::new();
    props.set("m", "1");
    props.set("n", "5");
    props.set("seed", "20080408");
    suite.record_config(&props).expect("record config");
    suite
        .write_instructions(&Instructions {
            title: "m1-n5 scale-factor sweep".into(),
            requirements: "Rust 1.80+, gnuplot (optional, for rendering)".into(),
            extra_setup: String::new(),
            command: "cargo run --release --bin exp_e15_gnuplot".into(),
            output_location: "res/results-m1-n5.csv, graphs/plot-m1-n5.gnu".into(),
            duration: "< 1 s".into(),
        })
        .expect("write instructions");
    println!("\n3. call: gnuplot graphs/plot-m1-n5.gnu  (config + README recorded)");

    // Verify the whole artifact reads back cleanly.
    let table = read_csv(&csv).expect("valid csv");
    assert_eq!(table.rows, rows);
    let gnu_text = std::fs::read_to_string(&gnu).expect("readable");
    assert!(gnu_text.contains("set ylabel \"Execution time (ms)\""));
    assert!(gnu_text.contains("set size ratio 0 0.75,0.5"));
    assert!(root.join("m1-n5/experiment.conf").exists());
    assert!(root.join("m1-n5/README.md").exists());
    println!("\nartifact verified: CSV valid, labels carry units, size rule applied.");
}
