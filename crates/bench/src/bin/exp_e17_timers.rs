//! E17 — metrics: how to measure? (slides 27–29).
//!
//! The paper's timer catalogue: `/usr/bin/time` (whole process, coarse),
//! `gettimeofday()` (µs wall clock), `timeGetTime()` (ms, with a default
//! resolution "as low as 10 milliseconds"), and the DBMS's own phase
//! timers (`mclient -t`: `Trans/Shred/Query/Print`). We measure one query
//! with all of them side by side and show the 10 ms timer erasing a
//! fast query entirely.

use minidb::Session;
use perfeval_bench::{banner, bench_catalog, print_environment};
use perfeval_measure::{Clock, CpuClock, ManualClock, QuantizedClock, WallClock};
use workload::queries;

fn main() {
    banner("E17: know your timer", "slides 27-29");
    print_environment();

    let mut session = Session::new(bench_catalog());
    let sql = queries::q6();
    session.query(&sql).run().expect("warmup");

    // The timer catalogue.
    let wall = WallClock::new();
    let cpu = CpuClock::new();
    println!("available timers:");
    for (name, desc, res) in [
        ("wall (gettimeofday)", wall.describe(), wall.resolution_ns()),
        (
            "cpu (/usr/bin/time user)",
            cpu.describe(),
            cpu.resolution_ns(),
        ),
    ] {
        println!("  {name:<26} {desc}  [resolution {res} ns]");
    }
    println!("  timeGetTime (simulated)    quantized clock, 10 ms resolution\n");

    // Measure the same query with the wall clock.
    let (result, wall_ns) = wall.time(|| session.query(&sql).run().expect("measured run"));
    println!("wall clock: {:.3} ms", wall_ns as f64 / 1e6);

    // The engine's own phase timers (mclient -t style) — always prefer the
    // tested software's instrumentation when it exists.
    println!("engine phase breakdown:");
    print!("{}", result.phases.render());

    // The 10 ms timer pitfall, deterministically: replay the measured
    // duration through a simulated coarse clock.
    let manual = ManualClock::new();
    let coarse = QuantizedClock::new(manual.clone(), 10_000_000);
    let before = coarse.now_ns();
    manual.advance_ns(wall_ns);
    let coarse_reading = coarse.now_ns() - before;
    println!(
        "\nthe same {:.3} ms query read through a 10 ms-resolution timer: {} ms",
        wall_ns as f64 / 1e6,
        coarse_reading / 1_000_000
    );
    if wall_ns < 10_000_000 {
        assert_eq!(
            coarse_reading, 0,
            "sub-10ms query invisible to coarse timer"
        );
        println!("-> the query is invisible. Resolution matters.");
    }

    // Repeat 50 times through the coarse timer: quantization distorts the
    // distribution, not just individual readings.
    let mut coarse_total = 0u64;
    let mut fine_total = 0u64;
    for _ in 0..50 {
        let (_, ns) = wall.time(|| session.query(&sql).run().expect("rep"));
        fine_total += ns;
        let t0 = coarse.now_ns();
        manual.advance_ns(ns);
        coarse_total += coarse.now_ns() - t0;
    }
    println!(
        "\n50 replications: fine timer total {:.1} ms, 10 ms timer total {} ms",
        fine_total as f64 / 1e6,
        coarse_total / 1_000_000
    );
    let err = (coarse_total as f64 - fine_total as f64).abs() / fine_total as f64;
    println!("quantization error: {:.0}%", err * 100.0);
    println!("\nuse timings provided by the tested software; know what you measure,");
    println!("and know the resolution of whatever measures it.");
}
