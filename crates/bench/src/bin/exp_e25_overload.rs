//! E25 — overload protection: admission control, query deadlines, and
//! client backoff under saturation.
//!
//! E22 located the knee and showed what an open-loop schedule does to the
//! tail *when the server accepts everything*. E25 asks the robustness
//! question that follows: what should a saturated server **do**? The
//! overload-protection answer — shed excess work fast with a typed
//! `Rejected` frame, enforce per-query deadlines by cooperative
//! cancellation, and let clients back off and give up instead of piling
//! on — is evaluated as a replicated 2³ factorial:
//!
//! * **rate** — offered load below the knee (0.5×) vs. past it (4×),
//! * **shedding** — admit-all vs. a bounded in-flight budget plus client
//!   etiquette (seeded jittered backoff, bounded retries, breaker),
//! * **deadline** — none vs. a tight per-query deadline in the frame
//!   header, enforced server-side by cooperative cancellation.
//!
//! Saturation is *injected*, not hoped for: every `slow_every`-th
//! statement of each server session stalls `slow_ms` at the
//! `minidb.execute` failpoint (an uninterruptible stall, so a deadline's
//! win is the typed signal and the trimmed completion tail — the slot
//! time is only reclaimed once the stall ends). That pins the knee to a
//! known place on any machine, so the rate axis means the same thing in
//! CI as on a workstation.
//!
//! The claims, each with a Kalibera–Jones CI over replicated runs:
//!
//! * **Collapse is real, protection prevents it.** Past the knee with
//!   everything off (admit-all, no deadline), the coordinated-omission-
//!   safe p99.9 grows with the backlog. With protection fully on —
//!   budget + deadline + etiquette — it stays bounded: the budget sheds
//!   excess concurrency, and the intended-anchored deadline sheds stale
//!   requests a backlogged client would otherwise complete late. The
//!   paired per-run difference (off − on) excludes zero at 95%. The two
//!   levers are deliberately *both* needed: admission alone still lets a
//!   backlogged client win the admission race with a stale request, which
//!   is exactly what the 2³ decomposition shows.
//! * **Shedding sustains goodput.** The protected arm's achieved
//!   throughput past the knee stays within its budget's capacity — its
//!   CI excludes the collapse region — while its p99.9 stays bounded.
//! * **Deadlines trim the completion tail.** With the tight deadline,
//!   stalled statements come back `DeadlineExceeded` instead of late;
//!   the naive p99.9 of what *did* complete drops below the stall.
//! * **Nothing is silently dropped.** Every designed request of every
//!   arm is accounted: completed + errors + give-ups = requests.
//!
//! This binary drives the thread-per-connection engine, whose global
//! in-flight gauge gives the cleanest budget semantics for a saturation
//! sweep; the sharded core's run-queue admission and both engines'
//! cancellation paths are pinned by `crates/net/tests/overload.rs` and
//! the chaos CI job (which replays `--smoke` across fault seeds).

use std::sync::Arc;

use minidb::{Catalog, Session};
use minidb_net::{Admission, BackoffPolicy, LoopbackEndpoint, Server, ServerMode, Transport};
use perfeval_bench::{banner, bench_catalog, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation_replicated;
use perfeval_fault::{FaultAction, FaultRegistry, Trigger};
use perfeval_harness::{Properties, Report, ResultTable};
use perfeval_load::{expected_checksums, Arrival, Dialer, LoadReport, LoadRunner, LoadSpec};
use perfeval_measure::{EnvSpec, SoftwareSpec};
use perfeval_stats::mean_confidence_interval;
use workload::queries;

/// Runs one load arm against a fresh loopback server with the given
/// admission policy and per-session engine faults.
fn run_arm(
    catalog: &Catalog,
    spec: LoadSpec,
    admission: Admission,
    session_faults: Option<Arc<FaultRegistry>>,
    server_faults: Option<Arc<FaultRegistry>>,
    reps: usize,
) -> LoadReport {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server_catalog = catalog.clone();
    let mut builder = Server::builder()
        .transport(ep)
        .mode(ServerMode::ThreadPerConn {
            workers: spec.clients + 2,
        })
        .admission(admission);
    if let Some(f) = server_faults {
        builder = builder.with_faults(f);
    }
    let server = builder.serve(move || {
        let s = Session::new(server_catalog.clone());
        match &session_faults {
            Some(f) => s.with_faults(Arc::clone(f)),
            None => s,
        }
    });
    let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
    let runner = LoadRunner::new(spec.clone(), dialer)
        .expecting(expected_checksums(catalog.clone(), &spec.mix));
    let report = runner.run_replicated(reps);
    server.shutdown();
    report
}

fn ci_str(data: &[f64]) -> String {
    match mean_confidence_interval(data, 0.95) {
        Ok(ci) => format!("{:.1} [{:.1},{:.1}]", ci.estimate, ci.lower, ci.upper),
        Err(_) => "n/a".to_owned(),
    }
}

fn p999_runs(r: &LoadReport) -> Vec<f64> {
    r.runs.iter().map(|run| run.tail_ms[3]).collect()
}

fn main() {
    banner(
        "E25: overload protection — shedding x deadlines x backoff",
        "robustness past the knee: shed fast, cancel cooperatively, back off",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[
        ("reps", "3"),
        ("requests", "1200"),
        ("clients", "16"),
        ("slow_every", "4"),
        ("slow_ms", "30"),
        ("deadline_ms", "10"),
        ("inflight", "8"),
        ("faultseed", "20080408"),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let reps = props.get_u64("reps").expect("-Dreps").unwrap_or(3).max(2) as usize;
    let requests = if smoke {
        480
    } else {
        props
            .get_u64("requests")
            .expect("-Drequests")
            .unwrap_or(1200)
            .max(200) as usize
    };
    let clients = props
        .get_u64("clients")
        .expect("-Dclients")
        .unwrap_or(16)
        .max(2) as usize;
    let slow_every = props
        .get_u64("slow_every")
        .expect("-Dslow_every")
        .unwrap_or(4)
        .max(2);
    let slow_ms = props.get_f64("slow_ms").expect("-Dslow_ms").unwrap_or(30.0);
    let deadline_ms = props
        .get_u64("deadline_ms")
        .expect("-Ddeadline_ms")
        .unwrap_or(10)
        .max(1) as u32;
    let inflight = props
        .get_u64("inflight")
        .expect("-Dinflight")
        .unwrap_or(8)
        .max(1) as usize;
    let faultseed = props
        .get_u64("faultseed")
        .expect("-Dfaultseed")
        .unwrap_or(20080408);

    // Saturation is injected: the knee sits at a *designed* service time,
    // not at whatever this machine happens to sustain today.
    let catalog = if smoke {
        catalog_at(BENCH_SCALE_FACTOR / 4.0)
    } else {
        bench_catalog()
    };
    let mix = vec![queries::q6()];
    let session_faults = Arc::new(FaultRegistry::new(faultseed).armed_always(
        "minidb.execute",
        Trigger::KeyModulo {
            modulus: slow_every,
            remainder: slow_every - 1,
        },
        FaultAction::DelayMs(slow_ms),
    ));
    // Mean designed service time, ms: the injected stall amortized over
    // the mix (the light query itself is ~1 ms at this scale).
    let mean_service_ms = slow_ms / slow_every as f64 + 1.0;
    let capacity_qps = clients as f64 * 1000.0 / mean_service_ms;
    let below_qps = 0.5 * capacity_qps;
    let past_qps = 4.0 * capacity_qps;
    println!(
        "\ndesigned knee: {clients} clients x {mean_service_ms:.1} ms mean service \
         ~ {capacity_qps:.0} q/s; rates {below_qps:.0} (below) / {past_qps:.0} (past)\n"
    );

    // ---- the 2^3: rate x shedding x deadline, `reps` replicates each ----
    let design = TwoLevelDesign::full(&["rate", "shedding", "deadline"]);
    let mut replicates: Vec<Vec<f64>> = Vec::with_capacity(design.run_count());
    let mut sections = Vec::new();
    let mut arms: Vec<LoadReport> = Vec::with_capacity(design.run_count());
    let mut arm_index = std::collections::HashMap::new();
    let mut goodput_table = ResultTable::new("goodput by arm (completed q/s)", "q/s");
    println!(
        "  arm                    offered q/s  goodput q/s  p99.9 ms (intended)  rejects  give-ups"
    );
    for r in 0..design.run_count() {
        let past = design.factor_sign(r, 0) > 0.0;
        let shed = design.factor_sign(r, 1) > 0.0;
        let tight = design.factor_sign(r, 2) > 0.0;
        let rate = if past { past_qps } else { below_qps };
        let name = format!(
            "{}/{}/{}",
            if past { "past" } else { "below" },
            if shed { "shed" } else { "admit-all" },
            if tight { "deadline" } else { "none" }
        );
        let mut spec = LoadSpec::new(
            &name,
            clients,
            requests,
            Arrival::OpenPoisson { rate_qps: rate },
        )
        .mix(mix.clone())
        .seed(0x4532_5e25 ^ faultseed);
        if tight {
            spec = spec.deadline_ms(deadline_ms);
        }
        let admission = if shed {
            // Client etiquette rides with the server budget. It must be
            // *cheap*: a backlogged client clears a given-up request in
            // ~1 ms of backoff (vs. ~8.5 ms of service), and once the
            // breaker opens the whole backlog is skipped instantly — the
            // mechanism that keeps completed requests on schedule.
            spec = spec
                .retry(
                    BackoffPolicy::retries(1)
                        .with_base_ms(0.5)
                        .with_cap_ms(2.0)
                        .with_seed(faultseed),
                )
                .breaker(4, 8.0);
            Admission::default()
                .max_inflight(inflight)
                .retry_after_ms(2)
        } else {
            Admission::default()
        };
        let report = run_arm(
            &catalog,
            spec,
            admission,
            Some(Arc::clone(&session_faults)),
            None,
            reps,
        );
        // The etiquette invariant: every designed request is accounted,
        // in every arm — completed, errored, or deliberately given up.
        assert_eq!(report.dropped_sessions, 0, "arm {name}: no session drops");
        assert_eq!(
            report.requests + report.errors + report.give_ups,
            (requests * reps) as u64,
            "arm {name}: every designed request accounted"
        );
        assert_eq!(report.checksum_mismatches, 0, "arm {name}: still correct");
        println!(
            "  {name:<22} {rate:>11.0}  {:>11.1}  {:>19}  {:>7}  {:>8}",
            report.achieved_qps(),
            ci_str(&p999_runs(&report)),
            report.rejects,
            report.give_ups,
        );
        replicates.push(p999_runs(&report));
        goodput_table.row(&name, report.achieved_qps_runs());
        sections.push(report.to_section());
        arm_index.insert((past, shed, tight), r);
        arms.push(report);
    }
    let arm = |past: bool, shed: bool, tight: bool| -> &LoadReport {
        &arms[arm_index[&(past, shed, tight)]]
    };

    // ---- claim 0: the baseline arm is clean ----
    let baseline = arm(false, false, false);
    assert!(
        baseline.is_complete(),
        "below-knee admit-all arm must complete: {} error(s), {} give-up(s)",
        baseline.errors,
        baseline.give_ups
    );

    // ---- claim 1: collapse is real, and protection prevents it ----
    // Paired per-run difference of intended-time p99.9 past the knee:
    // protection fully off (admit-all, no deadline) minus fully on
    // (budget + deadline + etiquette). KJ CI over replicates must
    // exclude zero on the positive side. Both levers matter: the budget
    // sheds excess concurrency, the intended-anchored deadline sheds the
    // stale requests a backlogged client would otherwise complete late.
    let off = p999_runs(arm(true, false, false));
    let on = p999_runs(arm(true, true, true));
    let diffs: Vec<f64> = off.iter().zip(&on).map(|(o, s)| o - s).collect();
    let ci = mean_confidence_interval(&diffs, 0.95).expect("reps >= 2");
    println!(
        "\npast-knee p99.9 (unprotected minus protected): {:.1} ms [{:.1}, {:.1}] over {reps} paired runs",
        ci.estimate, ci.lower, ci.upper
    );
    assert!(
        ci.lower > 0.0,
        "full protection must beat admit-all on the past-knee tail with 95% confidence \
         (CI [{:.1}, {:.1}] includes zero)",
        ci.lower,
        ci.upper
    );
    // And the protected tail is bounded in absolute terms: nothing
    // completes later than deadline + retry backoff + the uninterruptible
    // stall — generously doubled for scheduling noise.
    let bound_ms = 2.0 * (f64::from(deadline_ms) + 4.0 + slow_ms);
    let on_ci = mean_confidence_interval(&on, 0.95).expect("reps >= 2");
    assert!(
        on_ci.upper < bound_ms,
        "protected p99.9 (CI upper {:.1} ms) must stay under the designed bound {bound_ms:.1} ms",
        on_ci.upper
    );

    // ---- claim 2: shedding sustains goodput past the knee ----
    // The protected arm's goodput CI must exclude the collapse region:
    // at least half of what the same policy achieves below the knee.
    let shed_below = arm(false, true, true).achieved_qps();
    let shed_past = mean_confidence_interval(&arm(true, true, true).achieved_qps_runs(), 0.95)
        .expect("reps >= 2");
    println!(
        "shed goodput: below-knee {shed_below:.0} q/s, past-knee {:.0} q/s [{:.0}, {:.0}]",
        shed_past.estimate, shed_past.lower, shed_past.upper
    );
    assert!(
        shed_past.lower > 0.5 * shed_below,
        "past-knee shed goodput (CI lower {:.0}) must sustain >= half the \
         below-knee goodput ({shed_below:.0})",
        shed_past.lower
    );

    // ---- claim 3: deadlines trim the completion tail ----
    // Past the knee, the tight-deadline arm's *completed* requests must
    // not include the injected stall: its naive p99.9 sits well below
    // `slow_ms`, while the no-deadline arm's sits at or above it.
    for shed in [false, true] {
        let none = arm(true, shed, false).naive.quantile(0.999).unwrap_or(0.0);
        let tight_arm = arm(true, shed, true);
        let tight = tight_arm.naive.quantile(0.999).unwrap_or(0.0);
        println!(
            "deadline trim ({}): naive p99.9 {none:.1} ms -> {tight:.1} ms, {} deadline reject(s)",
            if shed { "shed" } else { "admit-all" },
            tight_arm.rejects
        );
        assert!(
            tight_arm.rejects > 0,
            "the tight deadline must shed the injected stalls"
        );
        assert!(
            tight < none * 0.7,
            "deadline must trim the completion tail ({tight:.1} ms vs {none:.1} ms)"
        );
    }

    // ---- where does the tail variation come from? ----
    let table =
        allocate_variation_replicated(&design, &replicates).expect("responses match design");
    println!("\nallocation of variation (response = p99.9 intended-time latency, ms):");
    print!("{}", table.render());
    let ranked = table.ranked_effects();
    println!(
        "largest effect on the tail: {} ({:.1}% of variation)\n",
        ranked[0].0,
        ranked[0].1 * 100.0
    );

    // ---- the breaker, deterministically ----
    // A server whose admission verdict is forced to reject everything
    // (`net.admit` failpoint): the client's breaker must open, requests
    // must become give-ups — not errors, not hangs — and every one of
    // them must still be accounted.
    let server_faults = Arc::new(FaultRegistry::new(faultseed).armed_always(
        "net.admit",
        Trigger::Always,
        FaultAction::FailIo,
    ));
    let spec = LoadSpec::new(
        "breaker/reject-all",
        4,
        requests.min(80),
        Arrival::Closed { think_ms: 0.2 },
    )
    .mix(mix.clone())
    .seed(faultseed)
    .retry(
        BackoffPolicy::retries(2)
            .with_base_ms(1.0)
            .with_cap_ms(4.0)
            .with_seed(faultseed),
    )
    .breaker(3, 10.0);
    let report = run_arm(
        &catalog,
        spec,
        Admission::default().retry_after_ms(1),
        None,
        Some(server_faults),
        reps,
    );
    println!("breaker arm (every admission verdict forced to reject):");
    for line in report.render_lines() {
        println!("  {line}");
    }
    assert_eq!(report.requests, 0, "nothing is admitted");
    assert_eq!(
        report.give_ups,
        (requests.min(80) * reps) as u64,
        "every designed request gives up cleanly"
    );
    assert!(report.rejects > 0, "rejections observed");
    assert!(report.breaker_opens > 0, "the breaker opened");
    assert_eq!(report.dropped_sessions, 0, "rejection never kills sessions");
    sections.push(report.to_section());

    // ---- the report: same documentation contract as every experiment ----
    let mut full = Report::new(
        "E25: overload protection",
        "show that admission control, query deadlines, and client backoff \
         turn saturation from a latency collapse into bounded, typed shedding",
    )
    .environment(EnvSpec::capture())
    .software(SoftwareSpec::new(
        "minidb + minidb-net + perfeval-load",
        "0.1.0",
        "this repository",
        "release, OPT engine, loopback transport, thread-per-connection, \
         injected execute stalls pin the knee",
    ))
    .protocol(
        "replicated 2^3 factorial (rate x shedding x deadline), open-loop \
         Poisson arrivals, coordinated-omission-safe recording, paired \
         Kalibera-Jones CIs over runs, every request accounted",
    )
    .config(props)
    .table(goodput_table)
    .conclusions(
        "past the knee, admit-all collapses the intended-time tail while the \
         shed arm holds goodput and a bounded p99.9; tight deadlines convert \
         stalled statements into typed DeadlineExceeded rejections.",
    );
    for s in sections {
        full = full.load(s);
    }
    let missing = full.missing_sections();
    assert!(
        missing.is_empty(),
        "E25's own report fails the documentation contract: {missing:?}"
    );
    println!(
        "report: {} load arm(s), documentation contract satisfied.",
        full.loads.len()
    );

    if smoke {
        println!("\n--smoke: reduced requests; same arms, same assertions.");
    }
    println!(
        "\nconclusion: a saturated server that sheds fast, cancels at the \
         deadline, and faces clients that back off keeps its goodput and its \
         tail; one that accepts everything keeps neither."
    );
}
