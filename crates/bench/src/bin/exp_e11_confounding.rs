//! E11 — comparison of two 2^(4−1) designs (slides 104–109).
//!
//! Paper's listing for `D = ABC`:
//! `AD = BC, BD = AC, AB = CD, A = BCD, B = ACD, C = ABD, I = ABCD`
//! versus for `D = AB`:
//! `A = BD, B = AD, D = AB, I = ABD, AC = BCD, BC = ACD, CD = ABC,
//! C = ABCD` — and the verdict: *"D = ABC is preferred"* by the
//! sparsity-of-effects principle.

use perfeval_bench::banner;
use perfeval_core::alias::{AliasStructure, Generator};
use perfeval_core::twolevel::TwoLevelDesign;

fn structure(generator: &str) -> AliasStructure {
    let design = TwoLevelDesign::fractional(
        &["A", "B", "C", "D"],
        &[Generator::parse(generator).expect("valid generator")],
    )
    .expect("valid 2^(4-1)");
    AliasStructure::of(&design).expect("alias structure")
}

fn mask(s: &str) -> u32 {
    s.chars().fold(0, |m, c| m | (1 << (c as u8 - b'A')))
}

fn main() {
    banner("E11: D=ABC vs D=AB confounding", "slides 104-109");

    let abc = structure("D=ABC");
    let ab = structure("D=AB");

    println!("confoundings of D = ABC:");
    print!("{}", abc.render());
    println!("\nconfoundings of D = AB:");
    print!("{}", ab.render());

    // The slide's specific identities.
    for (a, b) in [
        ("AD", "BC"),
        ("BD", "AC"),
        ("AB", "CD"),
        ("A", "BCD"),
        ("B", "ACD"),
        ("C", "ABD"),
    ] {
        assert!(abc.are_aliased(mask(a), mask(b)), "D=ABC: {a} = {b}");
    }
    assert!(abc.are_aliased(0, mask("ABCD")), "D=ABC: I = ABCD");
    for (a, b) in [
        ("A", "BD"),
        ("B", "AD"),
        ("D", "AB"),
        ("AC", "BCD"),
        ("BC", "ACD"),
        ("CD", "ABC"),
    ] {
        assert!(ab.are_aliased(mask(a), mask(b)), "D=AB: {a} = {b}");
    }
    assert!(ab.are_aliased(0, mask("ABD")), "D=AB: I = ABD");
    assert!(ab.are_aliased(mask("C"), mask("ABCD")), "D=AB: C = ABCD");

    println!(
        "\nresolution: D=ABC is {:?}, D=AB is {:?}",
        abc.resolution().expect("fractional"),
        ab.resolution().expect("fractional")
    );
    assert_eq!(abc.resolution(), Some(4));
    assert_eq!(ab.resolution(), Some(3));
    assert_eq!(
        abc.compare_preference(&ab),
        std::cmp::Ordering::Greater,
        "sparsity of effects prefers D=ABC"
    );

    println!("\nD = ABC is preferred: it confounds the mean with the 4th-order");
    println!("interaction and main effects with 3rd-order interactions, which the");
    println!("sparsity-of-effects principle says are the smallest.");
}
