//! Supplementary experiment — the scale-factor sweep behind the slide-202
//! gnuplot example ("Execution time for various scale factors"), run for
//! real: Q1 and Q6 across five scale factors, with a power-law fit that
//! classifies the empirical scalability, and the full suite artifact
//! (CSV + gnuplot + config + README) written when `PERFEVAL_OUT` is set.

use minidb::Session;
use perfeval_bench::{
    banner, bench_props, catalog_at, measure_user_ms, print_environment, threads_knob,
};
use perfeval_harness::suite::{ExperimentSuite, Instructions};
use perfeval_harness::{AsciiChart, GnuplotScript, Properties};
use perfeval_stats::regression::power_law_fit;
use workload::queries;

fn main() {
    banner(
        "scale-up sweep: execution time vs scale factor",
        "slides 200-205",
    );
    print_environment();
    let props = bench_props();
    let threads = threads_knob(&props);
    if threads > 1 {
        println!("running on {threads} worker threads (-Dthreads={threads})\n");
    }

    let sfs = [0.002, 0.004, 0.008, 0.016, 0.032];
    // Only the *untimed* work parallelizes: catalog generation is
    // deterministic (splittable dbgen streams) and lands in sfs order at
    // any thread count. The timed runs stay serial on purpose — concurrent
    // measurements compete for cores, and the wall-clock inflation would
    // make the thread count an unrecorded factor in the scale-up curve.
    let catalogs = perfeval_exec::parallel_map(sfs.len(), threads, |i| catalog_at(sfs[i])).0;
    let mut q1_points = Vec::new();
    let mut q6_points = Vec::new();
    println!("   sf      Q1 (ms)    Q6 (ms)");
    for (&sf, catalog) in sfs.iter().zip(catalogs) {
        let mut session = Session::new(catalog);
        let q1 = measure_user_ms(&mut session, &queries::q1(), 3);
        let q6 = measure_user_ms(&mut session, &queries::q6(), 3);
        println!("{sf:>6.3}  {q1:>9.3}  {q6:>9.3}");
        q1_points.push((sf, q1));
        q6_points.push((sf, q6));
    }

    // Power-law fits: time = a * sf^b; b ~ 1 is linear scale-up.
    for (name, points) in [("Q1", &q1_points), ("Q6", &q6_points)] {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let (a, b, r2) = power_law_fit(&xs, &ys).expect("positive data");
        println!(
            "\n{name}: time ≈ {a:.2}·sf^{b:.2}  (R²={r2:.3}) — {}",
            if (0.7..1.3).contains(&b) {
                "linear scale-up"
            } else if b < 0.7 {
                "sub-linear (fixed overheads amortize)"
            } else {
                "super-linear (trouble at scale)"
            }
        );
        assert!(
            (0.5..1.6).contains(&b),
            "{name}: scan-bound queries must scale roughly linearly, got exponent {b:.2}"
        );
    }

    let chart = AsciiChart::new(
        "execution time for various scale factors",
        "scale factor",
        "server time (ms)",
    )
    .series("Q1", q1_points.clone())
    .series("Q6", q6_points.clone());
    println!("\n{}", chart.render());

    if let Ok(dir) = std::env::var("PERFEVAL_OUT") {
        let root = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&root)
            .unwrap_or_else(|e| panic!("cannot create PERFEVAL_OUT dir {}: {e}", root.display()));
        let suite = ExperimentSuite::create(&root, "scaleup").expect("suite");
        let rows: Vec<Vec<f64>> = q1_points
            .iter()
            .zip(&q6_points)
            .map(|(&(sf, q1), &(_, q6))| vec![sf, q1, q6])
            .collect();
        suite
            .write_result("scaleup.csv", &["sf", "q1_ms", "q6_ms"], &rows)
            .expect("csv");
        suite
            .write_plot(
                "scaleup.gnu",
                &GnuplotScript::new(
                    "Execution time for various scale factors",
                    "Scale factor",
                    "Execution time (ms)",
                    "scaleup.eps",
                )
                .series(perfeval_harness::gnuplot::Series {
                    data_file: "../res/scaleup.csv".into(),
                    x_col: 1,
                    y_col: 2,
                    title: "Q1".into(),
                })
                .series(perfeval_harness::gnuplot::Series {
                    data_file: "../res/scaleup.csv".into(),
                    x_col: 1,
                    y_col: 3,
                    title: "Q6".into(),
                })
                .paper_size(0.5, 0.5),
            )
            .expect("plot");
        let mut conf = Properties::new();
        conf.set("seed", &perfeval_bench::BENCH_SEED.to_string());
        conf.set("sfs", "0.002,0.004,0.008,0.016,0.032");
        conf.set("replications", "3");
        conf.set("threads", &threads.to_string());
        suite.record_config(&conf).expect("config");
        suite
            .write_instructions(&Instructions {
                title: "scale-up sweep".into(),
                requirements: "Rust 1.80+".into(),
                extra_setup: String::new(),
                command:
                    "PERFEVAL_OUT=out cargo run --release -p perfeval-bench --bin exp_scaleup_sweep"
                        .into(),
                output_location: "res/scaleup.csv, graphs/scaleup.gnu".into(),
                duration: "~1 min".into(),
            })
            .expect("instructions");
        println!("wrote suite under {}/scaleup", root.display());
    }
}
