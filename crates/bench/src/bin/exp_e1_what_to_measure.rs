//! E1 — "Metrics: What to measure?" (slides 23–26).
//!
//! Reproduces the tutorial's first table: TPC-H Q1 (small result) and Q16
//! (large result), timed server-side (user/real) and client-side (real)
//! with the result going to a file vs. a terminal. The paper's shape to
//! match: for the small-result query the four columns are close; for the
//! large-result query client-side terminal time far exceeds everything
//! else, because *printing* dominates.

use minidb::{FileSink, NullSink, Session, TerminalSink};
use perfeval_bench::{banner, bench_catalog, print_environment};
use workload::queries;

struct Row {
    query: &'static str,
    server_user: f64,
    server_real: f64,
    client_file: f64,
    client_term: f64,
    result_kb: f64,
}

fn measure(session: &mut Session, name: &'static str, sql: &str) -> Row {
    // Warm up.
    session.query(sql).run().expect("warmup");
    // Server-side: null sink.
    let server = session
        .query(sql)
        .sink(&mut NullSink)
        .run()
        .expect("server run");
    // Client-side, file sink.
    let tmp = std::env::temp_dir().join(format!("perfeval_e1_{name}.tsv"));
    let mut file_sink = FileSink::new(&tmp);
    let to_file = session
        .query(sql)
        .sink(&mut file_sink)
        .run()
        .expect("file run");
    // Client-side, terminal sink.
    let mut term_sink = TerminalSink::new();
    let to_term = session
        .query(sql)
        .sink(&mut term_sink)
        .run()
        .expect("terminal run");
    std::fs::remove_file(&tmp).ok();
    Row {
        query: name,
        server_user: server.server_user_ms(),
        server_real: server.server_real_ms(),
        client_file: to_file.sim_client_real_ms(),
        client_term: to_term.sim_client_real_ms(),
        result_kb: to_term.result_bytes as f64 / 1024.0,
    }
}

fn main() {
    banner("E1: what do you measure?", "slides 23-26");
    print_environment();
    let catalog = bench_catalog();
    let mut session = Session::new(catalog);

    let rows = vec![
        measure(&mut session, "Q1", &queries::q1()),
        measure(&mut session, "Q16", &queries::q16()),
    ];

    println!("            server              client              result");
    println!("      user      real      real(file) real(term)    size");
    println!("Q     file      file      file       terminal      ... output went to");
    for r in &rows {
        println!(
            "{:<4} {:>8.1} {:>9.1} {:>10.1} {:>10.1}   {:>8.1} KB",
            r.query, r.server_user, r.server_real, r.client_file, r.client_term, r.result_kb
        );
    }
    println!("\n(times in milliseconds; 'term' includes simulated terminal rendering)");
    println!("(for the *measured* client-side decomposition over a real wire, see E21)");

    // The paper's qualitative claims, asserted.
    let q1 = &rows[0];
    let q16 = &rows[1];
    assert!(
        q16.result_kb > 20.0 * q1.result_kb,
        "Q16's result must dwarf Q1's"
    );
    assert!(
        q16.client_term > 1.5 * q16.server_user,
        "terminal printing must dominate Q16's client time \
         (term {:.1} vs user {:.1})",
        q16.client_term,
        q16.server_user
    );
    let q1_spread = q1.client_term / q1.server_user;
    let q16_spread = q16.client_term / q16.server_user;
    assert!(
        q16_spread > q1_spread,
        "output destination matters more for the big result"
    );
    println!("\nBe aware what you measure!  (Q16 terminal/user spread: {q16_spread:.1}x, Q1: {q1_spread:.1}x)");
}
