//! E9 — the three-level fractional factorial design (slide 67).
//!
//! Paper's table: four factors (CPU, memory, workload type, educational
//! level), 3 levels each except the CPU's 3 — covered in 9 experiments via
//! a Latin-square assignment instead of the full 81.

use perfeval_bench::banner;
use perfeval_core::design::Design;
use perfeval_core::factor::Factor;
use perfeval_core::mistakes::audit_design;

fn main() {
    banner("E9: fractional factorial via Latin squares", "slide 67");

    let design = Design::latin_square_fraction(vec![
        Factor::categorical("CPU", &["68000", "Z80", "8086"]),
        Factor::categorical("Memory", &["512K", "2M", "8M"]),
        Factor::categorical("Workload", &["Managerial", "Scientific", "Secretarial"]),
        Factor::categorical("Education", &["High school", "Postgraduate", "College"]),
    ]);

    print!("{}", design.render());

    let full: usize = design.factors().iter().map(|f| f.level_count()).product();
    println!(
        "\n{} experiments instead of the full {} — less experiments,",
        design.run_count(),
        full
    );
    println!("some information loss (interactions!). Maybe they were negligible?");

    // Structural claims.
    assert_eq!(design.run_count(), 9);
    assert!(design.is_balanced(), "every level tested equally often");
    for i in 0..4 {
        for j in (i + 1)..4 {
            assert!(
                design.covers_pairs(i, j),
                "factors {i} and {j} must co-occur on all level pairs"
            );
        }
    }
    println!("\nbalance: every level of every factor appears exactly 3 times;");
    println!("pairwise coverage: every level pair of every factor pair occurs once.");

    // The design audit is clean (it is neither one-at-a-time nor enormous).
    assert!(audit_design(&design).is_empty());

    // Reproduce the slide's exact rows.
    let expect_row_4 = ["Z80", "512K", "Scientific", "College"];
    let got: Vec<String> = design
        .factors()
        .iter()
        .zip(design.run(3))
        .map(|(f, &l)| f.levels()[l].label())
        .collect();
    assert_eq!(got, expect_row_4);
    println!("row 4 matches the slide: Z80 / 512K / Scientific / College.");
}
