//! E13 — pictorial games: confidence intervals and histogram cells
//! (slides 138–145).
//!
//! Three exhibits:
//! 1. the "MINE is better than YOURS" truncated-axis bar chart, caught by
//!    the chart lint;
//! 2. slide 142: two systems whose point estimates differ but whose
//!    confidence intervals overlap — statistically indifferent;
//! 3. slide 144: the same response-time sample binned at width 2 vs
//!    width 6, and the ≥5-points-per-cell rule.

use perfeval_bench::banner;
use perfeval_harness::chartlint::{lint, ChartKind, ChartSpec};
use perfeval_stats::histogram::Histogram;
use perfeval_stats::rng::SplitMix64;
use perfeval_stats::{compare_means, ComparisonVerdict};

fn main() {
    banner("E13: presentation pitfalls", "slides 138-145");

    // --- 1. MINE vs YOURS ---
    println!("--- the truncated-axis trick (slide 138) ---");
    let dishonest = ChartSpec {
        kind: ChartKind::Bar,
        series: 2,
        y_label: "time (ms)".into(),
        x_label: "system".into(),
        y_axis_start: 2600.0, // MINE=2600, YOURS=2610 drawn from 2600
        y_data_min: 2600.0,
        plots_random_quantities: true,
        has_error_bars: false,
    };
    let lints = lint(&dishonest);
    for l in &lints {
        println!("lint: {l}");
    }
    assert!(lints.iter().any(|l| l.rule == "truncated-axis"));
    assert!(lints.iter().any(|l| l.rule == "no-confidence-intervals"));
    let honest = ChartSpec {
        y_axis_start: 0.0,
        has_error_bars: true,
        ..dishonest
    };
    assert!(lint(&honest).is_empty());
    println!("axis from 0 + error bars -> clean.\n");

    // --- 2. overlapping confidence intervals (slide 142) ---
    println!("--- overlapping confidence intervals (slide 142) ---");
    let mut rng = SplitMix64::new(2008);
    let mine: Vec<f64> = (0..10)
        .map(|_| 2600.0 + rng.next_range_f64(-40.0, 40.0))
        .collect();
    let yours: Vec<f64> = (0..10)
        .map(|_| 2610.0 + rng.next_range_f64(-40.0, 40.0))
        .collect();
    let cmp = compare_means(&mine, &yours, 0.95).expect("two samples");
    println!("MINE : {}", perfeval_stats::Summary::from_slice(&mine));
    println!("YOURS: {}", perfeval_stats::Summary::from_slice(&yours));
    println!("difference CI: {}", cmp.difference);
    println!("verdict: {}", cmp.verdict);
    assert_eq!(
        cmp.verdict,
        ComparisonVerdict::Indistinguishable,
        "10 ms apart with ±40 ms noise must be indistinguishable"
    );
    println!("overlapping confidence intervals sometimes mean the two quantities");
    println!("are statistically indifferent.\n");

    // --- 3. histogram cell size (slide 144) ---
    println!("--- histogram cell-size manipulation (slide 144) ---");
    // Response times spread over [0, 12): a sample whose fine binning
    // leaves cells under 5 points.
    let mut times = Vec::new();
    for _ in 0..30 {
        times.push(rng.next_range_f64(0.0, 12.0));
    }
    let fine = Histogram::with_bins(&times, 6).expect("histogram");
    let coarse = Histogram::with_bins(&times, 2).expect("histogram");
    println!("width-2 cells (6 bins):");
    print!("{}", fine.render_ascii(30));
    println!("width-6 cells (2 bins):");
    print!("{}", coarse.render_ascii(30));
    println!(
        "fine bins satisfy the >=5-points rule: {}",
        fine.satisfies_cell_rule(5)
    );
    println!(
        "coarse bins satisfy the >=5-points rule: {}",
        coarse.satisfies_cell_rule(5)
    );
    let auto = Histogram::auto(&times, 5).expect("histogram");
    println!(
        "auto-binning picked {} cells (rule satisfied: {})",
        auto.bins(),
        auto.satisfies_cell_rule(5) || auto.bins() == 1
    );
    assert!(coarse.satisfies_cell_rule(5));
    println!("\nrule of thumb: each cell should have at least five points —");
    println!("not sufficient to uniquely determine what one should do.");
}
