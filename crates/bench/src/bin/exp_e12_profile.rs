//! E12 — find out what happens: per-operator profiling of Q1 (slide 54).
//!
//! The paper shows two profiling traces of TPC-H Q1 — a MySQL `gprof`
//! call-graph and a MonetDB/MIL operator trace — to make one point: the
//! engines spend their time in completely different places, and only a
//! profile reveals where. We reproduce the *form* (per-operator exclusive
//! time and cardinality) for our two engines, whose time distributions
//! differ exactly the way interpreted vs. vectorized engines do.

use minidb::ExecMode;
use perfeval_bench::{banner, bench_catalog, print_environment, session_with_mode};
use workload::queries;

fn main() {
    banner("E12: per-operator profile of Q1, two engines", "slide 54");
    print_environment();
    let catalog = bench_catalog();
    let sql = queries::q1();

    let mut traces = Vec::new();
    for mode in [ExecMode::Debug, ExecMode::Optimized] {
        let mut session = session_with_mode(&catalog, mode);
        session.query(&sql).run().expect("warmup");
        let result = session.query(&sql).run().expect("profiled run");
        println!("--- {mode} engine trace ---");
        print!("{}", minidb::exec::render_profile(&result.profile));
        println!();
        traces.push((mode, result.profile));
    }

    // EXPLAIN for good measure (the other slide-52 tool).
    let session = session_with_mode(&catalog, ExecMode::Optimized);
    println!("--- EXPLAIN (the plan both engines run) ---");
    print!("{}", session.explain(&sql).expect("valid query"));

    // Shape assertions: both traces cover the same operators, and the
    // scan+aggregate dominate.
    for (mode, trace) in &traces {
        assert!(trace.iter().any(|e| e.op.starts_with("Scan")), "{mode}");
        assert!(trace.iter().any(|e| e.op == "HashAggregate"), "{mode}");
        let total: f64 = trace.iter().map(|e| e.exclusive_ms).sum();
        assert!(total > 0.0);
        let agg_scan: f64 = trace
            .iter()
            .filter(|e| e.op.starts_with("Scan") || e.op == "HashAggregate" || e.op == "Filter")
            .map(|e| e.exclusive_ms)
            .sum();
        assert!(
            agg_scan / total > 0.5,
            "{mode}: scan+filter+aggregate must dominate Q1 ({:.0}%)",
            100.0 * agg_scan / total
        );
    }
    // The engines distribute time differently (that is the slide's point).
    let share = |trace: &[minidb::exec::ProfileEntry], op: &str| -> f64 {
        let total: f64 = trace.iter().map(|e| e.exclusive_ms).sum();
        trace
            .iter()
            .filter(|e| e.op.starts_with(op))
            .map(|e| e.exclusive_ms)
            .sum::<f64>()
            / total
    };
    let dbg_agg = share(&traces[0].1, "HashAggregate");
    let opt_agg = share(&traces[1].1, "HashAggregate");
    println!(
        "\naggregation's share of execution: DBG {:.0}%, OPT {:.0}% — the",
        dbg_agg * 100.0,
        opt_agg * 100.0
    );
    println!("engines spend their time in different places; only the trace shows it.");
}
