//! E24 — the engine as a *three-level* design factor: DBG / OPT / SIMD.
//!
//! E3 (slide 41) treats the build as a two-level factor. This experiment
//! extends it with the explicit-SIMD tier: engine (3 levels) × workload
//! (the 4 pinned trajectory workloads), fully replicated, analyzed the
//! paper's way —
//!
//! * **allocation of variation**: a two-factor ANOVA with replication
//!   decomposes total variation into engine, workload, their interaction,
//!   and replicate residual. The sign-table shortcut of E6 only covers
//!   2-level factors, so the sums of squares are computed from cell means
//!   directly (same math, general levels).
//! * **effect sizes with CIs**: per workload, the Kalibera–Jones interval
//!   on SIMD/OPT − 1; the claim "SIMD is faster" must survive its
//!   confidence interval, not just its median.
//! * **correctness gate first**: before a single timing is kept, every
//!   workload's result must be identical across all three engines — the
//!   "same question, same answer" precondition for comparing their times.
//!
//! Knobs: `-Dsmoke=on` (small data, fewer replicates), `-Dreps=N`.

use perfeval_bench::trajectory::{suite, ENGINES};
use perfeval_bench::{
    banner, bench_props, catalog_at, median, print_environment, session_with_mode,
};
use perfeval_stats::effect_size_ci;

/// Two-factor allocation of variation with replication, general levels.
/// Returns (ss_a, ss_b, ss_ab, ss_err, ss_total) for responses indexed
/// `y[a][b][r]`.
fn allocate_variation_general(y: &[Vec<Vec<f64>>]) -> (f64, f64, f64, f64, f64) {
    let a = y.len();
    let b = y[0].len();
    let r = y[0][0].len();
    let grand: f64 = y.iter().flatten().flatten().sum::<f64>() / (a * b * r) as f64;
    let cell_mean = |i: usize, j: usize| -> f64 { y[i][j].iter().sum::<f64>() / r as f64 };
    let a_mean = |i: usize| -> f64 { (0..b).map(|j| cell_mean(i, j)).sum::<f64>() / b as f64 };
    let b_mean = |j: usize| -> f64 { (0..a).map(|i| cell_mean(i, j)).sum::<f64>() / a as f64 };

    let ss_a: f64 = (0..a)
        .map(|i| (b * r) as f64 * (a_mean(i) - grand).powi(2))
        .sum();
    let ss_b: f64 = (0..b)
        .map(|j| (a * r) as f64 * (b_mean(j) - grand).powi(2))
        .sum();
    let mut ss_ab = 0.0;
    let mut ss_err = 0.0;
    let mut ss_total = 0.0;
    for (i, row) in y.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            let cm = cell_mean(i, j);
            ss_ab += r as f64 * (cm - a_mean(i) - b_mean(j) + grand).powi(2);
            for &v in cell {
                ss_err += (v - cm).powi(2);
                ss_total += (v - grand).powi(2);
            }
        }
    }
    (ss_a, ss_b, ss_ab, ss_err, ss_total)
}

fn main() {
    banner(
        "E24: engine as a three-level factor (DBG/OPT/SIMD)",
        "extends slide 41's build factor",
    );
    print_environment();
    let props = bench_props();
    let smoke = props.get("smoke").map(|s| s == "on").unwrap_or(false);
    let default_reps = if smoke { 5 } else { 11 };
    let reps = props
        .get_u64("reps")
        .expect("-Dreps must be a number")
        .map(|r| (r as usize).max(2))
        .unwrap_or(default_reps);
    let sf = if smoke { 0.002 } else { 0.01 };
    println!("design: engine (3) x workload (4), r={reps} replicates, sf={sf}\n");

    let catalog = catalog_at(sf);
    let workloads = suite();

    // Correctness gate: the three engines must agree bit-for-bit on every
    // workload before any timing comparison means anything.
    for w in &workloads {
        let sql = (w.sql)();
        let mut results = ENGINES.iter().map(|&m| {
            session_with_mode(&catalog, m)
                .query(&sql)
                .run()
                .expect("gate run")
                .rows
        });
        let first = results.next().expect("three engines");
        for (rows, &mode) in results.zip(&ENGINES[1..]) {
            assert_eq!(rows, first, "{mode} diverged from DBG on {}", w.name);
        }
    }
    println!("correctness gate: all 3 engines agree on all 4 workloads\n");

    // Replicated, interleaved measurement: y[engine][workload][replicate].
    let mut sessions: Vec<Vec<(minidb::Session, String)>> = ENGINES
        .iter()
        .map(|&m| {
            workloads
                .iter()
                .map(|w| (session_with_mode(&catalog, m), (w.sql)()))
                .collect()
        })
        .collect();
    for row in &mut sessions {
        for (s, sql) in row.iter_mut() {
            s.query(sql).run().expect("warmup");
        }
    }
    let mut y: Vec<Vec<Vec<f64>>> = vec![vec![Vec::with_capacity(reps); workloads.len()]; 3];
    for _ in 0..reps {
        for (ei, row) in sessions.iter_mut().enumerate() {
            for (wi, (s, sql)) in row.iter_mut().enumerate() {
                y[ei][wi].push(s.query(sql).run().expect("measured run").server_user_ms());
            }
        }
    }

    println!(
        "{:<14} {:>10} {:>10} {:>10}   {:>9} {:>9}",
        "workload (ms)", "DBG", "OPT", "SIMD", "DBG/OPT", "OPT/SIMD"
    );
    for (wi, w) in workloads.iter().enumerate() {
        let m: Vec<f64> = (0..3).map(|ei| median(y[ei][wi].clone())).collect();
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>10.3}   {:>9.2} {:>9.2}",
            w.name,
            m[0],
            m[1],
            m[2],
            m[0] / m[1].max(1e-9),
            m[1] / m[2].max(1e-9)
        );
    }

    // Per-workload SIMD-vs-OPT effect with its Kalibera-Jones interval
    // (negative = SIMD faster; the CI must exclude zero to claim anything).
    println!("\nSIMD vs OPT effect (ratio - 1, 95% CI):");
    let mut simd_wins: Vec<&str> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let e = effect_size_ci(&y[2][wi], &y[1][wi], 0.95).expect("effect");
        let excludes_zero = e.effect.upper < 0.0 || e.effect.lower > 0.0;
        println!(
            "  {:<14} {:+6.1}%  [{:+6.1}%, {:+6.1}%]  {}",
            w.name,
            e.effect.estimate * 100.0,
            e.effect.lower * 100.0,
            e.effect.upper * 100.0,
            if !excludes_zero {
                "indistinguishable"
            } else if e.effect.upper < 0.0 {
                simd_wins.push(w.name);
                "SIMD faster"
            } else {
                "SIMD slower"
            }
        );
    }

    // Allocation of variation over log times (ratios of engines are the
    // meaningful scale; logs make them additive).
    let logs: Vec<Vec<Vec<f64>>> = y
        .iter()
        .map(|row| {
            row.iter()
                .map(|cell| cell.iter().map(|v| v.max(1e-9).ln()).collect())
                .collect()
        })
        .collect();
    let (ss_e, ss_w, ss_int, ss_err, ss_t) = allocate_variation_general(&logs);
    println!("\nallocation of variation (log ms):");
    for (name, ss) in [
        ("engine", ss_e),
        ("workload", ss_w),
        ("interaction", ss_int),
        ("replicates", ss_err),
    ] {
        println!("  {:<12} {:>6.1}%", name, 100.0 * ss / ss_t.max(1e-12));
    }

    // Shape assertions: the engine factor must matter (DBG is an
    // interpreter), and its share plus the workload share must dominate
    // replicate noise — otherwise the experiment design is broken.
    assert!(
        ss_e / ss_t > 0.2,
        "engine factor must explain real variation: {:.1}%",
        100.0 * ss_e / ss_t
    );
    assert!(
        ss_err / ss_t < 0.2,
        "replicate noise must stay minor: {:.1}%",
        100.0 * ss_err / ss_t
    );
    if !smoke {
        // The kernel-bound workloads are the tier's reason to exist: the
        // speedup claim must survive its interval on both of them.
        for required in ["filter-heavy", "agg-heavy"] {
            assert!(
                simd_wins.contains(&required),
                "SIMD vs OPT CI must exclude zero on {required}; wins: {simd_wins:?}"
            );
        }
    }
    println!("\nconclusion: the build is a 3-level factor; DBG/OPT dwarfs OPT/SIMD,");
    println!("and the SIMD tier's wins are claimed only where the CI clears zero.");
}
