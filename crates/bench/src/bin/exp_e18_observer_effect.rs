//! E18 — the observer effect: what does measuring cost? (new exhibit).
//!
//! The tutorial's "be aware what you measure" principle cuts both ways:
//! instrumentation is itself a perturbation, so a tracing layer must
//! publish its own overhead before its numbers can be trusted. This
//! experiment runs the same hot query under four arms —
//!
//! * `off`      — no tracer attached at all (baseline),
//! * `disabled` — a tracer attached but switched off (the cost of the
//!   `enabled` check on every span site),
//! * `sampled`  — recording 1 in 64 top-level spans,
//! * `full`     — recording every span,
//!
//! — and reports the median per-query wall time plus overhead relative to
//! the baseline. The acceptance bar is sampled overhead ≤ 5% on the hot
//! path. With `--smoke` it runs a handful of repetitions, still exports
//! and validates the Chrome trace, and skips the (timing-noisy) overhead
//! assertion — that mode is what CI runs.

use perfeval_bench::{banner, bench_catalog, median, print_environment};
use perfeval_harness::Properties;
use perfeval_trace::{chrome_trace_json, validate_chrome, Tracer};

const SQL: &str = "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 24";

/// One warmup, then the median wall-milliseconds of `reps` runs of the hot
/// query, with an optional tracer attached.
fn arm_median_ms(session: &mut minidb::Session, tracer: Option<&Tracer>, reps: usize) -> f64 {
    let run = |s: &mut minidb::Session| {
        let q = s.query(SQL);
        let q = match tracer {
            Some(t) => q.traced(t),
            None => q,
        };
        q.run().expect("hot query")
    };
    run(session);
    median(
        (0..reps)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let result = run(session);
                std::hint::black_box(result.row_count());
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    )
}

fn main() {
    banner(
        "E18: observer effect of span tracing",
        "the 'what you measure' principle",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[("reps", "40")]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let reps = if smoke {
        5
    } else {
        props.get_u64("reps").expect("-Dreps").unwrap_or(40).max(3) as usize
    };

    let catalog = bench_catalog();
    let mut session = minidb::Session::new(catalog);

    let disabled = Tracer::disabled();
    let sampled = Tracer::new();
    sampled.set_sampling(64);
    let full = Tracer::new();

    // Best-of-3 attempts: overhead is a *floor* property (the instrument
    // cannot make the query faster), so the minimum observed overhead is
    // the honest estimate and scheduling noise only inflates it.
    let attempts = if smoke { 1 } else { 3 };
    let mut best: Option<(f64, f64, f64, f64)> = None;
    for _ in 0..attempts {
        let base_ms = arm_median_ms(&mut session, None, reps);
        let disabled_ms = arm_median_ms(&mut session, Some(&disabled), reps);
        let sampled_ms = arm_median_ms(&mut session, Some(&sampled), reps);
        let full_ms = arm_median_ms(&mut session, Some(&full), reps);
        let candidate = (base_ms, disabled_ms, sampled_ms, full_ms);
        best = Some(match best {
            Some(prev) if prev.2 / prev.0 <= candidate.2 / candidate.0 => prev,
            _ => candidate,
        });
    }
    let (base_ms, disabled_ms, sampled_ms, full_ms) = best.expect("at least one attempt");

    let pct = |ms: f64| (ms / base_ms - 1.0) * 100.0;
    println!("query: {SQL}");
    println!("reps per arm: {reps} (median), best of {attempts} attempt(s)\n");
    println!("  arm        median ms   overhead");
    println!("  off        {base_ms:9.4}   (baseline)");
    println!(
        "  disabled   {disabled_ms:9.4}   {:+7.2}%",
        pct(disabled_ms)
    );
    println!("  sampled    {sampled_ms:9.4}   {:+7.2}%", pct(sampled_ms));
    println!("  full       {full_ms:9.4}   {:+7.2}%", pct(full_ms));

    // Export + validate the full arm's trace: the observer's own record.
    let trace = full.snapshot();
    let json = chrome_trace_json(&trace);
    let summary = validate_chrome(&json).expect("exported trace is well-formed");
    let out = std::env::var("PERFEVAL_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    std::fs::create_dir_all(&out).expect("output dir");
    let path = out.join("exp_e18_observer_effect.trace.json");
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "\nfull-arm trace: {} events, {} spans, {} dropped -> {}",
        summary.events,
        summary.spans,
        summary.dropped,
        path.display()
    );
    assert!(summary.spans > 0, "full tracer recorded spans");

    let stats = sampled.stats();
    println!(
        "sampled arm recorded {} spans across {} lanes (1 in 64 top-level).",
        stats.recorded, stats.lanes
    );

    if smoke {
        println!("\n--smoke: skipping the overhead assertion (timing too noisy for CI).");
    } else {
        let overhead = pct(sampled_ms);
        assert!(
            overhead <= 5.0,
            "sampled tracing overhead {overhead:.2}% exceeds the 5% budget"
        );
        println!(
            "\nsampled overhead {:+.2}% is within the 5% budget: measure without distorting.",
            overhead
        );
    }
}
