//! `minidb-serve` — a standalone minidb server over TCP.
//!
//! Serves the standard benchmark catalog (TPC-H-like, regenerated
//! deterministically from the recorded seed) to any `minidb-net` client:
//!
//! ```text
//! minidb-serve -Daddr=127.0.0.1:7878 -Dworkers=4 -Dsf=0.01
//! ```
//!
//! Each connection gets a private session over the shared catalog. The
//! server runs until killed; `--smoke` instead connects its own client,
//! runs one query end to end, prints the measured client/server time
//! decomposition, and exits 0 — the self-test CI runs.

use minidb::Session;
use minidb_net::{Client, Server, TcpEndpoint, TcpTransport};
use perfeval_bench::{banner, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_harness::Properties;
use workload::queries;

fn main() {
    banner(
        "minidb-serve: the wire-protocol server",
        "the E21 substrate",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[
        ("addr", "127.0.0.1:7878"),
        ("workers", "4"),
        ("sf", &BENCH_SCALE_FACTOR.to_string()),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let addr = props.get("addr").expect("-Daddr").to_owned();
    let workers = props
        .get_u64("workers")
        .expect("-Dworkers must be a number")
        .unwrap_or(4)
        .max(1) as usize;
    let sf = props
        .get_f64("sf")
        .expect("-Dsf must be a number")
        .unwrap_or(BENCH_SCALE_FACTOR);

    // --smoke binds an ephemeral port so CI runs never collide.
    let bind_addr = if smoke { "127.0.0.1:0" } else { addr.as_str() };
    let endpoint = TcpEndpoint::bind(bind_addr).expect("bind listener");
    let local = endpoint.local_addr().expect("local addr");
    let catalog = catalog_at(sf);
    let server = Server::new()
        .workers(workers)
        .serve(endpoint, move || Session::new(catalog.clone()));
    println!("listening on {local} ({workers} workers, sf={sf}); one session per connection.");

    if smoke {
        let mut client = Client::connect(Box::new(
            TcpTransport::connect(local).expect("self-connect"),
        ))
        .expect("handshake");
        let r = client.query(&queries::q6()).expect("smoke query");
        println!("\nself-test: Q6 over tcp, {} row(s).", r.row_count());
        print!("{}", r.decomposition());
        client.close().expect("close");
        let stats = server.wait();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.disconnects, 0);
        println!("--smoke: served one client cleanly; exiting.");
        return;
    }

    // Foreground server: park this thread while the accept workers run.
    // (Kill the process to stop; connections in flight finish their loop.)
    loop {
        std::thread::park();
    }
}
