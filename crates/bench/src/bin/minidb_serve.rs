//! `minidb-serve` — a standalone minidb server over TCP.
//!
//! Serves the standard benchmark catalog (TPC-H-like, regenerated
//! deterministically from the recorded seed) to any `minidb-net` client:
//!
//! ```text
//! minidb-serve -Daddr=127.0.0.1:7878 -Dmode=sharded -Dshards=4 -Dsf=0.01
//! minidb-serve --shards 8            # shorthand for -Dmode=sharded -Dshards=8
//! minidb-serve -Dmode=threaded -Dworkers=4
//! minidb-serve --max-inflight 8 --deadline-ms 50   # overload protection
//! ```
//!
//! Two server cores are available (`-Dmode=`): `sharded` (default) runs the
//! event-driven shared-nothing core — `-Dshards=N` readiness-loop workers,
//! each owning its connections, with `-Dqueue=N` bounding every connection's
//! write queue — while `threaded` runs the classic thread-per-connection
//! loop (`-Dworkers=N` acceptors). Both serve bit-identical results; E23
//! (`exp_e23_sharded_server`) measures the difference under load.
//!
//! Overload protection (both cores): `--max-inflight N` (alias
//! `-Dmax_inflight=N`) bounds concurrently executing queries — excess is
//! shed fast with a typed `Rejected { Overloaded }`; `--deadline-ms N`
//! (alias `-Ddeadline_ms=N`) applies a default per-query deadline,
//! enforced by cooperative cancellation, to queries whose header carries
//! none; `-Dmax_conns=N` bounds concurrent sessions at the handshake.
//! `0` disables each knob. E25 (`exp_e25_overload`) measures the policy
//! under saturation.
//!
//! Persistent storage: `--data-dir PATH` (alias `-Ddata_dir=PATH`) serves
//! a **disk-backed** catalog from that directory — persisted there on
//! first use, reopened afterwards — with every connection sharing one
//! real buffer pool. `--pool-mb N` (alias `-Dpool_mb=N`) sets the pool
//! budget and `-Devict=lru|clock|2q` its eviction policy.
//!
//! Each connection gets a private session over the shared catalog. The
//! server runs until killed; `--smoke` instead connects its own client,
//! runs one query end to end in **both** modes, proves persist → reopen
//! serves bit-identical rows through the real buffer pool, then proves
//! the admission knobs: a held in-flight slot sheds a concurrent query
//! `Overloaded`, and an expired default deadline comes back
//! `DeadlineExceeded` without poisoning the connection. Exits 0 — the
//! self-test CI runs.

use std::path::PathBuf;
use std::sync::Arc;

use minidb::{Catalog, Session, StoreConfig};
use minidb_net::{
    Admission, Client, NetError, RejectCode, Server, ServerMode, TcpEndpoint, TcpTransport,
    DEFAULT_QUEUE_DEPTH,
};
use perfeval_bench::{banner, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_fault::{FaultAction, FaultRegistry, Trigger};
use perfeval_harness::Properties;
use workload::queries;

fn main() {
    banner(
        "minidb-serve: the wire-protocol server",
        "the E21/E23/E25 substrate",
    );
    print_environment();

    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Quickstart spellings of the -D knobs.
    for (flag, key) in [
        ("--shards", "shards"),
        ("--max-inflight", "max_inflight"),
        ("--deadline-ms", "deadline_ms"),
        ("--pool-mb", "pool_mb"),
    ] {
        if let Some(i) = args.iter().position(|a| a == flag) {
            let n = args
                .get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{flag} needs a number"));
            let mut replacement = vec![format!("-D{key}={n}")];
            if flag == "--shards" {
                replacement.insert(0, "-Dmode=sharded".into());
            }
            args.splice(i..=i + 1, replacement);
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--data-dir") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--data-dir needs a path"))
            .clone();
        args.splice(i..=i + 1, [format!("-Ddata_dir={path}")]);
    }
    let mut props = Properties::with_defaults(&[
        ("addr", "127.0.0.1:7878"),
        ("mode", "sharded"),
        ("workers", "4"),
        ("shards", "0"),
        ("queue", &DEFAULT_QUEUE_DEPTH.to_string()),
        ("sf", &BENCH_SCALE_FACTOR.to_string()),
        ("max_inflight", "0"),
        ("max_conns", "0"),
        ("deadline_ms", "0"),
        ("data_dir", ""),
        ("pool_mb", "64"),
        ("evict", "lru"),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect(
            "arguments must be --smoke, --shards N, --max-inflight N, --deadline-ms N, \
             --data-dir PATH, --pool-mb N, or -Dkey=value",
        );
    let addr = props.get("addr").expect("-Daddr").to_owned();
    let workers = props
        .get_u64("workers")
        .expect("-Dworkers must be a number")
        .unwrap_or(4)
        .max(1) as usize;
    let shards = props
        .get_u64("shards")
        .expect("-Dshards must be a number")
        .unwrap_or(0) as usize;
    let queue_depth = props
        .get_u64("queue")
        .expect("-Dqueue must be a number")
        .unwrap_or(DEFAULT_QUEUE_DEPTH as u64)
        .max(1) as usize;
    let sf = props
        .get_f64("sf")
        .expect("-Dsf must be a number")
        .unwrap_or(BENCH_SCALE_FACTOR);
    let max_inflight = props
        .get_u64("max_inflight")
        .expect("-Dmax_inflight must be a number")
        .unwrap_or(0) as usize;
    let max_conns = props
        .get_u64("max_conns")
        .expect("-Dmax_conns must be a number")
        .unwrap_or(0) as usize;
    let deadline_ms = props
        .get_u64("deadline_ms")
        .expect("-Ddeadline_ms must be a number")
        .unwrap_or(0) as u32;
    let admission = Admission::default()
        .max_inflight(max_inflight)
        .max_conns(max_conns)
        .default_deadline_ms(deadline_ms);
    let mode = match props.get("mode").expect("-Dmode") {
        "threaded" => ServerMode::ThreadPerConn { workers },
        "sharded" => match shards {
            // -Dshards=0: let the builder pick from available cores.
            0 => match ServerMode::default() {
                ServerMode::Sharded { shards, .. } => ServerMode::Sharded {
                    shards,
                    queue_depth,
                },
                other => other,
            },
            n => ServerMode::Sharded {
                shards: n,
                queue_depth,
            },
        },
        other => panic!("-Dmode must be 'sharded' or 'threaded', got '{other}'"),
    };

    let data_dir = props.get("data_dir").unwrap_or("").to_owned();
    let pool_mb = props
        .get_u64("pool_mb")
        .expect("-Dpool_mb must be a number")
        .unwrap_or(64)
        .max(1);
    let evict: perfeval_store::Evict = props
        .get("evict")
        .unwrap_or("lru")
        .parse()
        .expect("-Devict must be lru, clock, or 2q");
    let store_config = StoreConfig::default()
        .pool_bytes(pool_mb * 1024 * 1024)
        .evict(evict);

    // --data-dir: serve disk-backed, persisting on first use. Every
    // connection's session shares the one real buffer pool behind the
    // catalog's Arc<Storage>.
    let catalog = if data_dir.is_empty() {
        catalog_at(sf)
    } else {
        let root = PathBuf::from(&data_dir);
        if !root
            .join(perfeval_store::manifest::CATALOG_MANIFEST)
            .exists()
        {
            catalog_at(sf)
                .persist(&root)
                .expect("persist catalog into --data-dir");
            println!("persisted sf={sf} catalog into {}", root.display());
        }
        let c = Catalog::open_with(&root, store_config.clone()).expect("open --data-dir");
        println!(
            "serving disk-backed from {} (pool {pool_mb} MiB, evict {})",
            root.display(),
            evict.as_str()
        );
        c
    };
    let serve = |mode: ServerMode, bind: &str| {
        let endpoint = TcpEndpoint::bind(bind).expect("bind listener");
        let local = endpoint.local_addr().expect("local addr");
        let catalog = catalog.clone();
        let server = Server::builder()
            .transport(endpoint)
            .mode(mode)
            .admission(admission)
            .serve(move || Session::new(catalog.clone()));
        (server, local)
    };

    if smoke {
        // Exercise BOTH cores end to end on ephemeral ports (CI runs never
        // collide), proving either mode serves a real client.
        for mode in [mode, ServerMode::ThreadPerConn { workers }] {
            let (server, local) = serve(mode, "127.0.0.1:0");
            println!("\n[{}] listening on {local} (sf={sf})", mode.describe());
            let mut client = Client::connect(Box::new(
                TcpTransport::connect(local).expect("self-connect"),
            ))
            .expect("handshake");
            let r = client.query(&queries::q6()).expect("smoke query");
            println!("self-test: Q6 over tcp, {} row(s).", r.row_count());
            print!("{}", r.decomposition());
            client.close().expect("close");
            let stats = server.wait();
            assert_eq!(stats.queries, 1);
            assert_eq!(stats.disconnects, 0);
        }

        // Persist -> reopen proof: the same query served from a freshly
        // reopened disk-backed catalog must return the same rows, and
        // its cold scan must show real buffer-pool I/O.
        let proof_dir = if data_dir.is_empty() {
            std::env::temp_dir().join(format!("minidb_serve_smoke_{}", std::process::id()))
        } else {
            PathBuf::from(&data_dir)
        };
        let mem = catalog_at(sf);
        if !proof_dir
            .join(perfeval_store::manifest::CATALOG_MANIFEST)
            .exists()
        {
            mem.persist(&proof_dir).expect("smoke persist");
        }
        let disk = Catalog::open_with(&proof_dir, store_config.clone()).expect("smoke reopen");
        let want = Session::new(mem).query(&queries::q6()).run().expect("mem");
        let got = Session::new(disk)
            .query(&queries::q6())
            .run()
            .expect("disk");
        assert_eq!(
            want.rows, got.rows,
            "persist -> reopen must not change rows"
        );
        assert!(
            got.store_physical_reads > 0,
            "the reopened catalog's cold scan must do real I/O"
        );
        println!(
            "\nself-test: persist -> reopen bit-identical; cold scan did \
             {} real reads through the pool.",
            got.store_physical_reads
        );
        if data_dir.is_empty() {
            let _ = std::fs::remove_dir_all(&proof_dir);
        }

        // --max-inflight: a held slot sheds a concurrent query, typed.
        // The first statement of each session stalls 120 ms at the
        // `minidb.execute` failpoint, so the budget is provably occupied
        // when the second client asks.
        let stall = Arc::new(FaultRegistry::new(25).armed_always(
            "minidb.execute",
            Trigger::Key(0),
            FaultAction::DelayMs(120.0),
        ));
        let catalog2 = catalog.clone();
        let endpoint = TcpEndpoint::bind("127.0.0.1:0").expect("bind listener");
        let local = endpoint.local_addr().expect("local addr");
        let server = Server::builder()
            .transport(endpoint)
            .mode(ServerMode::ThreadPerConn { workers: 2 })
            .admission(Admission::default().max_inflight(1))
            .serve(move || Session::new(catalog2.clone()).with_faults(Arc::clone(&stall)));
        let mut slow =
            Client::connect(Box::new(TcpTransport::connect(local).expect("dial"))).expect("hello");
        let mut fast =
            Client::connect(Box::new(TcpTransport::connect(local).expect("dial"))).expect("hello");
        let q = queries::q6();
        let holder = std::thread::spawn(move || {
            slow.query(&q).expect("stalled query still completes");
            slow.close().expect("close");
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        match fast.query(&queries::q6()) {
            Err(NetError::Rejected {
                code: RejectCode::Overloaded,
                ..
            }) => println!("\nself-test: --max-inflight 1 shed a concurrent query (Overloaded)."),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        holder.join().expect("holder thread");
        fast.query(&queries::q6())
            .expect("shed client retries once the slot frees");
        fast.close().expect("close");
        let stats = server.wait();
        assert!(stats.rejected_overload >= 1);

        // --deadline-ms: the server-side default deadline cancels a
        // stalled statement cooperatively and answers typed; the same
        // connection then serves the follow-up normally.
        let stall = Arc::new(FaultRegistry::new(26).armed_always(
            "minidb.execute",
            Trigger::Key(0),
            FaultAction::DelayMs(60.0),
        ));
        let catalog3 = catalog.clone();
        let endpoint = TcpEndpoint::bind("127.0.0.1:0").expect("bind listener");
        let local = endpoint.local_addr().expect("local addr");
        let server = Server::builder()
            .transport(endpoint)
            .mode(mode)
            .admission(
                Admission::default().default_deadline_ms(if deadline_ms > 0 {
                    deadline_ms
                } else {
                    10
                }),
            )
            .serve(move || Session::new(catalog3.clone()).with_faults(Arc::clone(&stall)));
        let mut client =
            Client::connect(Box::new(TcpTransport::connect(local).expect("dial"))).expect("hello");
        match client.query(&queries::q6()) {
            Err(NetError::Rejected {
                code: RejectCode::DeadlineExceeded,
                ..
            }) => {
                println!("self-test: --deadline-ms cancelled a stalled query (DeadlineExceeded).")
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        client
            .query(&queries::q6())
            .expect("the cancelled query did not poison the connection");
        client.close().expect("close");
        let stats = server.wait();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.cancelled_queries, 1);
        assert_eq!(stats.disconnects, 0);

        println!(
            "\n--smoke: served one client cleanly in each mode; admission and \
             deadline knobs enforced; exiting."
        );
        return;
    }

    let (_server, local) = serve(mode, addr.as_str());
    println!(
        "listening on {local} ({}, sf={sf}, {}); one session per connection.",
        mode.describe(),
        admission.describe()
    );
    // Foreground server: park this thread while the core runs.
    // (Kill the process to stop; connections in flight finish their loop.)
    loop {
        std::thread::park();
    }
}
