//! `minidb-serve` — a standalone minidb server over TCP.
//!
//! Serves the standard benchmark catalog (TPC-H-like, regenerated
//! deterministically from the recorded seed) to any `minidb-net` client:
//!
//! ```text
//! minidb-serve -Daddr=127.0.0.1:7878 -Dmode=sharded -Dshards=4 -Dsf=0.01
//! minidb-serve --shards 8            # shorthand for -Dmode=sharded -Dshards=8
//! minidb-serve -Dmode=threaded -Dworkers=4
//! ```
//!
//! Two server cores are available (`-Dmode=`): `sharded` (default) runs the
//! event-driven shared-nothing core — `-Dshards=N` readiness-loop workers,
//! each owning its connections, with `-Dqueue=N` bounding every connection's
//! write queue — while `threaded` runs the classic thread-per-connection
//! loop (`-Dworkers=N` acceptors). Both serve bit-identical results; E23
//! (`exp_e23_sharded_server`) measures the difference under load.
//!
//! Each connection gets a private session over the shared catalog. The
//! server runs until killed; `--smoke` instead connects its own client,
//! runs one query end to end in **both** modes, prints the measured
//! client/server time decomposition, and exits 0 — the self-test CI runs.

use minidb::Session;
use minidb_net::{Client, Server, ServerMode, TcpEndpoint, TcpTransport, DEFAULT_QUEUE_DEPTH};
use perfeval_bench::{banner, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_harness::Properties;
use workload::queries;

fn main() {
    banner(
        "minidb-serve: the wire-protocol server",
        "the E21/E23 substrate",
    );
    print_environment();

    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `--shards N` is the quickstart spelling of -Dmode=sharded -Dshards=N.
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .expect("--shards needs a number");
        args.splice(
            i..=i + 1,
            ["-Dmode=sharded".into(), format!("-Dshards={n}")],
        );
    }
    let mut props = Properties::with_defaults(&[
        ("addr", "127.0.0.1:7878"),
        ("mode", "sharded"),
        ("workers", "4"),
        ("shards", "0"),
        ("queue", &DEFAULT_QUEUE_DEPTH.to_string()),
        ("sf", &BENCH_SCALE_FACTOR.to_string()),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke, --shards N, or -Dkey=value");
    let addr = props.get("addr").expect("-Daddr").to_owned();
    let workers = props
        .get_u64("workers")
        .expect("-Dworkers must be a number")
        .unwrap_or(4)
        .max(1) as usize;
    let shards = props
        .get_u64("shards")
        .expect("-Dshards must be a number")
        .unwrap_or(0) as usize;
    let queue_depth = props
        .get_u64("queue")
        .expect("-Dqueue must be a number")
        .unwrap_or(DEFAULT_QUEUE_DEPTH as u64)
        .max(1) as usize;
    let sf = props
        .get_f64("sf")
        .expect("-Dsf must be a number")
        .unwrap_or(BENCH_SCALE_FACTOR);
    let mode = match props.get("mode").expect("-Dmode") {
        "threaded" => ServerMode::ThreadPerConn { workers },
        "sharded" => match shards {
            // -Dshards=0: let the builder pick from available cores.
            0 => match ServerMode::default() {
                ServerMode::Sharded { shards, .. } => ServerMode::Sharded {
                    shards,
                    queue_depth,
                },
                other => other,
            },
            n => ServerMode::Sharded {
                shards: n,
                queue_depth,
            },
        },
        other => panic!("-Dmode must be 'sharded' or 'threaded', got '{other}'"),
    };

    let catalog = catalog_at(sf);
    let serve = |mode: ServerMode, bind: &str| {
        let endpoint = TcpEndpoint::bind(bind).expect("bind listener");
        let local = endpoint.local_addr().expect("local addr");
        let catalog = catalog.clone();
        let server = Server::builder()
            .transport(endpoint)
            .mode(mode)
            .serve(move || Session::new(catalog.clone()));
        (server, local)
    };

    if smoke {
        // Exercise BOTH cores end to end on ephemeral ports (CI runs never
        // collide), proving either mode serves a real client.
        for mode in [mode, ServerMode::ThreadPerConn { workers }] {
            let (server, local) = serve(mode, "127.0.0.1:0");
            println!("\n[{}] listening on {local} (sf={sf})", mode.describe());
            let mut client = Client::connect(Box::new(
                TcpTransport::connect(local).expect("self-connect"),
            ))
            .expect("handshake");
            let r = client.query(&queries::q6()).expect("smoke query");
            println!("self-test: Q6 over tcp, {} row(s).", r.row_count());
            print!("{}", r.decomposition());
            client.close().expect("close");
            let stats = server.wait();
            assert_eq!(stats.queries, 1);
            assert_eq!(stats.disconnects, 0);
        }
        println!("\n--smoke: served one client cleanly in each mode; exiting.");
        return;
    }

    let (_server, local) = serve(mode, addr.as_str());
    println!(
        "listening on {local} ({}, sf={sf}); one session per connection.",
        mode.describe()
    );
    // Foreground server: park this thread while the core runs.
    // (Kill the process to stop; connections in flight finish their loop.)
    loop {
        std::thread::park();
    }
}
