//! E4 — the memory wall: `SELECT MAX(column)` across a decade of machines
//! (slides 46 and 51).
//!
//! The paper's figure: elapsed time per scan iteration, stacked into CPU
//! and memory components, for five machines from a 1992 Sun LX (50 MHz) to
//! a 2000 Origin2000 — a 10× clock improvement that buys almost no scan
//! performance, because the memory component never shrinks. Slide 46 shows
//! the puzzle (totals only); slide 51 the counter-assisted dissection.

use memsim::scan::memory_wall_series;
use perfeval_bench::banner;
use perfeval_harness::{write_csv, GnuplotScript};

fn main() {
    banner("E4: the memory wall", "slides 46 and 51");
    let iterations = 200_000;
    println!("simulated scan: {iterations} iterations, 128-byte stride (row layout)\n");

    let series = memory_wall_series(iterations);

    println!(
        "{:<12} {:<14} {:>6}  {:>9} {:>9} {:>9}  {:>7}",
        "system", "CPU type", "MHz", "cpu ns/it", "mem ns/it", "total", "mem %"
    );
    let mut rows = Vec::new();
    for s in &series {
        println!(
            "{:<12} {:<14} {:>6.0}  {:>9.1} {:>9.1} {:>9.1}  {:>6.1}%",
            s.system,
            format!("{} ({})", s.system, s.year),
            s.cpu_mhz,
            s.cpu_ns_per_iter,
            s.mem_ns_per_iter,
            s.total_ns_per_iter(),
            s.memory_fraction() * 100.0
        );
        rows.push(vec![
            s.year as f64,
            s.cpu_ns_per_iter,
            s.mem_ns_per_iter,
            s.total_ns_per_iter(),
        ]);
    }

    // The figure, in the terminal (the publishable version is the gnuplot
    // script below).
    let chart = perfeval_harness::AsciiChart::new(
        "SELECT MAX(column): elapsed time per iteration",
        "machine year",
        "ns per iteration",
    )
    .series(
        "CPU",
        series
            .iter()
            .map(|s| (s.year as f64, s.cpu_ns_per_iter))
            .collect(),
    )
    .series(
        "Memory",
        series
            .iter()
            .map(|s| (s.year as f64, s.mem_ns_per_iter))
            .collect(),
    )
    .series(
        "Total",
        series
            .iter()
            .map(|s| (s.year as f64, s.total_ns_per_iter()))
            .collect(),
    );
    println!("\n{}", chart.render());

    let first = series.first().expect("five machines");
    let fastest_clock = series
        .iter()
        .max_by(|a, b| a.cpu_mhz.partial_cmp(&b.cpu_mhz).expect("finite"))
        .expect("five machines");
    let clock_gain = fastest_clock.cpu_mhz / first.cpu_mhz;
    let scan_gain = first.total_ns_per_iter() / fastest_clock.total_ns_per_iter();
    println!(
        "\nclock improved {clock_gain:.0}x (1992 -> {}), scan improved only {scan_gain:.1}x",
        fastest_clock.year
    );
    println!("the counters explain it: the late machines spend most time in memory —");
    for s in &series {
        let dram = s.counters.get("dram_access");
        println!(
            "  {:<12} dram accesses/iteration: {:.2}",
            s.system,
            dram as f64 / s.iterations as f64
        );
    }

    assert!(clock_gain >= 10.0);
    assert!(
        scan_gain < 3.0,
        "10x clock must NOT give 10x scan (got {scan_gain:.1}x)"
    );
    assert!(series[3].memory_fraction() > 0.8, "Alpha is memory-bound");
    assert!(
        series[0].memory_fraction() < 0.65,
        "Sun LX is still CPU-heavy"
    );

    if let Ok(dir) = std::env::var("PERFEVAL_OUT") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create PERFEVAL_OUT dir {}: {e}", dir.display()));
        write_csv(
            &dir.join("memory_wall.csv"),
            &["year", "cpu_ns", "mem_ns", "total_ns"],
            &rows,
        )
        .expect("write csv");
        GnuplotScript::new(
            "SELECT MAX(column): elapsed time per iteration",
            "machine year",
            "elapsed time per iteration (ns)",
            "memory_wall.eps",
        )
        .series(perfeval_harness::gnuplot::Series {
            data_file: "memory_wall.csv".into(),
            x_col: 1,
            y_col: 2,
            title: "CPU".into(),
        })
        .series(perfeval_harness::gnuplot::Series {
            data_file: "memory_wall.csv".into(),
            x_col: 1,
            y_col: 3,
            title: "Memory".into(),
        })
        .write_to(&dir.join("memory_wall.gnu"))
        .expect("write gnuplot");
        println!("\nwrote {}/memory_wall.{{csv,gnu}}", dir.display());
    }
}
