//! E6/E7 — the 2² worked example and the sign-table method (slides 70–85).
//!
//! Paper's numbers: memory size (A) × cache size (B) on a workstation, MIPS
//! responses 15/45/25/75, solved to `y = 40 + 20·xA + 10·xB + 5·xA·xB`,
//! then the allocation-of-variation formulas `SST = 2² Σ q²`.

use perfeval_bench::{banner, bench_props, threads_knob};
use perfeval_core::effects::estimate_effects;
use perfeval_core::runner::{Assignment, Runner};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation;
use perfeval_exec::ParallelRunner;
use perfeval_trace::{chrome_trace_json, validate_chrome, Tracer};

fn main() {
    banner(
        "E6: 2^2 factorial design, sign-table method",
        "slides 70-85",
    );

    println!("Performance in MIPS:");
    println!("  cache \\ memory   4MB   16MB");
    println!("  1KB               15     45");
    println!("  2KB               25     75\n");

    let design = TwoLevelDesign::full(&["A", "B"]);
    println!("sign table (standard order):");
    print!("{}", design.render());

    let y = [15.0, 45.0, 25.0, 75.0];
    let model = estimate_effects(&design, &y).expect("responses match design");
    println!("\nfitted model: {}", model.render());
    println!("paper:        y = 40 + 20·xA + 10·xB + 5·xA·xB");

    assert_eq!(model.coefficient(&[]).expect("q0"), 40.0);
    assert_eq!(model.coefficient(&["A"]).expect("qA"), 20.0);
    assert_eq!(model.coefficient(&["B"]).expect("qB"), 10.0);
    assert_eq!(model.coefficient(&["A", "B"]).expect("qAB"), 5.0);

    // Interpretation line from slide 72.
    println!(
        "\ninterpretation: the mean is {}; the effect of memory is {} MIPS; \
         the effect of cache is {} MIPS;\nthe interaction between memory and \
         cache accounts for {} MIPS.",
        model.mean(),
        model.coefficient(&["A"]).expect("qA"),
        model.coefficient(&["B"]).expect("qB"),
        model.coefficient(&["A", "B"]).expect("qAB"),
    );

    // Allocation of variation (slides 81-85).
    let table = allocate_variation(&design, &y).expect("responses match design");
    println!("\nallocation of variation (SST = 2^2·(qA² + qB² + qAB²)):");
    print!("{}", table.render());
    let expected_sst = 4.0 * (400.0 + 100.0 + 25.0);
    assert!((table.sst - expected_sst).abs() < 1e-9);
    println!("SST = {}", table.sst);

    // The model reproduces every observation (2^k coefficients, 2^k
    // observations).
    for (r, &want) in y.iter().enumerate() {
        let got = model.predict(&design.run_signs(r));
        assert!((got - want).abs() < 1e-12);
    }
    println!("\nmodel reproduces all four observations exactly.");

    // Re-derive the table by *running* the fitted workstation model through
    // the scheduler (-Dthreads=N): parallel execution must reproduce the
    // paper's numbers bit-identically, or parallelism has become a factor.
    let threads = threads_knob(&bench_props());
    let workstation = |a: &Assignment| {
        40.0 + 20.0 * a.num("A").unwrap()
            + 10.0 * a.num("B").unwrap()
            + 5.0 * a.num("A").unwrap() * a.num("B").unwrap()
    };
    let runner = Runner::new(1);
    let parallel = runner.run_two_level_parallel(&design, &workstation, threads);
    assert_eq!(parallel, runner.run_two_level_sync(&design, &workstation));
    assert_eq!(parallel.means(), y.to_vec());
    println!("parallel re-run on {threads} thread(s) is bit-identical to serial.");

    // Traced re-run: record the sweep's span timeline and export it as
    // Chrome trace-event JSON (load the file in Perfetto / chrome://tracing
    // to see queue-wait vs run time per unit, per worker lane).
    let spinning = |a: &Assignment| {
        // ~1 ms of spin per unit so every worker demonstrably picks up
        // work. Seeded from the assignment so the loop cannot be
        // constant-folded into a compile-time result.
        let mut acc = a.num("A").unwrap().to_bits() | 1;
        for i in 0..1_500_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        workstation(a)
    };
    let tracer = Tracer::new();
    let traced = Runner::new(8).run_two_level_parallel_traced(&design, &spinning, threads, &tracer);
    assert_eq!(
        traced.means(),
        y.to_vec(),
        "tracing must not perturb results"
    );

    let trace = tracer.snapshot();
    let json = chrome_trace_json(&trace);
    let summary = validate_chrome(&json).expect("exported trace is well-formed");
    let out = std::env::var("PERFEVAL_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    std::fs::create_dir_all(&out).expect("output dir");
    let path = out.join("exp_e6_twok.trace.json");
    std::fs::write(&path, &json).expect("write trace");

    let unit_lanes = summary
        .names_by_tid
        .values()
        .filter(|names| names.iter().any(|n| n.starts_with("unit ")))
        .count();
    println!(
        "\ntraced re-run: {} spans on {} lane(s) -> {}",
        summary.spans,
        summary.thread_names.len(),
        path.display()
    );
    if threads >= 2 {
        assert!(
            unit_lanes >= 2,
            "expected unit spans on >=2 worker lanes, got {unit_lanes}"
        );
        println!("unit spans recorded on {unit_lanes} worker lanes (queue-wait + run children).");
    }
}
