//! E6/E7 — the 2² worked example and the sign-table method (slides 70–85).
//!
//! Paper's numbers: memory size (A) × cache size (B) on a workstation, MIPS
//! responses 15/45/25/75, solved to `y = 40 + 20·xA + 10·xB + 5·xA·xB`,
//! then the allocation-of-variation formulas `SST = 2² Σ q²`.

use perfeval_bench::{banner, bench_props, threads_knob};
use perfeval_core::effects::estimate_effects;
use perfeval_core::runner::{Assignment, Runner};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation;
use perfeval_exec::ParallelRunner;

fn main() {
    banner(
        "E6: 2^2 factorial design, sign-table method",
        "slides 70-85",
    );

    println!("Performance in MIPS:");
    println!("  cache \\ memory   4MB   16MB");
    println!("  1KB               15     45");
    println!("  2KB               25     75\n");

    let design = TwoLevelDesign::full(&["A", "B"]);
    println!("sign table (standard order):");
    print!("{}", design.render());

    let y = [15.0, 45.0, 25.0, 75.0];
    let model = estimate_effects(&design, &y).expect("responses match design");
    println!("\nfitted model: {}", model.render());
    println!("paper:        y = 40 + 20·xA + 10·xB + 5·xA·xB");

    assert_eq!(model.coefficient(&[]).expect("q0"), 40.0);
    assert_eq!(model.coefficient(&["A"]).expect("qA"), 20.0);
    assert_eq!(model.coefficient(&["B"]).expect("qB"), 10.0);
    assert_eq!(model.coefficient(&["A", "B"]).expect("qAB"), 5.0);

    // Interpretation line from slide 72.
    println!(
        "\ninterpretation: the mean is {}; the effect of memory is {} MIPS; \
         the effect of cache is {} MIPS;\nthe interaction between memory and \
         cache accounts for {} MIPS.",
        model.mean(),
        model.coefficient(&["A"]).expect("qA"),
        model.coefficient(&["B"]).expect("qB"),
        model.coefficient(&["A", "B"]).expect("qAB"),
    );

    // Allocation of variation (slides 81-85).
    let table = allocate_variation(&design, &y).expect("responses match design");
    println!("\nallocation of variation (SST = 2^2·(qA² + qB² + qAB²)):");
    print!("{}", table.render());
    let expected_sst = 4.0 * (400.0 + 100.0 + 25.0);
    assert!((table.sst - expected_sst).abs() < 1e-9);
    println!("SST = {}", table.sst);

    // The model reproduces every observation (2^k coefficients, 2^k
    // observations).
    for (r, &want) in y.iter().enumerate() {
        let got = model.predict(&design.run_signs(r));
        assert!((got - want).abs() < 1e-12);
    }
    println!("\nmodel reproduces all four observations exactly.");

    // Re-derive the table by *running* the fitted workstation model through
    // the scheduler (-Dthreads=N): parallel execution must reproduce the
    // paper's numbers bit-identically, or parallelism has become a factor.
    let threads = threads_knob(&bench_props());
    let workstation = |a: &Assignment| {
        40.0 + 20.0 * a.num("A").unwrap()
            + 10.0 * a.num("B").unwrap()
            + 5.0 * a.num("A").unwrap() * a.num("B").unwrap()
    };
    let runner = Runner::new(1);
    let parallel = runner.run_two_level_parallel(&design, &workstation, threads);
    assert_eq!(parallel, runner.run_two_level_sync(&design, &workstation));
    assert_eq!(parallel.means(), y.to_vec());
    println!("parallel re-run on {threads} thread(s) is bit-identical to serial.");
}
