//! E20 — fault robustness: the execution stack under injected failure.
//!
//! The tutorial's repeatability chapter assumes the sweep *finishes*. Real
//! sweeps die at 3 a.m.: a unit segfaults, a driver hangs, a cache file is
//! half-written. This exhibit injects those failures deterministically
//! (`perfeval-fault`) and shows what the hardened scheduler does about
//! each:
//!
//! * **transient faults + retries** — every unit recovers, and the
//!   assembled response table and effect estimates are *bit-identical* to
//!   the fault-free sweep (a retry is a re-measurement from the same seed,
//!   not a different experiment);
//! * **persistent panics** — the sweep completes anyway, quarantines the
//!   failing cells, and reports a PARTIAL table honestly instead of
//!   fabricating one;
//! * **hangs** — a watchdog lane cancels units past their wall-clock
//!   deadline; the hung cell becomes `timed_out`, the rest still measure.
//!
//! The response is a synthetic pure function of (assignment, replicate) —
//! not a timing — so bit-identity is checkable exactly, on any machine.
//! Fault schedules are a pure function of `(site, key, attempt, seed)`:
//! rerun with the same `-Dfaultseed` and the same cells fail, on any
//! thread count. `--smoke` shrinks replication for CI.

use perfeval_bench::banner;
use perfeval_core::effects::estimate_effects_replicated;
use perfeval_core::runner::{two_level_assignments, Assignment, SyncExperiment};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_exec::{EnvFingerprint, ResultCache, RetryPolicy, RunPlan, Scheduler, UnitOutcome};
use perfeval_fault::{FaultAction, FaultRegistry, TimeoutSignal, Trigger};
use perfeval_measure::protocol::RunProtocol;
use perfeval_trace::{chrome_trace_json, validate_chrome, Tracer};
use std::sync::Arc;

/// Root seed of every plan in this exhibit (recorded: the whole sweep
/// replays bit-identically from it).
const ROOT_SEED: u64 = 20090324;

/// The synthetic system under test: a pure function of the assignment and
/// the replicate index. Deliberately not a timing — the point of this
/// exhibit is failure semantics, and a closed-form response makes
/// "bit-identical after recovery" an exact assertion instead of a hope.
struct Synthetic;

impl SyncExperiment for Synthetic {
    fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
        let b = a.num("B").expect("factor B");
        let c = a.num("C").expect("factor C");
        let v = a.num("V").expect("factor V");
        // Known effect model + deterministic per-replicate wobble.
        let wobble = ((replicate as u64).wrapping_mul(7919) % 13) as f64 * 0.01;
        100.0 - 30.0 * b - 12.0 * c - 5.0 * v + 4.0 * b * c + wobble
    }
}

/// Silences the default panic printout for *injected* panics only —
/// hundreds of intentional backtraces would bury the exhibit's output.
/// Genuine failures (assertions, bugs) still print through the old hook.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info.payload().downcast_ref::<TimeoutSignal>().is_some()
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected fault"))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));
}

fn main() {
    quiet_injected_panics();
    banner(
        "E20: fault injection and failure-contained execution",
        "the repeatability discipline, extended to sweeps that fail",
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props =
        perfeval_harness::Properties::with_defaults(&[("threads", "4"), ("faultseed", "1")]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let threads = perfeval_bench::threads_knob(&props);
    let faultseed = props
        .get_u64("faultseed")
        .expect("-Dfaultseed must be a number")
        .unwrap_or(1);

    let reps = if smoke { 2 } else { 4 };
    let design = TwoLevelDesign::full(&["B", "C", "V"]);
    let plan = RunPlan::expand(
        two_level_assignments(&design),
        RunProtocol::hot(0, reps),
        ROOT_SEED,
    );
    let env = EnvFingerprint::simulated("e20-fault-robustness");
    println!(
        "design: 2^3 (B, C, V), {} — threads={threads}, faultseed={faultseed}{}\n",
        plan.describe(),
        if smoke { ", --smoke" } else { "" }
    );

    // ---- arm 0: the fault-free baseline --------------------------------
    let clean = Scheduler::new(threads).execute_contained(
        &plan,
        &Synthetic,
        &ResultCache::disabled(),
        &env,
        None,
    );
    assert!(clean.is_complete(), "clean sweep completes");
    let clean_table = clean.table.as_ref().expect("clean table assembles");
    let clean_effects =
        estimate_effects_replicated(&design, &clean_table.replicates).expect("effects estimable");
    println!("arm 0 — fault-free baseline:");
    println!("  model: {}", clean_effects.render());

    // ---- arm 1: transient faults, recovered by retries -----------------
    // A seeded ~40% of units panic on attempts 1–2 and succeed on attempt
    // 3. With two retries granted, the sweep must complete and match the
    // baseline bit for bit: same unit seeds, same pure response.
    let transient = Arc::new(FaultRegistry::new(faultseed).armed_transient(
        "exec.unit.run",
        Trigger::Seeded {
            permille: 400,
            seed: faultseed,
        },
        3,
        FaultAction::Panic,
    ));
    let recovered = Scheduler::new(threads)
        .with_policy(RetryPolicy::retries(2))
        .with_faults(Arc::clone(&transient))
        .execute_contained(&plan, &Synthetic, &ResultCache::disabled(), &env, None);
    assert!(recovered.is_complete(), "retries absorb transient faults");
    let recovered_table = recovered.table.as_ref().expect("recovered table assembles");
    assert_eq!(
        recovered_table, clean_table,
        "recovered sweep must be bit-identical to the fault-free one"
    );
    let recovered_effects = estimate_effects_replicated(&design, &recovered_table.replicates)
        .expect("effects estimable");
    for factor in ["B", "C", "V"] {
        let a = clean_effects.coefficient(&[factor]).expect("coefficient");
        let b = recovered_effects
            .coefficient(&[factor])
            .expect("coefficient");
        assert_eq!(a.to_bits(), b.to_bits(), "effect {factor} drifted");
    }
    println!("\narm 1 — transient panics (seeded, ~40% of units, 2 retries granted):");
    println!(
        "  {} unit(s) retried, {} extra attempt(s), {} fault(s) fired — sweep complete,",
        recovered.report.retried(),
        recovered.report.retries,
        transient.fired("exec.unit.run"),
    );
    println!("  response table and every effect estimate bit-identical to arm 0.");

    // ---- arm 2: persistent panics, quarantined and reported ------------
    // Units with index % 7 == 3 panic on *every* attempt: no retry budget
    // saves them. The sweep still completes, accounts for every cell, and
    // refuses to assemble a table it cannot stand behind.
    let persistent = Arc::new(FaultRegistry::new(faultseed).armed_always(
        "exec.unit.run",
        Trigger::KeyModulo {
            modulus: 7,
            remainder: 3,
        },
        FaultAction::Panic,
    ));
    let partial = Scheduler::new(threads)
        .with_policy(RetryPolicy::retries(1))
        .with_faults(persistent)
        .execute_contained(&plan, &Synthetic, &ResultCache::disabled(), &env, None);
    assert!(
        !partial.is_complete(),
        "persistent faults cannot be retried away"
    );
    assert!(
        partial.table.is_none(),
        "a partial sweep never assembles a table"
    );
    assert_eq!(
        partial.report.units.len(),
        plan.unit_count(),
        "every cell gets an outcome, measured or not"
    );
    assert!(
        partial.report.quarantined.iter().all(|&u| u % 7 == 3),
        "exactly the armed cells fail"
    );
    println!("\narm 2 — persistent panics (unit index % 7 == 3, every attempt):");
    for line in partial.report.render_lines() {
        println!("  {line}");
    }

    // ---- arm 3: a hang, cancelled by the watchdog ----------------------
    // One unit hangs far past any patience; a 50 ms per-unit deadline and
    // the watchdog lane turn it into `timed_out` while its neighbors
    // measure normally. Traced, so the cancellation is visible.
    let hang_plan = RunPlan::expand(
        two_level_assignments(&TwoLevelDesign::full(&["B"])),
        RunProtocol::hot(0, 1),
        ROOT_SEED,
    );
    struct OneFactor;
    impl SyncExperiment for OneFactor {
        fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
            10.0 + a.num("B").expect("factor B") + replicate as f64
        }
    }
    let hangs = Arc::new(FaultRegistry::new(faultseed).armed_always(
        "exec.unit.run",
        Trigger::Key(1),
        FaultAction::Hang { ms: 30_000.0 },
    ));
    let tracer = Tracer::new();
    let t0 = std::time::Instant::now();
    let hung = Scheduler::new(2)
        .with_policy(RetryPolicy::default().with_deadline_ms(50.0))
        .with_faults(hangs)
        .execute_contained_traced(
            &hang_plan,
            &OneFactor,
            &ResultCache::disabled(),
            &env,
            None,
            Some(&tracer),
        );
    let wall = t0.elapsed();
    assert!(
        wall.as_secs() < 10,
        "watchdog must cancel a 30 s hang under a 50 ms deadline"
    );
    assert_eq!(hung.report.units[1].outcome, UnitOutcome::TimedOut);
    assert_eq!(hung.report.units[0].outcome, UnitOutcome::Measured);
    let trace = tracer.snapshot();
    assert!(
        trace.lanes.iter().any(|l| l.label == "watchdog"),
        "watchdog lane recorded"
    );
    assert!(trace.find("deadline-fired").count() >= 1);
    assert!(trace.count_attr("outcome", "timed_out") >= 1);
    println!("\narm 3 — a 30 s hang under a 50 ms per-unit deadline:");
    println!(
        "  cancelled in {:.0} ms wall; outcomes: {:?}; {} deadline-fired span(s) on the watchdog lane.",
        wall.as_secs_f64() * 1e3,
        hung.report
            .units
            .iter()
            .map(|u| u.outcome.label())
            .collect::<Vec<_>>(),
        trace.find("deadline-fired").count(),
    );

    // Export the traced hang for inspection — the watchdog lane and the
    // cancelled unit are visible in any Chrome-trace viewer.
    let json = chrome_trace_json(&trace);
    let summary = validate_chrome(&json).expect("exported trace is well-formed");
    let out = std::env::var("PERFEVAL_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    std::fs::create_dir_all(&out).expect("output dir");
    let path = out.join("exp_e20_fault_robustness.trace.json");
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "  trace: {} spans on {} lane(s) -> {}",
        summary.spans,
        summary.thread_names.len(),
        path.display()
    );

    println!(
        "\nverdict: panics and hangs are per-unit *outcomes*, not sweep killers; \
         retried cells reproduce bit-identically; partial sweeps say so."
    );
}
