//! `minidb-bench` — run the pinned perf-trajectory suite and gate against
//! a committed baseline.
//!
//! ```text
//! minidb-bench run [--smoke] [--out PATH] [--replicates N] [--data-dir DIR]
//! minidb-bench compare --baseline PATH [--head PATH] [--smoke]
//!                      [--tolerance F] [--level F] [--data-dir DIR]
//! ```
//!
//! `run` measures the suite (four workloads × DBG/OPT/SIMD, replicated,
//! interleaved) and writes the JSON measurement — the file that gets
//! committed as `BENCH_<pr>.json` at the repository root.
//!
//! `--data-dir DIR` (also spelled `-Ddata_dir=DIR`) measures a
//! **disk-backed** catalog: the suite data is persisted into `DIR` as
//! real segment files (once; reused when a manifest already exists) and
//! reopened through the `perfeval-store` buffer pool. Committed
//! baselines are in-memory, so only compare a disk-backed head against
//! a disk-backed baseline — the two protocols measure different things.
//!
//! `compare` reads the committed baseline and either a `--head` file or a
//! fresh live measurement, forms Kalibera–Jones confidence intervals on
//! each cell's head/baseline ratio, prints the table, and **exits
//! nonzero** when any regression's CI clears the tolerance — this is the
//! CI perf gate. `--smoke` trims the replicate count and widens the
//! default tolerance (25% instead of 10%), because a shared CI runner is
//! a noisy lab bench; a live head always runs at the baseline's scale
//! factor so the two sides stay commensurable.

use perfeval_bench::trajectory::{
    compare, read_file, render_report, run_suite, write_file, RunConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    smoke: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    head: Option<PathBuf>,
    report: Option<PathBuf>,
    replicates: Option<usize>,
    tolerance: Option<f64>,
    level: f64,
    data_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  minidb-bench run [--smoke] [--out PATH] [--replicates N] \
         [--data-dir DIR]\n  \
         minidb-bench compare --baseline PATH [--head PATH] [--smoke] \
         [--tolerance F] [--level F] [--report PATH] [--data-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        smoke: false,
        out: None,
        baseline: None,
        head: None,
        report: None,
        replicates: None,
        tolerance: None,
        level: 0.95,
        data_dir: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let path_arg = |it: &mut std::slice::Iter<String>| -> PathBuf {
            PathBuf::from(it.next().unwrap_or_else(|| usage()))
        };
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--out" => o.out = Some(path_arg(&mut it)),
            "--baseline" => o.baseline = Some(path_arg(&mut it)),
            "--head" => o.head = Some(path_arg(&mut it)),
            "--report" => o.report = Some(path_arg(&mut it)),
            "--replicates" => {
                o.replicates = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--tolerance" => {
                o.tolerance = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--level" => {
                o.level = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--data-dir" => o.data_dir = Some(path_arg(&mut it)),
            s if s.starts_with("-Ddata_dir=") => {
                o.data_dir = Some(PathBuf::from(&s["-Ddata_dir=".len()..]))
            }
            _ => usage(),
        }
    }
    o
}

fn config_of(o: &Options) -> RunConfig {
    let mut cfg = if o.smoke {
        RunConfig::smoke()
    } else {
        RunConfig::full()
    };
    if let Some(r) = o.replicates {
        cfg.replicates = r.max(2); // effect-size CIs need at least 2
    }
    cfg.data_dir = o.data_dir.clone();
    cfg
}

fn cmd_run(o: &Options) -> ExitCode {
    let cfg = config_of(o);
    eprintln!(
        "measuring trajectory suite: sf={}, {} replicates per cell ...",
        cfg.scale_factor, cfg.replicates
    );
    let file = run_suite(cfg);
    match &o.out {
        Some(path) => {
            write_file(&file, path);
            eprintln!("wrote {}", path.display());
        }
        None => print!("{}", perfeval_bench::trajectory::to_json(&file)),
    }
    ExitCode::SUCCESS
}

fn cmd_compare(o: &Options) -> ExitCode {
    let Some(baseline_path) = &o.baseline else {
        usage()
    };
    let baseline = match read_file(baseline_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let head = match &o.head {
        Some(path) => match read_file(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut cfg = config_of(o);
            // A live head is only comparable to the baseline over the same
            // data, so it inherits the baseline's scale factor; `--smoke`
            // then trims replicates and widens the tolerance instead of
            // shrinking the data (which would hide regressions behind an
            // across-the-board fake speedup).
            cfg.scale_factor = baseline.scale_factor;
            eprintln!(
                "measuring head live: sf={}, {} replicates per cell ...",
                cfg.scale_factor, cfg.replicates
            );
            run_suite(cfg)
        }
    };
    // A shared CI runner is noisier than a quiet lab machine; the smoke
    // gate widens the tolerance accordingly.
    let tolerance = o.tolerance.unwrap_or(if o.smoke { 0.25 } else { 0.10 });
    let report = match compare(&head, &baseline, o.level, tolerance) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", render_report(&report));
    if let Some(path) = &o.report {
        let doc = markdown_report(&report, &head, baseline_path, tolerance, o.level);
        std::fs::write(path, doc)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
    if report.passes() {
        println!(
            "gate: PASS ({} cells, tolerance {:.0}%, level {:.0}%)",
            report.rows.len(),
            tolerance * 100.0,
            o.level * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "gate: FAIL ({} regression(s), {} missing cell(s))",
            report.regressions(),
            report.missing_in_head.len()
        );
        ExitCode::FAILURE
    }
}

/// Builds the full Markdown experiment report around the gate comparison
/// (environment, protocol, config — the documentation contract), so a
/// perf-gate run leaves the same audit trail as any other experiment.
fn markdown_report(
    report: &perfeval_bench::trajectory::CompareReport,
    head: &perfeval_bench::trajectory::BenchFile,
    baseline_path: &std::path::Path,
    tolerance: f64,
    level: f64,
) -> String {
    use perfeval_bench::trajectory::Verdict;
    use perfeval_harness::{BenchRow, BenchSection, Properties, Report, ResultTable};
    let section = BenchSection {
        baseline: baseline_path.display().to_string(),
        tolerance,
        level,
        same_host: report.same_host,
        rows: report
            .rows
            .iter()
            .map(|r| BenchRow {
                id: r.id.clone(),
                baseline_ms: r.baseline_ms,
                head_ms: r.head_ms,
                effect: r.effect.effect,
                verdict: match r.verdict {
                    Verdict::Regression => "REGRESSION",
                    Verdict::Improvement => "improvement",
                    Verdict::Unchanged => "ok",
                }
                .to_owned(),
            })
            .collect(),
        missing: report.missing_in_head.clone(),
    };
    let mut table = ResultTable::new("head measurements (server user time)", "ms");
    for r in &head.records {
        table.row(&r.id, r.replicates_ms.clone());
    }
    let mut props = Properties::new();
    props.set("tolerance", &format!("{tolerance}"));
    props.set("level", &format!("{level}"));
    props.set("baseline", &baseline_path.display().to_string());
    props.set("scale_factor", &format!("{}", head.scale_factor));
    props.set("seed", &format!("{}", head.seed));
    props.set("replicates", &format!("{}", head.replicates));
    let passes = report.passes();
    Report::new(
        "Perf-trajectory gate",
        "no engine cell may regress past the tolerance with its CI",
    )
    .environment(perfeval_measure::EnvSpec::capture())
    .software(perfeval_measure::SoftwareSpec::new(
        "minidb",
        env!("CARGO_PKG_VERSION"),
        "this repository",
        "pinned trajectory suite, interleaved replicates",
    ))
    .protocol(
        "one warmup per cell, then replicate r of every cell before \
         replicate r+1 of any; Kalibera-Jones CI on head/baseline per cell",
    )
    .config(props)
    .table(table)
    .bench(section)
    .conclusions(if passes {
        "no cell regressed past the tolerance."
    } else {
        "the gate failed; see the trajectory table."
    })
    .render()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let o = parse_options(&args[1..]);
    match cmd.as_str() {
        "run" => cmd_run(&o),
        "compare" => cmd_compare(&o),
        _ => usage(),
    }
}
