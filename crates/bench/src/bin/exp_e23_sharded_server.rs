//! E23 — sharded event loop vs thread-per-connection, swept by connection
//! scale.
//!
//! The server core is an *experiment factor*, not an implementation detail:
//! both cores live behind `Server::builder().mode(..)` and serve
//! bit-identical results, so the only thing this experiment varies is how
//! connections are multiplexed onto cores. Thread-per-connection pays one
//! OS thread (stack, scheduler slot, context switches) per client; the
//! sharded core runs N pinned readiness loops with per-shard session
//! ownership, bounded write queues, and idle-shard work sharing.
//!
//! The sweep crosses mode × connection scale (1×, 10×, 100× a base client
//! count) under a closed-loop light mix — small queries, so per-connection
//! overhead is the signal rather than engine time. Every result is
//! checksummed against serial in-process execution; tails are
//! coordinated-omission-safe with Kalibera–Jones CIs (one estimate per
//! replicated run, CI over runs); the 2² factorial (mode, conns at
//! 1× vs 100×) gets an allocation of variation on the p99.
//!
//! `--smoke` shrinks scale and requests for CI; the full run additionally
//! asserts the tentpole claim — at 100× connections the sharded core
//! achieves at least thread-per-connection throughput.

use std::sync::Arc;

use minidb::{Catalog, Session};
use minidb_net::{LoopbackEndpoint, Server, ServerMode, Transport, DEFAULT_QUEUE_DEPTH};
use perfeval_bench::{banner, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation_replicated;
use perfeval_harness::{Properties, Report, ResultTable};
use perfeval_load::{expected_checksums, Arrival, Dialer, LoadReport, LoadRunner, LoadSpec};
use perfeval_measure::{EnvSpec, SoftwareSpec};
use workload::queries;

/// Telemetry the sharded core exposes that thread-per-conn cannot.
struct ArmTelemetry {
    steal_borrows: u64,
    write_queue_peak: u64,
    compat_conns: u64,
}

/// Runs one load arm against a fresh loopback server in `mode`.
fn run_arm(
    catalog: &Catalog,
    spec: LoadSpec,
    mode: ServerMode,
    reps: usize,
) -> (LoadReport, ArmTelemetry) {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server_catalog = catalog.clone();
    let server = Server::builder()
        .transport(ep)
        .mode(mode)
        .serve(move || Session::new(server_catalog.clone()));
    let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
    let report = LoadRunner::new(spec.clone(), dialer)
        .expecting(expected_checksums(catalog.clone(), &spec.mix))
        .run_replicated(reps);
    let telemetry = ArmTelemetry {
        steal_borrows: server.steal_borrows(),
        write_queue_peak: server.write_queue_peak(),
        compat_conns: server.compat_conns(),
    };
    server.shutdown();
    assert!(
        report.is_complete(),
        "arm {}: {} error(s), {} dropped, {} checksum mismatch(es)",
        spec.name,
        report.errors,
        report.dropped_sessions,
        report.checksum_mismatches
    );
    (report, telemetry)
}

fn tail_line(r: &LoadReport) -> String {
    let ci = |i: usize| match r.tail_ci(i, 0.95) {
        Ok(ci) => format!("{:.2} [{:.2},{:.2}]", ci.estimate, ci.lower, ci.upper),
        Err(_) => "n/a".to_owned(),
    };
    format!("p50 {}  p99 {}  p99.9 {}", ci(0), ci(2), ci(3))
}

fn main() {
    banner(
        "E23: sharded server core vs thread-per-connection",
        "ROADMAP: the server core as an experiment factor",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[
        ("reps", "3"),
        ("requests", "1200"),
        ("base_clients", "4"),
        ("shards", "4"),
        ("think_ms", "0.5"),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let reps = if smoke {
        2
    } else {
        props.get_u64("reps").expect("-Dreps").unwrap_or(3).max(2) as usize
    };
    let requests = if smoke {
        240
    } else {
        props
            .get_u64("requests")
            .expect("-Drequests")
            .unwrap_or(1200)
            .max(200) as usize
    };
    let base = props
        .get_u64("base_clients")
        .expect("-Dbase_clients")
        .unwrap_or(4)
        .max(1) as usize;
    let shards = props
        .get_u64("shards")
        .expect("-Dshards")
        .unwrap_or(4)
        .max(1) as usize;
    let think_ms = props
        .get_f64("think_ms")
        .expect("-Dthink_ms")
        .unwrap_or(0.5);

    // Light mix + small catalog: service time stays tiny, so the cost of
    // *holding and scheduling connections* is what the sweep measures.
    let catalog = catalog_at(if smoke {
        BENCH_SCALE_FACTOR / 4.0
    } else {
        BENCH_SCALE_FACTOR
    });
    let mix = vec![queries::q6(), queries::family(4)];
    // 100× thread-per-conn means `base * 100` OS threads; --smoke halves
    // the top scale to stay friendly to small CI runners.
    let scales: [usize; 3] = if smoke { [1, 10, 50] } else { [1, 10, 100] };
    let modes = [
        ServerMode::ThreadPerConn { workers: 1 }, // workers patched per arm
        ServerMode::Sharded {
            shards,
            queue_depth: DEFAULT_QUEUE_DEPTH,
        },
    ];

    println!(
        "\nsweep: 2 modes x {:?} connection scale (base {base}), {reps} reps x {requests} requests\n",
        scales
    );
    println!("  arm                    conns  achieved q/s  tails (ms, 95% CI over runs)");
    let mut table = ResultTable::new("achieved throughput by mode and connection count", "q/s");
    let mut sections = Vec::new();
    // (mode index, scale) → per-run p99 replicates, for the factorial.
    let mut p99_reps: Vec<Vec<f64>> = Vec::new();
    // achieved qps at the top scale, per mode, for the tentpole claim.
    let mut top_scale_qps = [0.0f64; 2];
    for (m, proto) in modes.iter().enumerate() {
        for &scale in &scales {
            let clients = base * scale;
            let mode = match proto {
                ServerMode::ThreadPerConn { .. } => ServerMode::ThreadPerConn {
                    workers: clients + 2,
                },
                other => *other,
            };
            let name = format!("{}/{clients}", mode.describe());
            let spec = LoadSpec::new(
                &name,
                clients,
                requests.max(clients * 2),
                Arrival::Closed { think_ms },
            )
            .mix(mix.clone());
            let (report, tel) = run_arm(&catalog, spec, mode, reps);
            println!(
                "  {name:<22} {clients:>5}  {:>12.1}  {}",
                report.achieved_qps(),
                tail_line(&report)
            );
            if matches!(mode, ServerMode::Sharded { .. }) {
                println!(
                    "  {:<22}        steal borrows {}, write-queue peak {}, compat conns {}",
                    "", tel.steal_borrows, tel.write_queue_peak, tel.compat_conns
                );
                assert_eq!(
                    tel.compat_conns, 0,
                    "loopback supports readiness; nothing should fall back"
                );
                assert!(
                    tel.write_queue_peak <= (DEFAULT_QUEUE_DEPTH + 2) as u64,
                    "write queues stay bounded under load"
                );
            }
            if scale == scales[scales.len() - 1] {
                top_scale_qps[m] = report.achieved_qps();
            }
            if scale == scales[0] || scale == scales[scales.len() - 1] {
                p99_reps.push(report.runs.iter().map(|run| run.tail_ms[2]).collect());
            }
            table.row(&name, report.achieved_qps_runs());
            sections.push(report.to_section());
        }
    }

    // ---- 2^2 factorial: mode x conns (1x vs 100x), response = p99 ----
    // Arm order above is (threaded,1x),(threaded,100x),(sharded,1x),
    // (sharded,100x); the design's standard order is (-,-),(+,-),(-,+),(+,+)
    // with factor 0 = mode and factor 1 = conns.
    let design = TwoLevelDesign::full(&["mode", "conns"]);
    let ordered = vec![
        p99_reps[0].clone(), // threaded, 1x
        p99_reps[2].clone(), // sharded, 1x
        p99_reps[1].clone(), // threaded, 100x
        p99_reps[3].clone(), // sharded, 100x
    ];
    let aov = allocate_variation_replicated(&design, &ordered).expect("responses match design");
    println!("\nallocation of variation (response = p99 intended-time latency, ms):");
    print!("{}", aov.render());
    let ranked = aov.ranked_effects();
    println!(
        "largest effect on tail latency: {} ({:.1}% of variation)\n",
        ranked[0].0,
        ranked[0].1 * 100.0
    );

    // ---- the tentpole claim, asserted on full runs ----
    let [threaded_top, sharded_top] = top_scale_qps;
    println!(
        "at {}x connections: threaded {threaded_top:.1} q/s vs sharded {sharded_top:.1} q/s \
         ({:+.1}%)",
        scales[scales.len() - 1],
        (sharded_top / threaded_top - 1.0) * 100.0
    );
    if !smoke {
        assert!(
            sharded_top >= threaded_top,
            "sharded must at least match thread-per-conn at the top connection scale \
             (threaded {threaded_top:.1} q/s, sharded {sharded_top:.1} q/s)"
        );
    }

    // ---- the report: same documentation contract as every experiment ----
    let mut full = Report::new(
        "E23: sharded server core vs thread-per-connection",
        "measure what the connection-multiplexing strategy itself costs, \
         with the server core as a controlled factor",
    )
    .environment(EnvSpec::capture())
    .software(SoftwareSpec::new(
        "minidb + minidb-net + perfeval-load",
        "0.1.0",
        "this repository",
        "release, OPT engine, loopback transport, both server cores",
    ))
    .protocol(
        "replicated closed-loop runs per arm (fresh connections each), \
         coordinated-omission-safe recording, results checksummed against \
         serial execution; identical client harness against both cores",
    )
    .config(props)
    .table(table)
    .conclusions(
        "connection scale, not query weight, separates the cores: at 1x they \
         tie, at 100x the thread-per-connection scheduler tax shows up in \
         throughput and the p99 tail.",
    );
    for s in sections {
        full = full.load(s);
    }
    let missing = full.missing_sections();
    assert!(
        missing.is_empty(),
        "E23's own report fails the documentation contract: {missing:?}"
    );
    println!(
        "report: {} load arm(s), documentation contract satisfied.",
        full.loads.len()
    );

    if smoke {
        println!("\n--smoke: reduced scale/requests; same arms, same invariants.");
    }
    println!(
        "\nconclusion: the server core is a measurable factor. Bit-identical \
         answers from both cores make the comparison honest; bounded write \
         queues and deterministic shard placement make it repeatable."
    );
}
