//! `minidb-load` — drive a minidb server with a measured load.
//!
//! The CLI face of `perfeval-load`: point it at a running `minidb-serve`
//! (or let it host its own loopback server) and it sustains concurrent
//! client sessions under an explicit arrival discipline, reporting
//! offered vs achieved throughput and coordinated-omission-safe tail
//! latencies with confidence intervals over replicated runs.
//!
//! ```text
//! minidb-load -Daddr=127.0.0.1:7878 -Dclients=32 -Darrival=poisson -Drate=2000
//! minidb-load -Dclients=64 -Darrival=closed -Dthink_ms=1 -Dreps=3   # self-hosted
//! minidb-load --smoke                                               # CI self-test
//! ```
//!
//! Knobs (`-Dkey=value`): `addr` (TCP server to target; empty =
//! self-host a loopback TCP server), `clients`, `requests` (total per
//! run), `arrival` (`closed` | `poisson` | `paced`), `rate` (total
//! offered q/s, open loop), `think_ms` (mean think time, closed loop),
//! `reps` (replicated runs — CIs need ≥ 2), `mix` (`light` | `heavy` |
//! `full`), `sf` (catalog scale factor — must match the server's when
//! targeting a remote, since result checksums are computed locally),
//! `verify` (check result checksums against serial execution),
//! `server_mode` (`sharded` | `threaded` — which core the self-hosted
//! server runs; ignored when `addr` targets a remote), `data_dir`
//! (self-host from **disk-backed** segments: the catalog is persisted
//! into this directory once and reopened through the `perfeval-store`
//! buffer pool; ignored when targeting a remote).
//!
//! Overload etiquette knobs: `-Dretry=N` allows N seeded-backoff retries
//! per request after a server rejection or a dead connection (default 1:
//! the classic reconnect-and-retry-once containment); `-Ddeadline_ms=N`
//! stamps every `Query` header with a deadline the server enforces by
//! cooperative cancellation — and in an open loop the runner also sheds
//! requests whose deadline expired before they could be sent (`0` =
//! none). Retries, typed rejections, and give-ups are first-class report
//! lines, never silently folded into latency.
//!
//! `--smoke` self-hosts and runs three arms: one closed-loop and one
//! open-loop arm with verified answers (the open arm under `-Dretry` /
//! `-Ddeadline_ms` etiquette), then drains the server and proves a
//! rejected-everywhere arm retries, trips the breaker, and gives up
//! cleanly — no hangs, no errors, no dropped sessions. The smoke server
//! always serves a **persisted-and-reopened** catalog, so the checksum
//! verification doubles as a persist → reopen bit-identity proof: the
//! expected checksums come from in-memory execution, the answers from
//! disk-backed segments. Exits 0.

use std::path::PathBuf;
use std::sync::Arc;

use minidb::{Catalog, Session};
use minidb_net::{BackoffPolicy, Server, ServerMode, TcpEndpoint, TcpTransport, Transport};
use perfeval_bench::{banner, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_harness::Properties;
use perfeval_load::{expected_checksums, Arrival, Dialer, LoadRunner, LoadSpec};
use workload::queries;

fn mix_named(name: &str) -> Vec<String> {
    match name {
        "light" => vec![queries::q6(), queries::family(4)],
        "heavy" => vec![queries::q1()],
        "full" => vec![queries::q1(), queries::q6(), queries::q16()],
        other => panic!("-Dmix must be light|heavy|full, got {other:?}"),
    }
}

fn dial(addr: &str) -> Dialer {
    let target = addr.to_owned();
    Arc::new(move || Ok(Box::new(TcpTransport::connect(target.as_str())?) as Box<dyn Transport>))
}

fn run(spec: LoadSpec, addr: &str, sf: f64, verify: bool, reps: usize) {
    let mut runner = LoadRunner::new(spec.clone(), dial(addr));
    if verify {
        runner = runner.expecting(expected_checksums(catalog_at(sf), &spec.mix));
    }
    let report = runner.run_replicated(reps);
    println!();
    for line in report.render_lines() {
        println!("{line}");
    }
    let phases = &report.phases;
    println!(
        "phase totals: server {:.1} ms wall ({:.1} ms cpu), serialize {:.1} ms, \
         wire {:.1} ms, sink {:.1} ms — delivery share {:.1}%",
        phases.server_real_ms,
        phases.server_user_ms,
        phases.serialize_ms,
        phases.wire_ms,
        phases.print_ms,
        phases.delivery_share() * 100.0
    );
    assert!(
        report.is_complete(),
        "load arm {} left {} error(s), {} dropped session(s), {} checksum mismatch(es)",
        spec.name,
        report.errors,
        report.dropped_sessions,
        report.checksum_mismatches
    );
}

fn main() {
    banner(
        "minidb-load: the load generator",
        "arrival discipline is a knob, not an accident",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[
        ("addr", ""),
        ("clients", "16"),
        ("requests", "800"),
        ("arrival", "closed"),
        ("rate", "1000"),
        ("think_ms", "1.0"),
        ("reps", "2"),
        ("mix", "light"),
        ("sf", &BENCH_SCALE_FACTOR.to_string()),
        ("verify", "true"),
        ("server_mode", "sharded"),
        ("retry", "1"),
        ("deadline_ms", "0"),
        ("data_dir", ""),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let addr = props.get("addr").unwrap_or("").to_owned();
    let clients = props
        .get_u64("clients")
        .expect("-Dclients")
        .unwrap_or(16)
        .max(1) as usize;
    let requests = props
        .get_u64("requests")
        .expect("-Drequests")
        .unwrap_or(800)
        .max(clients as u64) as usize;
    let rate = props.get_f64("rate").expect("-Drate").unwrap_or(1000.0);
    let think_ms = props
        .get_f64("think_ms")
        .expect("-Dthink_ms")
        .unwrap_or(1.0);
    let reps = props.get_u64("reps").expect("-Dreps").unwrap_or(2).max(1) as usize;
    let sf = props
        .get_f64("sf")
        .expect("-Dsf")
        .unwrap_or(BENCH_SCALE_FACTOR);
    let verify = props.get_bool("verify").expect("-Dverify").unwrap_or(true);
    let retries = props.get_u64("retry").expect("-Dretry").unwrap_or(1) as u32;
    let deadline_ms = props
        .get_u64("deadline_ms")
        .expect("-Ddeadline_ms")
        .unwrap_or(0) as u32;
    // Backoff only matters once retries can collide with a struggling
    // server; keep the default retry immediate (reconnect-and-retry-once)
    // and give multi-retry policies a short seeded jittered ramp.
    let retry_policy = if retries > 1 {
        BackoffPolicy::retries(retries)
            .with_base_ms(0.5)
            .with_cap_ms(8.0)
    } else {
        BackoffPolicy::retries(retries).with_base_ms(0.0)
    };
    let mix = mix_named(props.get("mix").unwrap_or("light"));
    let arrival = match props.get("arrival").unwrap_or("closed") {
        "closed" => Arrival::Closed { think_ms },
        "poisson" => Arrival::OpenPoisson { rate_qps: rate },
        "paced" => Arrival::OpenPaced { rate_qps: rate },
        other => panic!("-Darrival must be closed|poisson|paced, got {other:?}"),
    };

    // Self-host a loopback TCP server unless the user points us at one.
    // `-Dserver_mode=threaded` pits the load against the old
    // thread-per-connection core (workers must cover every client session);
    // the default is the sharded event-driven core.
    let server_mode = match props.get("server_mode").unwrap_or("sharded") {
        "sharded" => ServerMode::default(),
        "threaded" => ServerMode::ThreadPerConn {
            workers: clients.max(8) + 2,
        },
        other => panic!("-Dserver_mode must be sharded|threaded, got {other:?}"),
    };
    let data_dir = props.get("data_dir").unwrap_or("").to_owned();
    // `--smoke` always serves from persisted-and-reopened segments so the
    // checksum verification (expected answers computed in memory) doubles
    // as a persist -> reopen bit-identity proof over the wire.
    let mut smoke_tmp: Option<PathBuf> = None;
    let hosted = if addr.is_empty() || smoke {
        let endpoint = TcpEndpoint::bind("127.0.0.1:0").expect("bind loopback listener");
        let local = endpoint.local_addr().expect("local addr");
        let catalog = if data_dir.is_empty() && !smoke {
            catalog_at(sf)
        } else {
            let root = if data_dir.is_empty() {
                let tmp =
                    std::env::temp_dir().join(format!("minidb_load_smoke_{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&tmp);
                smoke_tmp = Some(tmp.clone());
                tmp
            } else {
                PathBuf::from(&data_dir)
            };
            if !root
                .join(perfeval_store::manifest::CATALOG_MANIFEST)
                .exists()
            {
                catalog_at(sf).persist(&root).expect("persist load catalog");
                println!("persisted sf={sf} catalog into {}", root.display());
            }
            let disk = Catalog::open(&root).expect("reopen persisted catalog");
            println!("serving disk-backed segments from {}", root.display());
            disk
        };
        let server = Server::builder()
            .transport(endpoint)
            .mode(server_mode)
            .serve(move || Session::new(catalog.clone()));
        println!(
            "self-hosted server on {local} ({}, sf={sf}).",
            server_mode.describe()
        );
        Some((server, local.to_string()))
    } else {
        None
    };
    let target = hosted.as_ref().map_or(addr.clone(), |(_, a)| a.clone());

    if smoke {
        // Two tiny arms — one per arrival family — with full verification.
        // The open arm runs under the etiquette knobs: a generous deadline
        // in every Query header plus the retry policy, proving the happy
        // path is untouched by either.
        let closed = LoadSpec::new("smoke/closed/8", 8, 120, Arrival::Closed { think_ms: 0.5 })
            .mix(mix_named("light"));
        run(closed, &target, sf, true, 2);
        let open = LoadSpec::new(
            "smoke/open/4",
            4,
            120,
            Arrival::OpenPoisson { rate_qps: 800.0 },
        )
        .mix(mix_named("light"))
        .retry(retry_policy)
        .deadline_ms(deadline_ms.max(250));
        run(open, &target, sf, true, 2);

        // Overload etiquette end to end: drain the hosted server so every
        // query is shed `ShuttingDown`, and prove the client side retries,
        // trips its breaker, and gives up — no hangs, no protocol errors,
        // no dropped sessions, nothing folded into latency.
        let (server, _) = hosted.expect("--smoke always self-hosts");
        server.drain();
        let drained = LoadSpec::new("smoke/drain/4", 4, 40, Arrival::Closed { think_ms: 0.2 })
            .mix(mix_named("light"))
            .retry(BackoffPolicy::retries(1).with_base_ms(0.5).with_cap_ms(2.0))
            .breaker(2, 5.0);
        let report = LoadRunner::new(drained, dial(&target)).run_replicated(1);
        assert_eq!(report.requests, 0, "a draining server completes nothing");
        assert_eq!(report.errors, 0, "typed rejection is not an error");
        assert_eq!(report.dropped_sessions, 0, "rejection keeps sessions alive");
        assert_eq!(report.give_ups, 40, "every request ends in a give-up");
        assert!(report.rejects > 0 && report.retries > 0);
        println!(
            "\ndrain etiquette: {} reject(s), {} retry(ies), {} give-up(s), \
             breaker opened {} time(s).",
            report.rejects, report.retries, report.give_ups, report.breaker_opens
        );
        let stats = server.wait();
        println!(
            "server saw {} connection(s), {} query(ies), {} rejection(s).",
            stats.connections,
            stats.queries,
            stats.rejected()
        );
        println!(
            "--smoke: both arrival disciplines verified; drain shed cleanly with \
             retries, breaker, and give-ups accounted."
        );
        println!(
            "persist -> reopen proof: every verified answer above was served from \
             disk-backed segments against checksums computed in memory."
        );
        if let Some(tmp) = smoke_tmp {
            let _ = std::fs::remove_dir_all(&tmp);
        }
        return;
    }

    let name = format!("{}/{clients}", props.get("arrival").unwrap_or("closed"));
    let spec = LoadSpec::new(&name, clients, requests, arrival)
        .mix(mix)
        .retry(retry_policy)
        .deadline_ms(deadline_ms);
    run(spec, &target, sf, verify, reps);
    if let Some((server, _)) = hosted {
        let stats = server.wait();
        println!(
            "\nserver saw {} connection(s), {} query(ies).",
            stats.connections, stats.queries
        );
    }
}
