//! `minidb-load` — drive a minidb server with a measured load.
//!
//! The CLI face of `perfeval-load`: point it at a running `minidb-serve`
//! (or let it host its own loopback server) and it sustains concurrent
//! client sessions under an explicit arrival discipline, reporting
//! offered vs achieved throughput and coordinated-omission-safe tail
//! latencies with confidence intervals over replicated runs.
//!
//! ```text
//! minidb-load -Daddr=127.0.0.1:7878 -Dclients=32 -Darrival=poisson -Drate=2000
//! minidb-load -Dclients=64 -Darrival=closed -Dthink_ms=1 -Dreps=3   # self-hosted
//! minidb-load --smoke                                               # CI self-test
//! ```
//!
//! Knobs (`-Dkey=value`): `addr` (TCP server to target; empty =
//! self-host a loopback TCP server), `clients`, `requests` (total per
//! run), `arrival` (`closed` | `poisson` | `paced`), `rate` (total
//! offered q/s, open loop), `think_ms` (mean think time, closed loop),
//! `reps` (replicated runs — CIs need ≥ 2), `mix` (`light` | `heavy` |
//! `full`), `sf` (catalog scale factor — must match the server's when
//! targeting a remote, since result checksums are computed locally),
//! `verify` (check result checksums against serial execution),
//! `server_mode` (`sharded` | `threaded` — which core the self-hosted
//! server runs; ignored when `addr` targets a remote).
//!
//! `--smoke` self-hosts, runs one small closed-loop and one open-loop
//! arm, asserts both complete with correct answers, and exits 0.

use std::sync::Arc;

use minidb::Session;
use minidb_net::{Server, ServerMode, TcpEndpoint, TcpTransport, Transport};
use perfeval_bench::{banner, catalog_at, print_environment, BENCH_SCALE_FACTOR};
use perfeval_harness::Properties;
use perfeval_load::{expected_checksums, Arrival, Dialer, LoadRunner, LoadSpec};
use workload::queries;

fn mix_named(name: &str) -> Vec<String> {
    match name {
        "light" => vec![queries::q6(), queries::family(4)],
        "heavy" => vec![queries::q1()],
        "full" => vec![queries::q1(), queries::q6(), queries::q16()],
        other => panic!("-Dmix must be light|heavy|full, got {other:?}"),
    }
}

fn run(spec: LoadSpec, addr: &str, sf: f64, verify: bool, reps: usize) {
    let target = addr.to_owned();
    let dialer: Dialer = Arc::new(move || {
        Ok(Box::new(TcpTransport::connect(target.as_str())?) as Box<dyn Transport>)
    });
    let mut runner = LoadRunner::new(spec.clone(), dialer);
    if verify {
        runner = runner.expecting(expected_checksums(catalog_at(sf), &spec.mix));
    }
    let report = runner.run_replicated(reps);
    println!();
    for line in report.render_lines() {
        println!("{line}");
    }
    let phases = &report.phases;
    println!(
        "phase totals: server {:.1} ms wall ({:.1} ms cpu), serialize {:.1} ms, \
         wire {:.1} ms, sink {:.1} ms — delivery share {:.1}%",
        phases.server_real_ms,
        phases.server_user_ms,
        phases.serialize_ms,
        phases.wire_ms,
        phases.print_ms,
        phases.delivery_share() * 100.0
    );
    assert!(
        report.is_complete(),
        "load arm {} left {} error(s), {} dropped session(s), {} checksum mismatch(es)",
        spec.name,
        report.errors,
        report.dropped_sessions,
        report.checksum_mismatches
    );
}

fn main() {
    banner(
        "minidb-load: the load generator",
        "arrival discipline is a knob, not an accident",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[
        ("addr", ""),
        ("clients", "16"),
        ("requests", "800"),
        ("arrival", "closed"),
        ("rate", "1000"),
        ("think_ms", "1.0"),
        ("reps", "2"),
        ("mix", "light"),
        ("sf", &BENCH_SCALE_FACTOR.to_string()),
        ("verify", "true"),
        ("server_mode", "sharded"),
    ]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let addr = props.get("addr").unwrap_or("").to_owned();
    let clients = props
        .get_u64("clients")
        .expect("-Dclients")
        .unwrap_or(16)
        .max(1) as usize;
    let requests = props
        .get_u64("requests")
        .expect("-Drequests")
        .unwrap_or(800)
        .max(clients as u64) as usize;
    let rate = props.get_f64("rate").expect("-Drate").unwrap_or(1000.0);
    let think_ms = props
        .get_f64("think_ms")
        .expect("-Dthink_ms")
        .unwrap_or(1.0);
    let reps = props.get_u64("reps").expect("-Dreps").unwrap_or(2).max(1) as usize;
    let sf = props
        .get_f64("sf")
        .expect("-Dsf")
        .unwrap_or(BENCH_SCALE_FACTOR);
    let verify = props.get_bool("verify").expect("-Dverify").unwrap_or(true);
    let mix = mix_named(props.get("mix").unwrap_or("light"));
    let arrival = match props.get("arrival").unwrap_or("closed") {
        "closed" => Arrival::Closed { think_ms },
        "poisson" => Arrival::OpenPoisson { rate_qps: rate },
        "paced" => Arrival::OpenPaced { rate_qps: rate },
        other => panic!("-Darrival must be closed|poisson|paced, got {other:?}"),
    };

    // Self-host a loopback TCP server unless the user points us at one.
    // `-Dserver_mode=threaded` pits the load against the old
    // thread-per-connection core (workers must cover every client session);
    // the default is the sharded event-driven core.
    let server_mode = match props.get("server_mode").unwrap_or("sharded") {
        "sharded" => ServerMode::default(),
        "threaded" => ServerMode::ThreadPerConn {
            workers: clients.max(8) + 2,
        },
        other => panic!("-Dserver_mode must be sharded|threaded, got {other:?}"),
    };
    let hosted = if addr.is_empty() || smoke {
        let endpoint = TcpEndpoint::bind("127.0.0.1:0").expect("bind loopback listener");
        let local = endpoint.local_addr().expect("local addr");
        let catalog = catalog_at(sf);
        let server = Server::builder()
            .transport(endpoint)
            .mode(server_mode)
            .serve(move || Session::new(catalog.clone()));
        println!(
            "self-hosted server on {local} ({}, sf={sf}).",
            server_mode.describe()
        );
        Some((server, local.to_string()))
    } else {
        None
    };
    let target = hosted.as_ref().map_or(addr.clone(), |(_, a)| a.clone());

    if smoke {
        // Two tiny arms — one per arrival family — with full verification.
        let closed = LoadSpec::new("smoke/closed/8", 8, 120, Arrival::Closed { think_ms: 0.5 })
            .mix(mix_named("light"));
        run(closed, &target, sf, true, 2);
        let open = LoadSpec::new(
            "smoke/open/4",
            4,
            120,
            Arrival::OpenPoisson { rate_qps: 800.0 },
        )
        .mix(mix_named("light"));
        run(open, &target, sf, true, 2);
        if let Some((server, _)) = hosted {
            let stats = server.wait();
            println!(
                "\nserver saw {} connection(s), {} query(ies).",
                stats.connections, stats.queries
            );
        }
        println!("--smoke: both arrival disciplines completed with verified answers.");
        return;
    }

    let name = format!("{}/{clients}", props.get("arrival").unwrap_or("closed"));
    let spec = LoadSpec::new(&name, clients, requests, arrival).mix(mix);
    run(spec, &target, sf, verify, reps);
    if let Some((server, _)) = hosted {
        let stats = server.wait();
        println!(
            "\nserver saw {} connection(s), {} query(ies).",
            stats.connections, stats.queries
        );
    }
}
