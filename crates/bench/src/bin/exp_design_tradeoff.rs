//! Supplementary experiment — the design-chapter opener made concrete
//! (slides 56–66): given the same measurement budget, what does each
//! classical design buy you?
//!
//! A system with a strong interaction is measured three ways:
//! * **simple (one-at-a-time)** — cheapest, and *"impossible to identify
//!   interactions"*: it mispredicts the corner it never visited;
//! * **full 2²** — sees the interaction;
//! * **2^(5−2) fractional** — screens five factors for the price of eight
//!   runs, with the alias structure stating what it cannot see.

use perfeval_bench::banner;
use perfeval_core::alias::{AliasStructure, Generator};
use perfeval_core::design::Design;
use perfeval_core::effects::estimate_effects;
use perfeval_core::factor::Factor;
use perfeval_core::mistakes::audit_design;
use perfeval_core::runner::{Assignment, Runner};
use perfeval_core::twolevel::TwoLevelDesign;

/// The system under test: response with a large A×B interaction.
/// y = 100 + 10·xA + 5·xB + 20·xA·xB (plus three inert factors C, D, E).
fn system(a: &Assignment) -> f64 {
    let xa = a.num("A").unwrap_or(-1.0);
    let xb = a.num("B").unwrap_or(-1.0);
    100.0 + 10.0 * xa + 5.0 * xb + 20.0 * xa * xb
}

fn main() {
    banner(
        "design trade-offs: simple vs full vs fractional",
        "slides 56-66",
    );
    println!("true system: y = 100 + 10·xA + 5·xB + 20·xA·xB\n");

    // --- simple one-at-a-time design over A and B ---
    let simple = Design::simple(vec![
        Factor::numeric("A", &[-1.0, 1.0]),
        Factor::numeric("B", &[-1.0, 1.0]),
    ]);
    let mut exp = system;
    let table = Runner::new(1).run_design(&simple, &mut exp);
    println!("--- simple design ({} runs) ---", simple.run_count());
    print!("{}", table.render());
    // One-at-a-time prediction for the unvisited (+1, +1) corner: baseline
    // plus the two individual deltas.
    let base = table.means()[0];
    let delta_a = table.means()[1] - base;
    let delta_b = table.means()[2] - base;
    let predicted = base + delta_a + delta_b;
    let actual = system(&Assignment::new(vec![
        ("A".into(), perfeval_core::factor::Level::Num(1.0)),
        ("B".into(), perfeval_core::factor::Level::Num(1.0)),
    ]));
    println!(
        "one-at-a-time predicts y(+1,+1) = {predicted} — actually {actual} \
         (off by {}!)",
        actual - predicted
    );
    for finding in audit_design(&simple) {
        println!("audit: {finding}");
    }

    // --- full 2^2 ---
    let full = TwoLevelDesign::full(&["A", "B"]);
    let runs = Runner::new(1).run_two_level(&full, &mut exp);
    let model = estimate_effects(&full, &runs.means()).expect("responses match");
    println!("\n--- full 2^2 ({} runs) ---", full.run_count());
    println!("recovered: {}", model.render());
    let q_ab = model.coefficient(&["A", "B"]).expect("fitted");
    assert_eq!(q_ab, 20.0, "full factorial must recover the interaction");

    // --- 2^(5-2) fraction over five factors ---
    let frac = TwoLevelDesign::fractional(
        &["A", "B", "C", "D", "E"],
        &[
            Generator::parse("D=AB").expect("valid"),
            Generator::parse("E=AC").expect("valid"),
        ],
    )
    .expect("valid 2^(5-2)");
    let runs = Runner::new(1).run_two_level(&frac, &mut exp);
    let model = estimate_effects(&frac, &runs.means()).expect("responses match");
    let alias = AliasStructure::of(&frac).expect("alias structure");
    println!(
        "\n--- 2^(5-2) fraction ({} runs, resolution {:?}) ---",
        frac.run_count(),
        alias.resolution().expect("fractional")
    );
    // The A×B interaction is aliased with main effect D: the fraction
    // charges the 20-unit interaction to D, and the algebra *predicts* it.
    let ab = frac.effect_mask(&["A", "B"]).expect("mask");
    let d = frac.effect_mask(&["D"]).expect("mask");
    assert!(alias.are_aliased(ab, d), "AB = D under D=AB");
    let q_d = model.coefficient(&["D"]).expect("fitted");
    println!(
        "the 20-unit A·B interaction shows up as qD = {q_d} — exactly where \
         the defining relation (I = ABD = ACE = BCDE) says it must."
    );
    assert_eq!(q_d, 20.0);

    println!("\nconclusions:");
    println!(
        "  simple  : {} runs, blind to interactions (answer off by 80)",
        simple.run_count()
    );
    println!("  full 2^2: 4 runs, interaction recovered exactly");
    println!("  2^(5-2) : 8 runs for FIVE factors, confounding known in advance");
    println!("\n\"You don't know what you haven't tested.\"");
}
