//! E21 — client vs. server time, **measured over a real wire** (slides
//! 23–26, done honestly).
//!
//! E1 reproduces the paper's table with *simulated* device latencies. This
//! experiment retires the simulation: the same queries now travel through
//! `minidb-net` — a real length-prefixed protocol over an in-process
//! loopback or a kernel TCP socket — and every component of "query time"
//! is measured by the stopwatch that can actually see it:
//!
//! * server user / server real — the server's clocks, shipped in the
//!   result footer;
//! * serialize — server wall time encoding + writing result frames;
//! * wire — the client-side residual (receive wall − server busy);
//! * client print — client wall time rendering through the sink.
//!
//! The design is a replicated 2³ factorial: transport (loopback → TCP),
//! sink (null → terminal), result size (one aggregate row → every
//! lineitem). The allocation of variation then answers the paper's
//! question quantitatively: how much of "query time" has nothing to do
//! with the query? The acceptance bar is the delivery share (serialize +
//! wire + print) exceeding 10% of client real time on the terminal × large
//! arm — client-side printing and transfer can dominate what a naive
//! "measure at the client" benchmark would report as query time.

use minidb::sink::{NullSink, TerminalSink};
use minidb::Session;
use minidb_net::{
    Client, LoopbackEndpoint, Server, ServerHandle, ServerMode, TcpEndpoint, TcpTransport,
};
use perfeval_bench::{banner, bench_catalog, median, print_environment};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation_replicated;
use perfeval_harness::Properties;
use workload::queries;

/// Per-arm medians of every component the subsystem measures, in ms.
#[derive(Debug, Default, Clone, Copy)]
struct ArmMedians {
    server_user: f64,
    server_real: f64,
    serialize: f64,
    wire: f64,
    print: f64,
    client_real: f64,
    delivery_share: f64,
}

/// One arm: `reps` queries through `client`, replicate responses =
/// client real ms (the "what the user sees" response variable).
fn run_arm(client: &mut Client, sql: &str, terminal: bool, reps: usize) -> (Vec<f64>, ArmMedians) {
    let query = |client: &mut Client| {
        if terminal {
            let mut sink = TerminalSink::new();
            client.query_to(sql, &mut sink)
        } else {
            let mut sink = NullSink;
            client.query_to(sql, &mut sink)
        }
        .expect("arm query")
    };
    query(client); // warmup: first run pays catalog/page faults
    let results: Vec<_> = (0..reps).map(|_| query(client)).collect();
    let med =
        |f: &dyn Fn(&minidb_net::NetQueryResult) -> f64| median(results.iter().map(f).collect());
    let medians = ArmMedians {
        server_user: med(&|r| r.server_user_ms()),
        server_real: med(&|r| r.server_real_ms()),
        serialize: med(&|r| r.serialize_ms()),
        wire: med(&|r| r.wire_ms),
        print: med(&|r| r.print_ms),
        client_real: med(&|r| r.client_real_ms),
        delivery_share: med(&|r| r.delivery_share()),
    };
    (results.iter().map(|r| r.client_real_ms).collect(), medians)
}

fn main() {
    banner(
        "E21: client vs server time over a real wire",
        "slides 23-26, measured not simulated",
    );
    print_environment();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = Properties::with_defaults(&[("reps", "9")]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let reps = if smoke {
        3
    } else {
        props.get_u64("reps").expect("-Dreps").unwrap_or(9).max(3) as usize
    };

    let catalog = bench_catalog();

    // Two live servers, one per transport level — both serve sessions over
    // the same catalog, so the only difference between transport arms is
    // the wire itself.
    let loop_ep = LoopbackEndpoint::new();
    let loop_dial = loop_ep.connector();
    let loop_catalog = catalog.clone();
    let loop_server: ServerHandle = Server::builder()
        .transport(loop_ep)
        .mode(ServerMode::ThreadPerConn { workers: 1 })
        .serve(move || Session::new(loop_catalog.clone()));
    let tcp_ep = TcpEndpoint::bind("127.0.0.1:0").expect("bind");
    let tcp_addr = tcp_ep.local_addr().expect("local addr");
    let tcp_catalog = catalog.clone();
    let tcp_server: ServerHandle = Server::builder()
        .transport(tcp_ep)
        .mode(ServerMode::ThreadPerConn { workers: 1 })
        .serve(move || Session::new(tcp_catalog.clone()));

    let mut loop_client =
        Client::connect(Box::new(loop_dial.connect().expect("loopback dial"))).expect("handshake");
    let mut tcp_client =
        Client::connect(Box::new(TcpTransport::connect(tcp_addr).expect("tcp dial")))
            .expect("handshake");

    let small_sql = queries::q6();
    let large_sql = queries::large_result();

    // 2^3 full factorial, replicated `reps` times per run.
    let design = TwoLevelDesign::full(&["transport", "sink", "result"]);
    let mut replicates: Vec<Vec<f64>> = Vec::with_capacity(design.run_count());
    let mut arm_medians: Vec<ArmMedians> = Vec::with_capacity(design.run_count());
    let mut arm_labels: Vec<String> = Vec::with_capacity(design.run_count());

    println!("arms: {} runs x {reps} replicates", design.run_count());
    println!(
        "\n  transport  sink      result   server-user  server-real  serialize \
         \u{2502}     wire      print  \u{2502} client-real  delivery"
    );
    for r in 0..design.run_count() {
        let tcp = design.factor_sign(r, 0) > 0.0;
        let terminal = design.factor_sign(r, 1) > 0.0;
        let large = design.factor_sign(r, 2) > 0.0;
        let client = if tcp {
            &mut tcp_client
        } else {
            &mut loop_client
        };
        let sql = if large { &large_sql } else { &small_sql };
        let (ys, m) = run_arm(client, sql, terminal, reps);
        let label = format!(
            "{:<9}  {:<8}  {:<6}",
            if tcp { "tcp" } else { "loopback" },
            if terminal { "terminal" } else { "null" },
            if large { "large" } else { "small" },
        );
        println!(
            "  {label}  {:>10.3}  {:>10.3}  {:>9.3} \u{2502} {:>8.3}  {:>9.3} \u{2502} {:>11.3}  {:>7.1}%",
            m.server_user,
            m.server_real,
            m.serialize,
            m.wire,
            m.print,
            m.client_real,
            m.delivery_share * 100.0,
        );
        replicates.push(ys);
        arm_medians.push(m);
        arm_labels.push(label);
    }

    // Allocation of variation over client real time: which knob moves
    // "query time as the client sees it"?
    let table =
        allocate_variation_replicated(&design, &replicates).expect("responses match design");
    println!("\nallocation of variation (response = client real ms):");
    print!("{}", table.render());
    let ranked = table.ranked_effects();
    println!(
        "largest effect on client-perceived query time: {} ({:.1}% of variation)",
        ranked[0].0,
        ranked[0].1 * 100.0
    );

    // The acceptance bar: on the terminal x large arms, delivery
    // (serialize + wire + print) is a >10% share of client real time —
    // "query time" measured naively at the client is substantially not
    // query time. This is a *ratio*, so machine speed cancels out.
    for r in 0..design.run_count() {
        let terminal = design.factor_sign(r, 1) > 0.0;
        let large = design.factor_sign(r, 2) > 0.0;
        if terminal && large {
            let share = arm_medians[r].delivery_share;
            assert!(
                share > 0.10,
                "arm [{}]: delivery share {:.1}% should exceed 10%",
                arm_labels[r].trim(),
                share * 100.0
            );
            println!(
                "arm [{}]: {:.1}% of client real time is delivery, not query execution.",
                arm_labels[r].trim(),
                share * 100.0
            );
        }
    }

    // One decomposition in full, the honest `mclient -t`: TCP, terminal,
    // large result.
    let mut sink = TerminalSink::new();
    let shown = tcp_client
        .query_to(&large_sql, &mut sink)
        .expect("decomposition query");
    println!(
        "\nfull decomposition, tcp x terminal x large ({} rows, {} wire bytes):",
        shown.row_count(),
        shown.bytes_received
    );
    print!("{}", shown.decomposition());

    loop_client.close().expect("close loopback client");
    tcp_client.close().expect("close tcp client");
    let ls = loop_server.wait();
    let ts = tcp_server.wait();
    assert_eq!(ls.disconnects + ts.disconnects, 0, "clean shutdown");

    if smoke {
        println!("\n--smoke: reduced replication; shares and allocation still computed.");
    }
    println!(
        "\nconclusion: the E1 table's lesson, now measured — where you attach \
         the stopwatch (and what the client does with the rows) changes what \
         \"query time\" means."
    );
}
