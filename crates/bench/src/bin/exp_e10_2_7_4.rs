//! E10 — preparing a 2^(7−4) fractional design (slides 100–103).
//!
//! Paper's method: build the full 2³ on A, B, C, then relabel the AB, AC,
//! BC, ABC interaction columns as D, E, F, G. The resulting table has
//! "7 zero-sum columns … 3 orthogonal factor columns … all coefficients of
//! interactions have been erased."

use perfeval_bench::banner;
use perfeval_core::alias::{AliasStructure, Generator};
use perfeval_core::twolevel::TwoLevelDesign;

fn main() {
    banner("E10: the 2^(7-4) fractional design", "slides 100-103");

    let design = TwoLevelDesign::fractional(
        &["A", "B", "C", "D", "E", "F", "G"],
        &[
            Generator::parse("D=AB").expect("valid generator"),
            Generator::parse("E=AC").expect("valid generator"),
            Generator::parse("F=BC").expect("valid generator"),
            Generator::parse("G=ABC").expect("valid generator"),
        ],
    )
    .expect("valid 2^(7-4) construction");

    print!("{}", design.render());

    println!(
        "\nseven factors in {} runs (a full design would need {}).",
        design.run_count(),
        1 << 7
    );

    // The slide's structural claims.
    assert_eq!(design.run_count(), 8);
    assert!(design.columns_are_zero_sum(), "7 zero-sum columns");
    assert!(design.columns_are_orthogonal(), "orthogonal columns");
    println!("zero-sum columns: both levels of every factor get equally tested ✓");
    println!("orthogonality: any two factor columns agree as often as they disagree ✓");

    // The slide's first two data rows.
    assert_eq!(
        design.run_signs(0),
        vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0, -1.0]
    );
    assert_eq!(
        design.run_signs(1),
        vec![1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0]
    );
    println!("rows 1 and 2 match the slide's table ✓");

    // What was paid: resolution III, mains confounded with two-factor
    // interactions.
    let alias = AliasStructure::of(&design).expect("alias structure");
    println!(
        "\nresolution: {} (main effects confounded with 2-factor interactions)",
        alias.resolution().expect("fractional design")
    );
    println!(
        "defining relation has {} words; e.g. the aliases of A:",
        alias.defining_relation().len()
    );
    let a_set = alias.alias_set(1);
    let labels: Vec<String> = a_set.iter().take(4).map(|&m| alias.label(m)).collect();
    println!("  A = {} = ...", labels[1..].join(" = "));
    assert_eq!(alias.resolution(), Some(3));
    assert_eq!(alias.defining_relation().len(), 16);
}
