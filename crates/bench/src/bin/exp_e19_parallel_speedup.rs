//! E19 — parallel speed-up as a *designed* experiment.
//!
//! The tutorial's discipline applied to our own new feature: instead of
//! quoting one "4× faster!" number, morsel parallelism is swept as a 2³
//! full-factorial design — worker threads (T) × morsel size (M) × query
//! shape (Q) — with replication, confidence intervals on the speed-ups,
//! and an allocation-of-variation table saying how much of the observed
//! variance each factor (and interaction) explains. Because the parallel
//! engine is bit-identical to the serial one, "query shape" is a clean
//! factor: the answers never change, only the wall clock does.
//!
//! Responses are execute-phase **wall** milliseconds (thread CPU time
//! would hide parallelism: workers burn the same CPU, the wall clock is
//! what shrinks — be aware what you measure).
//!
//! `--smoke` runs a reduced sweep for CI: it still exercises every arm,
//! exports and validates the trace, and asserts bit-identity, but skips
//! the speed-up assertion (shared CI runners make wall-clock promises a
//! lottery).

use minidb::{Session, Value};
use perfeval_bench::{banner, catalog_at, median};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_core::variation::allocate_variation_replicated;
use perfeval_measure::Phase;
use perfeval_stats::ci::mean_confidence_interval;
use perfeval_trace::{chrome_trace_json, validate_chrome, Tracer};

/// Scan-heavy arm: selective filter feeding a single-row aggregate, so the
/// response is dominated by the morselized scan+filter work, not by
/// materializing a large result.
const SCAN_HEAVY: &str = "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
     FROM lineitem WHERE l_shipdate >= 365 AND l_shipdate < 1460 AND l_quantity < 30";

/// Aggregate-heavy arm: Q1's wide grouped aggregation (eight accumulators
/// per group), where per-row aggregate update work dominates.
const AGG_HEAVY: &str = "SELECT l_returnflag, l_linestatus, \
            SUM(l_quantity) AS sum_qty, \
            SUM(l_extendedprice) AS sum_base_price, \
            SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
            AVG(l_quantity) AS avg_qty, \
            AVG(l_extendedprice) AS avg_price, \
            AVG(l_discount) AS avg_disc, \
            COUNT(*) AS count_order \
     FROM lineitem WHERE l_shipdate <= 2450 \
     GROUP BY l_returnflag, l_linestatus \
     ORDER BY l_returnflag, l_linestatus";

fn bit_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (x, y) => x == y,
            }) && ra.len() == rb.len()
        })
}

/// Execute-phase wall milliseconds of one run.
fn execute_wall_ms(session: &mut Session, sql: &str) -> f64 {
    session
        .query(sql)
        .run()
        .expect("query runs")
        .phases
        .phase(Phase::Execute)
        .expect("execute phase recorded")
}

/// Warm up, then collect `reps` execute-phase wall times.
fn measure(session: &mut Session, sql: &str, reps: usize) -> Vec<f64> {
    session.query(sql).run().expect("warmup");
    (0..reps).map(|_| execute_wall_ms(session, sql)).collect()
}

fn main() {
    banner(
        "E19: morsel-parallel speed-up as a designed experiment",
        "the paper's own method, applied to our new subsystem",
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut props = perfeval_harness::Properties::with_defaults(&[("threads", "4")]);
    props
        .apply_args(args.iter().filter(|a| *a != "--smoke").map(String::as_str))
        .expect("arguments must be --smoke or -Dkey=value");
    let hi_threads = perfeval_bench::threads_knob(&props);

    let (sf, reps) = if smoke { (0.002, 3) } else { (0.02, 7) };
    let catalog = catalog_at(sf);
    let lineitem_rows = catalog.table("lineitem").expect("lineitem").row_count();
    println!(
        "scale factor {sf} ({lineitem_rows} lineitem rows), {reps} replicates/run, \
         threads high level = {hi_threads}{}",
        if smoke { ", --smoke" } else { "" }
    );

    // Bit-identity gate first: the speed-up numbers below are only worth
    // reporting because every arm returns the same answer.
    for (name, sql) in [("scan-heavy", SCAN_HEAVY), ("agg-heavy", AGG_HEAVY)] {
        let serial = Session::new(catalog.clone())
            .query(sql)
            .run()
            .expect("serial");
        for morsel in [2048usize, 16 * 1024] {
            let par = Session::new(catalog.clone())
                .with_parallelism(hi_threads)
                .with_morsel_rows(morsel)
                .query(sql)
                .run()
                .expect("parallel");
            assert!(
                bit_equal(&serial.rows, &par.rows),
                "{name} answers diverged at morsel={morsel}"
            );
        }
    }
    println!("bit-identity: every parallel arm returns the serial answer exactly.\n");

    // 2^3 full factorial: T = threads (1 vs hi), M = morsel rows
    // (2 Ki vs 16 Ki), Q = query shape (scan- vs aggregate-heavy).
    let design = TwoLevelDesign::full(&["T", "M", "Q"]);
    println!("sign table (T=threads, M=morsel rows, Q=query shape):");
    print!("{}", design.render());

    let level = |sign: f64, lo: usize, hi: usize| if sign < 0.0 { lo } else { hi };
    let mut replicates: Vec<Vec<f64>> = Vec::with_capacity(design.run_count());
    println!("\nrun table (execute wall ms):");
    println!("  run  threads  morsel  query        median    reps");
    for r in 0..design.run_count() {
        let threads = level(design.factor_sign(r, 0), 1, hi_threads);
        let morsel = level(design.factor_sign(r, 1), 2048, 16 * 1024);
        let scan_q = design.factor_sign(r, 2) < 0.0;
        let sql = if scan_q { SCAN_HEAVY } else { AGG_HEAVY };
        let mut session = Session::new(catalog.clone())
            .with_parallelism(threads)
            .with_morsel_rows(morsel);
        let sample = measure(&mut session, sql, reps);
        println!(
            "  {r:>3}  {threads:>7}  {morsel:>6}  {:<11}  {:>7.3}  {:?}",
            if scan_q { "scan-heavy" } else { "agg-heavy" },
            median(sample.clone()),
            sample
                .iter()
                .map(|v| (v * 1e3).round() / 1e3)
                .collect::<Vec<_>>(),
        );
        replicates.push(sample);
    }

    // Allocation of variation: which factor actually matters?
    let table =
        allocate_variation_replicated(&design, &replicates).expect("responses match design");
    println!("\nallocation of variation:");
    print!("{}", table.render());

    // Speed-up CIs per query shape at the better morsel level: each
    // parallel replicate against the serial median of the same (M, Q) run.
    println!("\nspeed-up at {hi_threads} threads (per query shape, both morsel levels):");
    let run_index = |t_hi: bool, m_hi: bool, q_hi: bool| -> usize {
        // Standard-order full factorial: T toggles fastest, then M, then Q.
        (t_hi as usize) + 2 * (m_hi as usize) + 4 * (q_hi as usize)
    };
    let mut scan_best = 0.0f64;
    for q_hi in [false, true] {
        for m_hi in [false, true] {
            let serial_ms = median(replicates[run_index(false, m_hi, q_hi)].clone());
            let ratios: Vec<f64> = replicates[run_index(true, m_hi, q_hi)]
                .iter()
                .map(|&p| serial_ms / p)
                .collect();
            let ci = mean_confidence_interval(&ratios, 0.95).expect("enough replicates");
            println!(
                "  {:<11} morsel {:>6}: speed-up {ci}",
                if q_hi { "agg-heavy" } else { "scan-heavy" },
                if m_hi { 16 * 1024 } else { 2048 },
            );
            if !q_hi {
                scan_best = scan_best.max(ci.estimate);
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if smoke {
        println!("\n--smoke: skipping the speed-up assertion (CI wall clocks are a lottery).");
    } else if cfg!(debug_assertions) {
        println!("\ndebug build: speed-up assertion skipped (measure in release).");
    } else if cores < hi_threads {
        println!("\nonly {cores} core(s) for {hi_threads} workers: speed-up assertion skipped.");
    } else {
        assert!(
            scan_best >= 2.0,
            "scan-heavy speed-up at {hi_threads} threads was {scan_best:.2}x, expected >= 2x"
        );
        println!("\nscan-heavy speed-up at {hi_threads} threads: {scan_best:.2}x (>= 2x).");
    }

    // Traced parallel run: morsel spans on worker lanes, queue-wait split
    // out, exported as Chrome trace-event JSON.
    let tracer = Tracer::new();
    let mut session = Session::new(catalog.clone())
        .with_parallelism(hi_threads)
        .with_morsel_rows(2048);
    session
        .query(SCAN_HEAVY)
        .traced(&tracer)
        .run()
        .expect("traced run");
    let trace = tracer.snapshot();
    let morsel_spans = trace
        .lanes
        .iter()
        .flat_map(|l| l.records.iter())
        .filter(|r| r.name.starts_with("morsel "))
        .count();
    let json = chrome_trace_json(&trace);
    let summary = validate_chrome(&json).expect("exported trace is well-formed");
    let out = std::env::var("PERFEVAL_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    std::fs::create_dir_all(&out).expect("output dir");
    let path = out.join("exp_e19_parallel_speedup.trace.json");
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "\ntraced run: {} spans ({} morsel spans) on {} lane(s) -> {}",
        summary.spans,
        morsel_spans,
        summary.thread_names.len(),
        path.display()
    );
    assert!(
        morsel_spans > 0,
        "parallel run must record morsel spans on worker lanes"
    );
}
