//! E5 — factor interaction (slide 58).
//!
//! The paper's two tables:
//!
//! ```text
//! (a)  A1 A2        (b)  A1 A2
//! B1    3  5        B1    3  5
//! B2    6  8        B2    6  9
//! ```
//!
//! (a) the effect of A is +2 regardless of B — no interaction;
//! (b) the effect of A depends on B — interaction.

use perfeval_bench::banner;
use perfeval_core::effects::estimate_effects;
use perfeval_core::interaction::TwoByTwo;
use perfeval_core::twolevel::TwoLevelDesign;

fn show(name: &str, t: &TwoByTwo) {
    println!("table ({name}):");
    print!("{}", t.render());
    println!(
        "effect of A at B1: {:+.0}, at B2: {:+.0}, interaction: {:+.0} -> {}",
        t.a_effect_at_b1(),
        t.a_effect_at_b2(),
        t.interaction(),
        if t.interacts(1e-9) {
            "INTERACTION"
        } else {
            "no interaction"
        }
    );
    // Cross-check with the regression model's q_AB.
    let d = TwoLevelDesign::full(&["A", "B"]);
    let m = estimate_effects(&d, &[t.a1b1, t.a2b1, t.a1b2, t.a2b2]).expect("4 responses");
    println!(
        "model: {} (q_AB = {})\n",
        m.render(),
        m.coefficient(&["A", "B"]).expect("fitted")
    );
}

fn main() {
    banner("E5: factor interaction", "slide 58");
    let a = TwoByTwo {
        a1b1: 3.0,
        a2b1: 5.0,
        a1b2: 6.0,
        a2b2: 8.0,
    };
    let b = TwoByTwo {
        a1b1: 3.0,
        a2b1: 5.0,
        a1b2: 6.0,
        a2b2: 9.0,
    };
    show("a", &a);
    show("b", &b);

    assert!(!a.interacts(1e-9), "(a) must show no interaction");
    assert!(b.interacts(1e-9), "(b) must show interaction");
    println!("same effect of A regardless of B -> no interaction;");
    println!("different effect depending on B -> interaction.");
}
