//! Every exhibit query must answer identically with and without morsel
//! parallelism: the 22-query DBG/OPT family plus the three TPC-H-like
//! headliners, run serial and parallel over the same generated catalog,
//! compared cell by cell with floats held to bit equality.

use minidb::{ExecMode, Session, Value};
use workload::dbgen::{generate, GenConfig};
use workload::queries;

fn rows_bit_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                })
        })
}

#[test]
fn all_family_queries_parallel_match_serial() {
    let catalog = generate(&GenConfig {
        scale_factor: 0.002,
        ..GenConfig::default()
    });
    let mut serial = Session::new(catalog.clone()).with_mode(ExecMode::Optimized);
    let mut parallel = Session::new(catalog)
        .with_mode(ExecMode::Optimized)
        .with_parallelism(4)
        .with_morsel_rows(1000); // ragged tails at this scale
    let mut sqls = queries::all_family();
    sqls.push(queries::large_result());
    for (i, sql) in sqls.iter().enumerate() {
        let s = serial.query(sql).run().unwrap();
        let p = parallel.query(sql).run().unwrap();
        assert!(
            rows_bit_equal(&s.rows, &p.rows),
            "query {} diverged under parallelism:\n{sql}",
            i + 1
        );
    }
}
