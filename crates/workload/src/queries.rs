//! The benchmark queries.
//!
//! * [`q1`], [`q6`], [`q16`] — the TPC-H-like queries the tutorial's tables
//!   use: Q1 (scan + wide aggregation, small result), Q6 (selective scan,
//!   single number), Q16 (join + group-by, *large* result — the one whose
//!   terminal printing costs more than the query).
//! * [`family`] — 22 queries of graded shapes for the DBG/OPT relative-time
//!   sweep of experiment E3 (slide 41 plots exactly "TPC-H queries 1..22"
//!   on the x axis).

/// TPC-H Q1-like: scan, filter on ship date, group by the two flag columns,
/// eight aggregates. Result: a handful of rows.
pub fn q1() -> String {
    "SELECT l_returnflag, l_linestatus, \
            SUM(l_quantity) AS sum_qty, \
            SUM(l_extendedprice) AS sum_base_price, \
            SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
            AVG(l_quantity) AS avg_qty, \
            AVG(l_extendedprice) AS avg_price, \
            AVG(l_discount) AS avg_disc, \
            COUNT(*) AS count_order \
     FROM lineitem \
     WHERE l_shipdate <= 2450 \
     GROUP BY l_returnflag, l_linestatus \
     ORDER BY l_returnflag, l_linestatus"
        .to_owned()
}

/// TPC-H Q6-like: highly selective scan, single aggregate.
pub fn q6() -> String {
    "SELECT SUM(l_extendedprice * l_discount) AS revenue \
     FROM lineitem \
     WHERE l_shipdate >= 365 AND l_shipdate < 730 \
       AND l_discount BETWEEN 0.05 AND 0.07 \
       AND l_quantity < 24"
        .to_owned()
}

/// TPC-H Q16-like: part ⋈ partsupp, grouped by brand/type/size — a result
/// with thousands of rows whose *printing* dominates client-side time.
pub fn q16() -> String {
    "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
     FROM partsupp \
     JOIN part ON ps_partkey = p_partkey \
     WHERE p_size >= 1 \
     GROUP BY p_brand, p_type, p_size \
     ORDER BY supplier_cnt DESC, p_brand, p_type, p_size"
        .to_owned()
}

/// A micro query with a very large raw result (for sink experiments):
/// every lineitem's key and discounted price.
pub fn large_result() -> String {
    "SELECT l_orderkey, l_extendedprice, l_discount FROM lineitem \
     ORDER BY l_orderkey"
        .to_owned()
}

/// The 22-query family for the DBG/OPT sweep. Queries are graded in shape —
/// scans, arithmetic-heavy projections, selective filters, group-bys,
/// joins, sorts — so the DBG/OPT ratio varies across them the way slide
/// 41's figure varies across TPC-H queries.
///
/// # Panics
/// Panics if `i` is not in `1..=22`.
pub fn family(i: usize) -> String {
    match i {
        1 => q1(),
        2 => "SELECT MAX(l_extendedprice) FROM lineitem".to_owned(),
        3 => "SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate < 1200".to_owned(),
        4 => "SELECT COUNT(*) FROM lineitem WHERE l_discount >= 0.05".to_owned(),
        5 => "SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag \
              ORDER BY n DESC"
            .to_owned(),
        6 => q6(),
        7 => "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS charge \
              FROM lineitem"
            .to_owned(),
        8 => "SELECT o_orderpriority, COUNT(*) AS n FROM orders \
              WHERE o_orderdate BETWEEN 400 AND 800 GROUP BY o_orderpriority \
              ORDER BY o_orderpriority"
            .to_owned(),
        9 => "SELECT AVG(o_totalprice) FROM orders WHERE o_orderstatus = 'F'".to_owned(),
        10 => "SELECT c_mktsegment, AVG(c_acctbal) AS bal FROM customer \
               GROUP BY c_mktsegment ORDER BY c_mktsegment"
            .to_owned(),
        11 => "SELECT n_name, COUNT(*) AS customers FROM customer \
               JOIN nation ON c_nationkey = n_nationkey \
               GROUP BY n_name ORDER BY customers DESC, n_name"
            .to_owned(),
        12 => "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
               WHERE o_orderdate < 400 AND l_shipdate < 500"
            .to_owned(),
        13 => "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey \
               ORDER BY cnt DESC LIMIT 20"
            .to_owned(),
        14 => "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
               WHERE l_shipdate >= 1000 AND l_shipdate < 1030"
            .to_owned(),
        15 => "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
               FROM lineitem WHERE l_shipdate >= 1000 AND l_shipdate < 1090 \
               GROUP BY l_suppkey ORDER BY revenue DESC LIMIT 10"
            .to_owned(),
        16 => q16(),
        17 => "SELECT AVG(l_quantity) FROM lineitem WHERE l_partkey < 100".to_owned(),
        18 => "SELECT l_orderkey, SUM(l_quantity) AS total FROM lineitem \
               GROUP BY l_orderkey ORDER BY total DESC LIMIT 100"
            .to_owned(),
        19 => "SELECT SUM(l_extendedprice) FROM lineitem \
               WHERE l_quantity BETWEEN 10 AND 20 AND l_discount BETWEEN 0.02 AND 0.08"
            .to_owned(),
        20 => "SELECT p_brand, COUNT(*) AS n FROM part WHERE p_size > 25 \
               GROUP BY p_brand ORDER BY p_brand"
            .to_owned(),
        21 => "SELECT c_name, c_acctbal FROM customer WHERE c_acctbal > 5000.0 \
               ORDER BY c_acctbal DESC LIMIT 50"
            .to_owned(),
        22 => "SELECT c_nationkey, COUNT(*) AS cnt, AVG(c_acctbal) AS bal \
               FROM customer WHERE c_acctbal > 0.0 GROUP BY c_nationkey \
               ORDER BY c_nationkey"
            .to_owned(),
        other => panic!("query family index {other} out of range 1..=22"),
    }
}

/// All 22 family queries in order.
pub fn all_family() -> Vec<String> {
    (1..=22).map(family).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{generate, GenConfig};
    use minidb::{ExecMode, Session, Value};

    fn session() -> Session {
        Session::new(generate(&GenConfig {
            scale_factor: 0.001,
            ..GenConfig::default()
        }))
    }

    #[test]
    fn q1_produces_flag_groups() {
        let mut s = session();
        let r = s.query(&q1()).run().unwrap();
        // Up to 4 combinations of returnflag × linestatus survive the date
        // filter; at least 2 must exist.
        assert!((2..=4).contains(&r.row_count()), "rows {}", r.row_count());
        assert_eq!(r.column_names.len(), 9);
        // count_order column is positive.
        for row in &r.rows {
            assert!(row[8].as_i64().unwrap() > 0);
        }
    }

    #[test]
    fn q1_aggregates_are_consistent() {
        let mut s = session();
        let r = s.query(&q1()).run().unwrap();
        for row in &r.rows {
            let sum_qty = row[2].as_i64().unwrap() as f64;
            let n = row[8].as_i64().unwrap() as f64;
            let avg_qty = row[5].as_f64().unwrap();
            assert!((sum_qty / n - avg_qty).abs() < 1e-9, "AVG = SUM/COUNT");
            // Discounted price <= base price.
            assert!(row[4].as_f64().unwrap() <= row[3].as_f64().unwrap());
        }
    }

    #[test]
    fn q6_returns_single_revenue_number() {
        let mut s = session();
        let r = s.query(&q6()).run().unwrap();
        assert_eq!(r.row_count(), 1);
        let revenue = r.rows[0][0].as_f64().unwrap();
        assert!(revenue > 0.0, "some lines must match at sf 0.001");
    }

    #[test]
    fn q16_result_is_large() {
        let mut s = session();
        let r = s.query(&q16()).run().unwrap();
        assert!(
            r.row_count() > 100,
            "q16 is the big-result query, got {}",
            r.row_count()
        );
        // Sorted by count desc.
        let counts: Vec<i64> = r.rows.iter().map(|r| r[3].as_i64().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn family_covers_22_and_all_run_in_both_modes() {
        let base = generate(&GenConfig {
            scale_factor: 0.0005,
            ..GenConfig::default()
        });
        let mut opt = Session::new(base.clone()).with_mode(ExecMode::Optimized);
        let mut dbg = Session::new(base).with_mode(ExecMode::Debug);
        for (i, sql) in all_family().iter().enumerate() {
            let ro = opt
                .query(sql)
                .run()
                .unwrap_or_else(|e| panic!("q{} OPT failed: {e}\n{sql}", i + 1));
            let rd = dbg
                .query(sql)
                .run()
                .unwrap_or_else(|e| panic!("q{} DBG failed: {e}\n{sql}", i + 1));
            assert_eq!(ro.rows, rd.rows, "q{} modes disagree", i + 1);
        }
    }

    #[test]
    fn family_rejects_out_of_range() {
        let r = std::panic::catch_unwind(|| family(0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| family(23));
        assert!(r.is_err());
    }

    #[test]
    fn large_result_query_scales_with_lineitem() {
        let mut s = session();
        let r = s.query(&large_result()).run().unwrap();
        let li_rows = s.catalog().table("lineitem").unwrap().row_count();
        assert_eq!(r.row_count(), li_rows);
    }

    #[test]
    fn q13_top_customers_limit() {
        let mut s = session();
        let r = s.query(&family(13)).run().unwrap();
        assert!(r.row_count() <= 20);
        let counts: Vec<i64> = r.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "sorted desc");
    }

    #[test]
    fn q9_status_filter() {
        let mut s = session();
        let r = s.query(&family(9)).run().unwrap();
        assert_eq!(r.row_count(), 1);
        assert!(matches!(r.rows[0][0], Value::Float(_)));
    }
}
