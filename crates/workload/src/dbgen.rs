//! Deterministic TPC-H-like data generation.
//!
//! Table populations follow the TPC-H ratios (at scale factor 1: 150 k
//! customers, 1.5 M orders, ~6 M lineitems, 200 k parts, 10 k suppliers,
//! 800 k partsupps, 25 nations, 5 regions), scaled by a fractional
//! `scale_factor`. Dates are integers (days since 1992-01-01, spanning seven
//! years like TPC-H's 1992–1998). All value choices come from a single
//! recorded seed, so a config file line (`seed=42 sf=0.01`) fully
//! reproduces a data set — the repeatability chapter's requirement.
//!
//! Seed derivation is **splittable**: each table draws from
//! `SplitMix64::split(seed, TABLE_STREAM)`, and the orders/lineitem pair is
//! generated in fixed-size chunks of orders, each from its own substream.
//! A stream is a pure function of `(seed, stream id)` — not of how many
//! values other streams consumed — so any piece can be generated on any
//! thread in any order and the data set is bit-identical to serial
//! generation ([`generate_parallel`] asserts exactly that in the tests).

use minidb::{Catalog, DataType, Table, TableBuilder, Value};
use perfeval_stats::dist::{Distribution, Uniform, Zipf};
use perfeval_stats::rng::SplitMix64;

/// Days covered by the date columns (7 years).
pub const DATE_MAX: i64 = 2557;

/// Orders generated per chunk. One chunk is the unit of parallel work for
/// the orders/lineitem pair; its rng is `split(seed, STREAM_ORDERS)` then
/// `substream(chunk)`, so the chunk's rows never depend on which worker
/// generated the chunks before it.
pub const ORDERS_PER_CHUNK: usize = 1024;

// Per-table stream ids. Each table's generator is a pure function of
// `(config.seed, stream)`, never of how many values another table consumed.
const STREAM_SUPPLIER: u64 = 1;
const STREAM_CUSTOMER: u64 = 2;
const STREAM_PART: u64 = 3;
const STREAM_PARTSUPP: u64 = 4;
const STREAM_ORDERS: u64 = 5;

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// TPC-H-style scale factor (1.0 = full size; 0.01 is the test
    /// default).
    pub scale_factor: f64,
    /// Root seed; split into one independent stream per table (and per
    /// orders chunk), so pieces can be generated in any order.
    pub seed: u64,
    /// Optional Zipf exponent for part-key popularity in lineitem
    /// (None/0.0 = uniform). Skew is the knob optimizers hate.
    pub part_skew: Option<f64>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            scale_factor: 0.01,
            seed: 20080408, // the ICDE 2008 seminar date
            part_skew: None,
        }
    }
}

impl GenConfig {
    fn scaled(&self, base: u64) -> usize {
        ((base as f64 * self.scale_factor).round() as usize).max(1)
    }

    /// Number of customers at this scale.
    pub fn customers(&self) -> usize {
        self.scaled(150_000)
    }

    /// Number of orders at this scale.
    pub fn orders(&self) -> usize {
        self.scaled(1_500_000)
    }

    /// Number of parts at this scale.
    pub fn parts(&self) -> usize {
        self.scaled(200_000)
    }

    /// Number of suppliers at this scale.
    pub fn suppliers(&self) -> usize {
        self.scaled(10_000)
    }

    /// Number of orders/lineitem chunks at this scale.
    pub fn order_chunks(&self) -> usize {
        self.orders().div_ceil(ORDERS_PER_CHUNK)
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: [&str; 25] = [
    "Brand#11", "Brand#12", "Brand#13", "Brand#14", "Brand#15", "Brand#21", "Brand#22", "Brand#23",
    "Brand#24", "Brand#25", "Brand#31", "Brand#32", "Brand#33", "Brand#34", "Brand#35", "Brand#41",
    "Brand#42", "Brand#43", "Brand#44", "Brand#45", "Brand#51", "Brand#52", "Brand#53", "Brand#54",
    "Brand#55",
];
const TYPE_ADJ: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_MAT: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Generates the full catalog serially.
pub fn generate(config: &GenConfig) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(gen_region()).expect("fresh catalog");
    catalog.register(gen_nation()).expect("fresh catalog");
    catalog
        .register(gen_supplier(config))
        .expect("fresh catalog");
    catalog
        .register(gen_customer(config))
        .expect("fresh catalog");
    catalog.register(gen_part(config)).expect("fresh catalog");
    catalog
        .register(gen_partsupp(config))
        .expect("fresh catalog");
    let mut orders = orders_builder();
    let mut lineitem = lineitem_builder();
    for chunk in 0..config.order_chunks() {
        let (order_rows, line_rows) = gen_orders_chunk(config, chunk);
        for row in order_rows {
            orders.push_row(row).expect("static schema");
        }
        for row in line_rows {
            lineitem.push_row(row).expect("static schema");
        }
    }
    catalog.register(orders).expect("fresh catalog");
    catalog.register(lineitem).expect("fresh catalog");
    catalog
}

/// One unit of parallel generation work: a whole small table, or one chunk
/// of the orders/lineitem pair.
enum Piece {
    Table(Table),
    OrderChunk(Vec<Vec<Value>>, Vec<Vec<Value>>),
}

/// Generates the full catalog on `threads` workers, bit-identical to
/// [`generate`]: every piece draws from its own split stream, so neither
/// the worker that runs a piece nor the order pieces complete in can change
/// a single value. `threads <= 1` is the serial path.
pub fn generate_parallel(config: &GenConfig, threads: usize) -> Catalog {
    let chunks = config.order_chunks();
    let pieces = perfeval_exec::parallel_map(4 + chunks, threads, |i| match i {
        0 => Piece::Table(gen_supplier(config)),
        1 => Piece::Table(gen_customer(config)),
        2 => Piece::Table(gen_part(config)),
        3 => Piece::Table(gen_partsupp(config)),
        chunk => {
            let (order_rows, line_rows) = gen_orders_chunk(config, chunk - 4);
            Piece::OrderChunk(order_rows, line_rows)
        }
    })
    .0;

    let mut catalog = Catalog::new();
    catalog.register(gen_region()).expect("fresh catalog");
    catalog.register(gen_nation()).expect("fresh catalog");
    let mut orders = orders_builder();
    let mut lineitem = lineitem_builder();
    // parallel_map returns results in piece order, so assembling them in
    // sequence reproduces the canonical (serial) row order exactly.
    for piece in pieces {
        match piece {
            Piece::Table(table) => catalog.register(table).expect("fresh catalog"),
            Piece::OrderChunk(order_rows, line_rows) => {
                for row in order_rows {
                    orders.push_row(row).expect("static schema");
                }
                for row in line_rows {
                    lineitem.push_row(row).expect("static schema");
                }
            }
        }
    }
    catalog.register(orders).expect("fresh catalog");
    catalog.register(lineitem).expect("fresh catalog");
    catalog
}

fn gen_region() -> Table {
    let mut t = TableBuilder::new("region")
        .column("r_regionkey", DataType::Int)
        .column("r_name", DataType::Str)
        .build();
    for (i, name) in REGIONS.iter().enumerate() {
        t.push_row(vec![Value::Int(i as i64), Value::Str((*name).to_owned())])
            .expect("static schema");
    }
    t
}

fn gen_nation() -> Table {
    let mut t = TableBuilder::new("nation")
        .column("n_nationkey", DataType::Int)
        .column("n_name", DataType::Str)
        .column("n_regionkey", DataType::Int)
        .build();
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Str((*name).to_owned()),
            Value::Int(*region),
        ])
        .expect("static schema");
    }
    t
}

fn gen_supplier(config: &GenConfig) -> Table {
    let mut rng = SplitMix64::split(config.seed, STREAM_SUPPLIER);
    let mut t = TableBuilder::new("supplier")
        .column("s_suppkey", DataType::Int)
        .column("s_name", DataType::Str)
        .column("s_nationkey", DataType::Int)
        .column("s_acctbal", DataType::Float)
        .build();
    for i in 0..config.suppliers() {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Str(format!("Supplier#{i:09}")),
            Value::Int(rng.next_range_i64(0, 24)),
            Value::Float((rng.next_range_f64(-999.99, 9999.99) * 100.0).round() / 100.0),
        ])
        .expect("static schema");
    }
    t
}

fn gen_customer(config: &GenConfig) -> Table {
    let mut rng = SplitMix64::split(config.seed, STREAM_CUSTOMER);
    let mut t = TableBuilder::new("customer")
        .column("c_custkey", DataType::Int)
        .column("c_name", DataType::Str)
        .column("c_nationkey", DataType::Int)
        .column("c_acctbal", DataType::Float)
        .column("c_mktsegment", DataType::Str)
        .build();
    for i in 0..config.customers() {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Str(format!("Customer#{i:09}")),
            Value::Int(rng.next_range_i64(0, 24)),
            Value::Float((rng.next_range_f64(-999.99, 9999.99) * 100.0).round() / 100.0),
            Value::Str(SEGMENTS[rng.next_below(5) as usize].to_owned()),
        ])
        .expect("static schema");
    }
    t
}

fn gen_part(config: &GenConfig) -> Table {
    let mut rng = SplitMix64::split(config.seed, STREAM_PART);
    let mut t = TableBuilder::new("part")
        .column("p_partkey", DataType::Int)
        .column("p_name", DataType::Str)
        .column("p_brand", DataType::Str)
        .column("p_type", DataType::Str)
        .column("p_size", DataType::Int)
        .column("p_retailprice", DataType::Float)
        .build();
    for i in 0..config.parts() {
        let adj = TYPE_ADJ[rng.next_below(6) as usize];
        let mat = TYPE_MAT[rng.next_below(5) as usize];
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Str(format!("part-{i}")),
            Value::Str(BRANDS[rng.next_below(25) as usize].to_owned()),
            Value::Str(format!("{adj} {mat}")),
            Value::Int(rng.next_range_i64(1, 50)),
            Value::Float(900.0 + (i % 1000) as f64 / 10.0),
        ])
        .expect("static schema");
    }
    t
}

fn gen_partsupp(config: &GenConfig) -> Table {
    let mut rng = SplitMix64::split(config.seed, STREAM_PARTSUPP);
    let mut t = TableBuilder::new("partsupp")
        .column("ps_partkey", DataType::Int)
        .column("ps_suppkey", DataType::Int)
        .column("ps_availqty", DataType::Int)
        .column("ps_supplycost", DataType::Float)
        .build();
    let suppliers = config.suppliers() as i64;
    for part in 0..config.parts() {
        // Four suppliers per part, like TPC-H.
        for s in 0..4i64 {
            let supp = (part as i64 + s * (suppliers / 4 + 1)) % suppliers;
            t.push_row(vec![
                Value::Int(part as i64),
                Value::Int(supp),
                Value::Int(rng.next_range_i64(1, 9999)),
                Value::Float((rng.next_range_f64(1.0, 1000.0) * 100.0).round() / 100.0),
            ])
            .expect("static schema");
        }
    }
    t
}

fn orders_builder() -> Table {
    TableBuilder::new("orders")
        .column("o_orderkey", DataType::Int)
        .column("o_custkey", DataType::Int)
        .column("o_orderstatus", DataType::Str)
        .column("o_totalprice", DataType::Float)
        .column("o_orderdate", DataType::Int)
        .column("o_orderpriority", DataType::Str)
        .build()
}

fn lineitem_builder() -> Table {
    TableBuilder::new("lineitem")
        .column("l_orderkey", DataType::Int)
        .column("l_partkey", DataType::Int)
        .column("l_suppkey", DataType::Int)
        .column("l_quantity", DataType::Int)
        .column("l_extendedprice", DataType::Float)
        .column("l_discount", DataType::Float)
        .column("l_tax", DataType::Float)
        .column("l_returnflag", DataType::Str)
        .column("l_linestatus", DataType::Str)
        .column("l_shipdate", DataType::Int)
        .build()
}

/// Generates chunk `chunk` of the orders/lineitem pair as raw rows, from a
/// rng derived purely from `(seed, STREAM_ORDERS, chunk)`.
fn gen_orders_chunk(config: &GenConfig, chunk: usize) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut rng = SplitMix64::split(config.seed, STREAM_ORDERS).substream(chunk as u64);
    let lo = chunk * ORDERS_PER_CHUNK;
    let hi = (lo + ORDERS_PER_CHUNK).min(config.orders());
    let mut order_rows = Vec::with_capacity(hi - lo);
    // Mean 4 lineitems per order.
    let mut line_rows = Vec::with_capacity((hi - lo) * 4);

    let customers = config.customers() as i64;
    let parts = config.parts() as i64;
    let suppliers = config.suppliers() as i64;
    let mut price_dist = Uniform::new(901.0, 104_949.5);
    let zipf = config
        .part_skew
        .filter(|s| *s > 0.0)
        .map(|s| Zipf::new(parts as usize, s));

    for o in lo..hi {
        let orderdate = rng.next_range_i64(0, DATE_MAX - 151);
        let lines = rng.next_range_i64(1, 7);
        let mut total = 0.0;
        for _ in 0..lines {
            let partkey = match &zipf {
                Some(z) => (z.sample_rank(&mut rng) - 1) as i64,
                None => rng.next_below(parts as u64) as i64,
            };
            let suppkey = (partkey + rng.next_range_i64(0, 3) * (suppliers / 4 + 1)) % suppliers;
            let quantity = rng.next_range_i64(1, 50);
            let extendedprice =
                (quantity as f64 * price_dist.sample(&mut rng) / 50.0 * 100.0).round() / 100.0;
            let discount = rng.next_range_i64(0, 10) as f64 / 100.0;
            let tax = rng.next_range_i64(0, 8) as f64 / 100.0;
            let shipdate = orderdate + rng.next_range_i64(1, 121);
            // Return flag correlates with ship date like TPC-H: old lines
            // are returned or accepted, recent ones still none.
            let returnflag = if shipdate < DATE_MAX - 600 {
                if rng.next_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate < DATE_MAX - 365 { "F" } else { "O" };
            total += extendedprice;
            line_rows.push(vec![
                Value::Int(o as i64),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(quantity),
                Value::Float(extendedprice),
                Value::Float(discount),
                Value::Float(tax),
                Value::Str(returnflag.to_owned()),
                Value::Str(linestatus.to_owned()),
                Value::Int(shipdate),
            ]);
        }
        order_rows.push(vec![
            Value::Int(o as i64),
            Value::Int(rng.next_below(customers as u64) as i64),
            Value::Str(if orderdate < DATE_MAX - 365 { "F" } else { "O" }.to_owned()),
            Value::Float((total * 100.0).round() / 100.0),
            Value::Int(orderdate),
            Value::Str(PRIORITIES[rng.next_below(5) as usize].to_owned()),
        ]);
    }
    (order_rows, line_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GenConfig {
        GenConfig {
            scale_factor: 0.001,
            ..GenConfig::default()
        }
    }

    #[test]
    fn generates_all_eight_tables() {
        let c = generate(&tiny());
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(c.table(t).is_ok(), "missing {t}");
        }
    }

    #[test]
    fn row_counts_follow_tpch_ratios() {
        let cfg = tiny();
        let c = generate(&cfg);
        assert_eq!(c.table("region").unwrap().row_count(), 5);
        assert_eq!(c.table("nation").unwrap().row_count(), 25);
        assert_eq!(c.table("customer").unwrap().row_count(), 150);
        assert_eq!(c.table("orders").unwrap().row_count(), 1500);
        assert_eq!(c.table("part").unwrap().row_count(), 200);
        assert_eq!(c.table("partsupp").unwrap().row_count(), 800);
        let li = c.table("lineitem").unwrap().row_count();
        // 1..=7 lines per order, mean 4: expect ~6000.
        assert!((4500..7500).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        let la = a.table("lineitem").unwrap();
        let lb = b.table("lineitem").unwrap();
        assert_eq!(la.row_count(), lb.row_count());
        for i in (0..la.row_count()).step_by(97) {
            assert_eq!(la.row(i), lb.row(i), "row {i}");
        }
    }

    #[test]
    fn different_seed_different_data() {
        let a = generate(&tiny());
        let b = generate(&GenConfig { seed: 1, ..tiny() });
        let la = a.table("lineitem").unwrap();
        let lb = b.table("lineitem").unwrap();
        let differs = (0..la.row_count().min(lb.row_count())).any(|i| la.row(i) != lb.row(i));
        assert!(differs);
    }

    #[test]
    fn scale_factor_scales_linearly() {
        let small = generate(&tiny());
        let large = generate(&GenConfig {
            scale_factor: 0.002,
            ..tiny()
        });
        let rs = small.table("orders").unwrap().row_count();
        let rl = large.table("orders").unwrap().row_count();
        assert_eq!(rl, 2 * rs);
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let cfg = tiny();
        let c = generate(&cfg);
        let li = c.table("lineitem").unwrap();
        let parts = cfg.parts() as i64;
        let supps = cfg.suppliers() as i64;
        for i in 0..li.row_count() {
            let row = li.row(i);
            let pk = row[1].as_i64().unwrap();
            let sk = row[2].as_i64().unwrap();
            assert!((0..parts).contains(&pk), "partkey {pk}");
            assert!((0..supps).contains(&sk), "suppkey {sk}");
        }
        let orders = c.table("orders").unwrap();
        let custs = cfg.customers() as i64;
        for i in 0..orders.row_count() {
            let ck = orders.row(i)[1].as_i64().unwrap();
            assert!((0..custs).contains(&ck));
        }
    }

    #[test]
    fn dates_and_flags_are_consistent() {
        let c = generate(&tiny());
        let li = c.table("lineitem").unwrap();
        for i in 0..li.row_count() {
            let row = li.row(i);
            let ship = row[9].as_i64().unwrap();
            assert!((0..=DATE_MAX).contains(&ship), "shipdate {ship}");
            let flag = row[7].as_str().unwrap().to_owned();
            if ship >= DATE_MAX - 600 {
                assert_eq!(flag, "N", "recent lines are not returned");
            }
            let disc = row[5].as_f64().unwrap();
            assert!((0.0..=0.10).contains(&disc));
        }
    }

    /// The satellite requirement: parallel generation cannot change the
    /// data. Every table, every row, bit-identical across thread counts.
    #[test]
    fn parallel_generation_is_bit_identical_to_serial() {
        let cfg = tiny();
        assert!(cfg.order_chunks() >= 2, "test must span multiple chunks");
        let serial = generate(&cfg);
        for threads in [1, 4] {
            let parallel = generate_parallel(&cfg, threads);
            for name in [
                "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
                "lineitem",
            ] {
                let a = serial.table(name).unwrap();
                let b = parallel.table(name).unwrap();
                assert_eq!(
                    a.row_count(),
                    b.row_count(),
                    "{name} rows ({threads} threads)"
                );
                for i in 0..a.row_count() {
                    assert_eq!(a.row(i), b.row(i), "{name} row {i} ({threads} threads)");
                }
            }
        }
    }

    /// Chunk streams are pure functions of `(seed, chunk)`: generating a
    /// chunk does not require (or disturb) any other chunk.
    #[test]
    fn order_chunks_are_independent_of_generation_order() {
        let cfg = tiny();
        let forward: Vec<_> = (0..cfg.order_chunks())
            .map(|c| gen_orders_chunk(&cfg, c))
            .collect();
        let mut backward: Vec<_> = (0..cfg.order_chunks())
            .rev()
            .map(|c| gen_orders_chunk(&cfg, c))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn skewed_generation_concentrates_part_popularity() {
        let uniform = generate(&tiny());
        let skewed = generate(&GenConfig {
            part_skew: Some(1.0),
            ..tiny()
        });
        let count_top_part = |c: &Catalog| {
            let li = c.table("lineitem").unwrap();
            let mut counts = std::collections::HashMap::new();
            for i in 0..li.row_count() {
                *counts.entry(li.row(i)[1].as_i64().unwrap()).or_insert(0u32) += 1;
            }
            counts.values().copied().max().unwrap_or(0) as f64 / li.row_count() as f64
        };
        let u = count_top_part(&uniform);
        let s = count_top_part(&skewed);
        assert!(
            s > 3.0 * u,
            "skewed top-part share {s:.4} should dwarf uniform {u:.4}"
        );
    }
}
