//! # workload
//!
//! A TPC-H-like data and query generator — the workload substrate for the
//! `perfeval` reproduction.
//!
//! The tutorial runs its measurement examples on TPC-H (scale factor 1) and
//! uses the benchmark's well-known queries (Q1, Q6, Q16) as shorthand for
//! workload *shapes*: Q1 is a scan-heavy multi-aggregate, Q6 a selective
//! scan, Q16 a join + group-by with a large result. This crate generates a
//! deterministic scaled-down equivalent:
//!
//! * [`dbgen::generate`] — builds the eight-table schema at a fractional
//!   scale factor from one recorded seed (repeatability: identical seed ⇒
//!   bit-identical data),
//! * [`queries`] — the Q1/Q6/Q16-like statements plus a 22-query family
//!   used by the DBG/OPT sweep (experiment E3),
//! * [`micro`] — micro-benchmark tables and the `SELECT MAX(col)` scan of
//!   the memory-wall experiment, with controllable size, value range,
//!   distribution (uniform / Zipf-skewed), and correlation — exactly the
//!   knobs slide 11 says a micro-benchmark must expose.
//!
//! ```
//! use workload::dbgen::{generate, GenConfig};
//!
//! let catalog = generate(&GenConfig { scale_factor: 0.001, ..GenConfig::default() });
//! let li = catalog.table("lineitem").unwrap();
//! assert!(li.row_count() > 1000);
//! ```
#![warn(missing_docs)]

pub mod dbgen;
pub mod micro;
pub mod queries;

pub use dbgen::{generate, GenConfig};
