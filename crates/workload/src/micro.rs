//! Micro-benchmark tables: the controllable single-operator workloads of
//! the tutorial's micro-benchmark chapter (slides 10–12).
//!
//! A good micro-benchmark controls: data size (scalability), value range
//! and distribution, and correlation. [`MicroConfig`] exposes exactly those
//! knobs and [`build_micro_table`] materializes the table; the classic
//! `SELECT MAX(column) FROM table` scan is [`scan_max_sql`].

use minidb::{DataType, Table, TableBuilder, Value};
use perfeval_stats::dist::{correlated_pair, Distribution, Uniform, Zipf};
use perfeval_stats::rng::SplitMix64;

/// Value distribution of the micro table's payload column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MicroDist {
    /// Uniform integers in `[0, range)`.
    Uniform {
        /// Exclusive upper bound.
        range: i64,
    },
    /// Zipf-distributed ranks in `1..=range` with exponent `s`.
    Zipf {
        /// Number of distinct ranks.
        range: usize,
        /// Skew exponent.
        s: f64,
    },
}

/// Micro-benchmark table parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroConfig {
    /// Number of rows.
    pub rows: usize,
    /// Payload distribution.
    pub dist: MicroDist,
    /// Pearson correlation between the two float columns `x` and `y`
    /// (0.0 = independent).
    pub correlation: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            rows: 100_000,
            dist: MicroDist::Uniform { range: 1_000_000 },
            correlation: 0.0,
            seed: 7,
        }
    }
}

/// Builds the micro table `micro(k, v, x, y)`:
/// `k` = row id, `v` = distributed payload, `x`/`y` = correlated floats.
pub fn build_micro_table(config: &MicroConfig) -> Table {
    let mut rng = SplitMix64::new(config.seed);
    let mut t = TableBuilder::new("micro")
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .column("x", DataType::Float)
        .column("y", DataType::Float)
        .build();
    let (xs, ys) = correlated_pair(&mut rng, config.rows, config.correlation);
    match config.dist {
        MicroDist::Uniform { range } => {
            let mut d = Uniform::new(0.0, range as f64);
            for i in 0..config.rows {
                t.push_row(vec![
                    Value::Int(i as i64),
                    Value::Int(d.sample(&mut rng) as i64),
                    Value::Float(xs[i]),
                    Value::Float(ys[i]),
                ])
                .expect("static schema");
            }
        }
        MicroDist::Zipf { range, s } => {
            let z = Zipf::new(range, s);
            for i in 0..config.rows {
                t.push_row(vec![
                    Value::Int(i as i64),
                    Value::Int(z.sample_rank(&mut rng) as i64),
                    Value::Float(xs[i]),
                    Value::Float(ys[i]),
                ])
                .expect("static schema");
            }
        }
    }
    t
}

/// The memory-wall micro-benchmark: `SELECT MAX(column) FROM table`.
pub fn scan_max_sql() -> &'static str {
    "SELECT MAX(v) FROM micro"
}

/// A selectivity-parameterized filter over the uniform payload: returns SQL
/// selecting roughly `selectivity` (0..1) of the rows when the payload is
/// `Uniform { range }`.
pub fn selective_scan_sql(range: i64, selectivity: f64) -> String {
    let cutoff = (range as f64 * selectivity) as i64;
    format!("SELECT COUNT(*) FROM micro WHERE v < {cutoff}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Catalog, Session};
    use perfeval_stats::dist::pearson;

    fn small(dist: MicroDist) -> MicroConfig {
        MicroConfig {
            rows: 5_000,
            dist,
            correlation: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn builds_requested_rows() {
        let t = build_micro_table(&small(MicroDist::Uniform { range: 100 }));
        assert_eq!(t.row_count(), 5_000);
        assert_eq!(t.column_names(), &["k", "v", "x", "y"]);
    }

    #[test]
    fn uniform_payload_in_range() {
        let t = build_micro_table(&small(MicroDist::Uniform { range: 100 }));
        for i in 0..t.row_count() {
            let v = t.row(i)[1].as_i64().unwrap();
            assert!((0..100).contains(&v));
        }
    }

    #[test]
    fn zipf_payload_is_skewed() {
        let t = build_micro_table(&small(MicroDist::Zipf {
            range: 1000,
            s: 1.2,
        }));
        let mut ones = 0;
        for i in 0..t.row_count() {
            if t.row(i)[1].as_i64().unwrap() == 1 {
                ones += 1;
            }
        }
        assert!(
            ones as f64 > 0.1 * t.row_count() as f64,
            "rank 1 should dominate: {ones}"
        );
    }

    #[test]
    fn correlation_knob_works() {
        let mut cfg = small(MicroDist::Uniform { range: 10 });
        cfg.correlation = 0.9;
        cfg.rows = 20_000;
        let t = build_micro_table(&cfg);
        let xs: Vec<f64> = (0..t.row_count())
            .map(|i| t.row(i)[2].as_f64().unwrap())
            .collect();
        let ys: Vec<f64> = (0..t.row_count())
            .map(|i| t.row(i)[3].as_f64().unwrap())
            .collect();
        let rho = pearson(&xs, &ys);
        assert!((rho - 0.9).abs() < 0.05, "rho {rho}");
    }

    #[test]
    fn scan_max_runs() {
        let mut catalog = Catalog::new();
        catalog
            .register(build_micro_table(&small(MicroDist::Uniform { range: 50 })))
            .unwrap();
        let mut s = Session::new(catalog);
        let r = s.query(scan_max_sql()).run().unwrap();
        let max = r.rows[0][0].as_i64().unwrap();
        assert!((0..50).contains(&max));
        assert_eq!(max, 49, "5000 uniform draws below 50 hit the max w.h.p.");
    }

    #[test]
    fn selectivity_is_roughly_honored() {
        let mut catalog = Catalog::new();
        let cfg = MicroConfig {
            rows: 20_000,
            dist: MicroDist::Uniform { range: 1_000 },
            correlation: 0.0,
            seed: 11,
        };
        catalog.register(build_micro_table(&cfg)).unwrap();
        let mut s = Session::new(catalog);
        for sel in [0.1, 0.5, 0.9] {
            let r = s.query(&selective_scan_sql(1_000, sel)).run().unwrap();
            let n = r.rows[0][0].as_i64().unwrap() as f64;
            let got = n / 20_000.0;
            assert!((got - sel).abs() < 0.03, "target {sel}, got {got}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_micro_table(&small(MicroDist::Uniform { range: 100 }));
        let b = build_micro_table(&small(MicroDist::Uniform { range: 100 }));
        assert_eq!(a.row(42), b.row(42));
    }
}
