//! A hand-rolled worker pool over `std::thread::scope`.
//!
//! The dependency policy keeps this workspace free of crossbeam/rayon, so
//! the pool is the minimal correct construction: an atomic cursor over the
//! work list (dynamic scheduling — fast units don't wait behind slow ones)
//! and a mutex-guarded slot vector for results. Determinism comes from the
//! *slots*, not the schedule: result `i` always lands in slot `i`, so the
//! output is independent of which worker ran it and when.

use perfeval_trace::Tracer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-worker execution counters, for throughput/straggler reporting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Units this worker completed.
    pub units: usize,
    /// Total busy time, seconds.
    pub busy_secs: f64,
}

/// Applies `f` to every index in `0..count` using `threads` workers and
/// returns the results in index order, plus per-worker statistics.
///
/// `f` is called as `f(index)`; the returned vector's element `i` is
/// `f(i)` regardless of thread count or scheduling. With `threads <= 1`
/// the work runs on the calling thread (no spawn overhead).
///
/// # Panics
/// Propagates a panic from any worker invocation of `f`.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_traced(count, threads, None, f)
}

/// [`parallel_map`] with an optional tracer: workers get stable names
/// (`worker-<n>`), and each registers + labels its tracing lane before
/// taking work, so a snapshot stitches every worker into one timeline.
///
/// The closure runs on the worker threads, so spans it opens against the
/// same tracer land on the correct per-worker lane automatically.
///
/// # Panics
/// Propagates a panic from any worker invocation of `f`.
pub fn parallel_map_traced<T, F>(
    count: usize,
    threads: usize,
    tracer: Option<&Tracer>,
    f: F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    if threads <= 1 {
        let t0 = std::time::Instant::now();
        let results = (0..count).map(&f).collect();
        return (
            results,
            vec![WorkerStats {
                units: count,
                busy_secs: t0.elapsed().as_secs_f64(),
            }],
        );
    }

    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let stats: Mutex<Vec<WorkerStats>> = Mutex::new(vec![WorkerStats::default(); threads]);

    std::thread::scope(|scope| {
        let (cursor, slots, stats, f) = (&cursor, &slots, &stats, &f);
        for worker in 0..threads {
            let name = format!("worker-{worker}");
            std::thread::Builder::new()
                .name(name.clone())
                .spawn_scoped(scope, move || {
                    if let Some(t) = tracer {
                        t.label_thread(&name);
                    }
                    let mut local = WorkerStats::default();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let t0 = std::time::Instant::now();
                        let value = f(i);
                        local.busy_secs += t0.elapsed().as_secs_f64();
                        local.units += 1;
                        slots.lock().expect("pool slots poisoned")[i] = Some(value);
                    }
                    stats.lock().expect("pool stats poisoned")[worker] = local;
                })
                .expect("failed to spawn pool worker");
        }
    });

    let results = slots
        .into_inner()
        .expect("pool slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index executed"))
        .collect();
    (results, stats.into_inner().expect("pool stats poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let (out, _) = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_multi() {
        let (serial, stats1) = parallel_map(37, 1, |i| i as u64 * 3 + 1);
        let (parallel, _) = parallel_map(37, 8, |i| i as u64 * 3 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(stats1.len(), 1);
        assert_eq!(stats1[0].units, 37);
    }

    #[test]
    fn worker_stats_cover_all_units() {
        let (_, stats) = parallel_map(64, 3, |i| i);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|s| s.units).sum::<usize>(), 64);
    }

    #[test]
    fn empty_work_list() {
        let (out, _) = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn threads_capped_by_count() {
        // 2 units, 16 threads requested: only 2 workers spawn.
        let (out, stats) = parallel_map(2, 16, |i| i + 10);
        assert_eq!(out, vec![10, 11]);
        assert_eq!(stats.len(), 2);
    }
}
