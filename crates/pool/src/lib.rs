//! A hand-rolled worker pool over `std::thread::scope`.
//!
//! The dependency policy keeps this workspace free of crossbeam/rayon, so
//! the pool is the minimal correct construction: an atomic cursor over the
//! work list (dynamic scheduling — fast units don't wait behind slow ones)
//! and a mutex-guarded slot vector for results. Determinism comes from the
//! *slots*, not the schedule: result `i` always lands in slot `i`, so the
//! output is independent of which worker ran it and when.
//!
//! Failure model: each invocation of the work closure runs under
//! `catch_unwind`, so one panicking unit never takes down a worker, poisons
//! a lock, or abandons the remaining units. [`parallel_map_caught`] exposes
//! the panic as a *value* ([`CaughtPanic`], slot-addressed like any other
//! result); [`parallel_map`] keeps the historical fail-fast contract by
//! resuming the first caught panic — in index order, deterministically —
//! after every unit has finished. Lock poisoning is recovered rather than
//! escalated: a poisoned mutex only ever means a worker panicked, and the
//! data under it is still valid.

use perfeval_trace::Tracer;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Per-worker execution counters, for throughput/straggler reporting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Units this worker completed (including units whose closure
    /// panicked — the worker still spent the time).
    pub units: usize,
    /// Total busy time, seconds.
    pub busy_secs: f64,
}

/// A panic caught from one invocation of the work closure, surfaced as a
/// value: the extracted message for reporting, and the original payload so
/// fail-fast callers can resume the unwind without losing information.
#[derive(Debug)]
pub struct CaughtPanic {
    /// Human-readable panic message (`&str`/`String` payloads pass
    /// through; anything else is labelled opaquely).
    pub message: String,
    /// The original panic payload.
    pub payload: Box<dyn std::any::Any + Send>,
}

impl CaughtPanic {
    fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        CaughtPanic { message, payload }
    }
}

/// Locks a mutex, recovering the data from a poisoned lock: poisoning here
/// only ever means another worker's closure panicked, and the slot/stat
/// data is still consistent (each entry is written exactly once). Turning
/// that into a second panic would mask the original failure.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Applies `f` to every index in `0..count` using `threads` workers and
/// returns the results in index order, plus per-worker statistics.
///
/// `f` is called as `f(index)`; the returned vector's element `i` is
/// `f(i)` regardless of thread count or scheduling. With `threads <= 1`
/// the work runs on the calling thread (no spawn overhead).
///
/// # Panics
/// If any invocation of `f` panicked, resumes the lowest-index panic on
/// the calling thread — after all other units have completed.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_traced(count, threads, None, f)
}

/// [`parallel_map`] with an optional tracer: workers get stable names
/// (`worker-<n>`), and each registers + labels its tracing lane before
/// taking work, so a snapshot stitches every worker into one timeline.
///
/// The closure runs on the worker threads, so spans it opens against the
/// same tracer land on the correct per-worker lane automatically.
///
/// # Panics
/// If any invocation of `f` panicked, resumes the lowest-index panic on
/// the calling thread — after all other units have completed.
pub fn parallel_map_traced<T, F>(
    count: usize,
    threads: usize,
    tracer: Option<&Tracer>,
    f: F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (results, stats) = parallel_map_caught(count, threads, tracer, f);
    let values = results
        .into_iter()
        .map(|slot| match slot {
            Ok(value) => value,
            Err(caught) => std::panic::resume_unwind(caught.payload),
        })
        .collect();
    (values, stats)
}

/// [`parallel_map_traced`] with panics contained per unit: element `i` is
/// `Ok(f(i))`, or `Err(CaughtPanic)` if that invocation panicked. All
/// units always execute; a panic in one never aborts the others. This is
/// the primitive the experiment scheduler's failure containment builds on.
pub fn parallel_map_caught<T, F>(
    count: usize,
    threads: usize,
    tracer: Option<&Tracer>,
    f: F,
) -> (Vec<Result<T, CaughtPanic>>, Vec<WorkerStats>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // AssertUnwindSafe: each invocation writes only its own slot, and `f`
    // is immutable-borrowed — a caught panic cannot leave pool state torn.
    let call = |i: usize| -> Result<T, CaughtPanic> {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(i))).map_err(CaughtPanic::from_payload)
    };

    let threads = threads.max(1).min(count.max(1));
    if threads <= 1 {
        let t0 = std::time::Instant::now();
        let results = (0..count).map(call).collect();
        return (
            results,
            vec![WorkerStats {
                units: count,
                busy_secs: t0.elapsed().as_secs_f64(),
            }],
        );
    }

    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, CaughtPanic>>>> =
        Mutex::new((0..count).map(|_| None).collect());
    let stats: Mutex<Vec<WorkerStats>> = Mutex::new(vec![WorkerStats::default(); threads]);

    std::thread::scope(|scope| {
        let (cursor, slots, stats, call) = (&cursor, &slots, &stats, &call);
        for worker in 0..threads {
            let name = format!("worker-{worker}");
            std::thread::Builder::new()
                .name(name.clone())
                .spawn_scoped(scope, move || {
                    if let Some(t) = tracer {
                        t.label_thread(&name);
                    }
                    let mut local = WorkerStats::default();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let t0 = std::time::Instant::now();
                        let value = call(i);
                        local.busy_secs += t0.elapsed().as_secs_f64();
                        local.units += 1;
                        lock_recover(slots)[i] = Some(value);
                    }
                    lock_recover(stats)[worker] = local;
                })
                .expect("failed to spawn pool worker");
        }
    });

    let results = lock_recover(&slots)
        .iter_mut()
        .map(|slot| slot.take().expect("every index executed"))
        .collect();
    let stats = lock_recover(&stats).clone();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let (out, _) = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_multi() {
        let (serial, stats1) = parallel_map(37, 1, |i| i as u64 * 3 + 1);
        let (parallel, _) = parallel_map(37, 8, |i| i as u64 * 3 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(stats1.len(), 1);
        assert_eq!(stats1[0].units, 37);
    }

    #[test]
    fn worker_stats_cover_all_units() {
        let (_, stats) = parallel_map(64, 3, |i| i);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|s| s.units).sum::<usize>(), 64);
    }

    #[test]
    fn empty_work_list() {
        let (out, _) = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn threads_capped_by_count() {
        // 2 units, 16 threads requested: only 2 workers spawn.
        let (out, stats) = parallel_map(2, 16, |i| i + 10);
        assert_eq!(out, vec![10, 11]);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn caught_panics_are_values_and_other_units_complete() {
        for threads in [1, 4] {
            let (out, stats) = parallel_map_caught(20, threads, None, |i| {
                if i % 7 == 3 {
                    panic!("unit {i} died");
                }
                i * 2
            });
            assert_eq!(out.len(), 20);
            for (i, slot) in out.iter().enumerate() {
                match slot {
                    Ok(v) => {
                        assert_ne!(i % 7, 3);
                        assert_eq!(*v, i * 2);
                    }
                    Err(caught) => {
                        assert_eq!(i % 7, 3, "only armed units fail");
                        assert_eq!(caught.message, format!("unit {i} died"));
                    }
                }
            }
            // Every unit (including panicked ones) is accounted for.
            assert_eq!(
                stats.iter().map(|s| s.units).sum::<usize>(),
                20,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_map_resumes_the_lowest_index_panic() {
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(16, 4, |i| {
                if i == 5 || i == 11 {
                    panic!("boom {i}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = result.expect_err("panic propagates");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert_eq!(message, "boom 5", "lowest index wins, deterministically");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            14,
            "all healthy units still ran"
        );
    }

    #[test]
    fn non_string_payloads_are_labelled() {
        let (out, _) = parallel_map_caught(1, 1, None, |_| -> usize {
            std::panic::panic_any(77u32);
        });
        let err = out.into_iter().next().unwrap().unwrap_err();
        assert_eq!(err.message, "non-string panic payload");
        assert_eq!(err.payload.downcast_ref::<u32>(), Some(&77));
    }
}
