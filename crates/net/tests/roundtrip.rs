//! The subsystem's acceptance bar: queries over the wire are **bit-identical**
//! to the same queries through an in-process [`Session`] — over loopback and
//! over real TCP, in both server cores (thread-per-connection and the sharded
//! readiness loop at shard counts 1, 2 and 8), for the whole 22-query family —
//! and concurrent clients are isolated per connection.
//!
//! Floats are compared by `to_bits()`: `PartialEq` would wave through
//! `-0.0 == 0.0` and reject `NaN == NaN`, and either slip would hide a codec
//! bug.

use std::sync::{Arc, OnceLock};

use minidb::{Catalog, Session, Value};
use minidb_net::{
    Client, LoopbackEndpoint, Server, ServerMode, TcpEndpoint, TcpTransport, Transport,
};
use proptest::prelude::*;
use workload::dbgen::{generate, GenConfig};
use workload::queries;

fn catalog() -> Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG
        .get_or_init(|| {
            generate(&GenConfig {
                scale_factor: 0.002,
                ..GenConfig::default()
            })
        })
        .clone()
}

/// The ground truth: the same query through an in-process session.
fn expected(sql: &str) -> (Vec<String>, Vec<Vec<Value>>) {
    let mut session = Session::new(catalog());
    let r = session.query(sql).run().expect("in-process run");
    (r.column_names, r.rows)
}

/// Bit-level equality: floats by `to_bits()`, everything else by `==`.
fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn assert_rows_bit_identical(sql: &str, got: &[Vec<Value>], want: &[Vec<Value>]) {
    assert_eq!(got.len(), want.len(), "row count for {sql}");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "row {i} width for {sql}");
        for (j, (gv, wv)) in g.iter().zip(w).enumerate() {
            assert!(
                value_bits_eq(gv, wv),
                "{sql}: row {i} col {j}: wire {gv:?} != session {wv:?}"
            );
        }
    }
}

fn check_over(client: &mut Client, sql: &str) {
    let (want_cols, want_rows) = expected(sql);
    let r = client.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    assert_eq!(r.columns, want_cols, "columns for {sql}");
    assert_rows_bit_identical(sql, &r.rows, &want_rows);
    assert_eq!(
        r.footer.rows,
        want_rows.len() as u64,
        "footer rows for {sql}"
    );
}

/// Runs the whole family (plus the wide result) through one connection
/// against a server in `mode`, over loopback or TCP.
fn check_family(mode: ServerMode, tcp: bool) {
    let (server, transport): (_, Box<dyn Transport>) = if tcp {
        let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = ep.local_addr().unwrap();
        let server = Server::builder()
            .transport(ep)
            .mode(mode)
            .serve(|| Session::new(catalog()));
        (server, Box::new(TcpTransport::connect(addr).unwrap()))
    } else {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(mode)
            .serve(|| Session::new(catalog()));
        (server, Box::new(dial.connect().unwrap()))
    };
    let mut client = Client::connect(transport).unwrap();
    for i in 1..=22 {
        check_over(&mut client, &queries::family(i));
    }
    check_over(&mut client, &queries::large_result());
    client.close().unwrap();
    server.wait();
}

#[test]
fn all_family_queries_bit_identical_over_loopback() {
    check_family(ServerMode::ThreadPerConn { workers: 1 }, false);
}

#[test]
fn all_family_queries_bit_identical_over_tcp() {
    check_family(ServerMode::ThreadPerConn { workers: 1 }, true);
}

#[test]
fn sharded_loopback_bit_identical_at_shard_counts_1_2_8() {
    for shards in [1, 2, 8] {
        check_family(
            ServerMode::Sharded {
                shards,
                queue_depth: 64,
            },
            false,
        );
    }
}

#[test]
fn sharded_tcp_bit_identical_at_shard_counts_1_2_8() {
    for shards in [1, 2, 8] {
        check_family(
            ServerMode::Sharded {
                shards,
                queue_depth: 64,
            },
            true,
        );
    }
}

#[test]
fn large_result_streams_through_a_tiny_pipe_bit_identically() {
    // A 512-byte loopback pipe forces the server to block on nearly every
    // batch: the result must arrive intact anyway — streaming + backpressure
    // change timing, never answers.
    let ep = LoopbackEndpoint::with_capacity(512);
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(ServerMode::ThreadPerConn { workers: 1 })
        .serve(|| Session::new(catalog()));
    let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    check_over(&mut client, &queries::large_result());
    client.close().unwrap();
    server.wait();
}

#[test]
fn sharded_large_result_streams_through_a_tiny_pipe_bit_identically() {
    // Same squeeze against the event-driven core: the bounded write queue
    // plus a 512-byte pipe means almost every batch waits for the reader,
    // and the nonblocking writer must resume exactly where it left off.
    let ep = LoopbackEndpoint::with_capacity(512);
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(ServerMode::Sharded {
            shards: 2,
            queue_depth: 2,
        })
        .serve(|| Session::new(catalog()));
    let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    check_over(&mut client, &queries::large_result());
    client.close().unwrap();
    server.wait();
}

proptest! {
    /// Any family query, either transport, either server core, fresh
    /// connection each time: wire results equal in-process results bit for
    /// bit.
    #[test]
    fn random_family_query_roundtrips_bit_identically(
        i in 1usize..23,
        tcp in any::<bool>(),
        sharded in any::<bool>(),
    ) {
        let sql = queries::family(i);
        let (want_cols, want_rows) = expected(&sql);
        let mode = if sharded {
            ServerMode::Sharded { shards: 2, queue_depth: 8 }
        } else {
            ServerMode::ThreadPerConn { workers: 1 }
        };
        let (server, transport): (_, Box<dyn Transport>) = if tcp {
            let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
            let addr = ep.local_addr().unwrap();
            let server = Server::builder().transport(ep).mode(mode)
                .serve(|| Session::new(catalog()));
            (server, Box::new(TcpTransport::connect(addr).unwrap()))
        } else {
            let ep = LoopbackEndpoint::new();
            let dial = ep.connector();
            let server = Server::builder().transport(ep).mode(mode)
                .serve(|| Session::new(catalog()));
            (server, Box::new(dial.connect().unwrap()))
        };
        let mut client = Client::connect(transport).unwrap();
        let r = client.query(&sql).unwrap();
        prop_assert_eq!(&r.columns, &want_cols);
        prop_assert_eq!(r.rows.len(), want_rows.len());
        for (g, w) in r.rows.iter().zip(&want_rows) {
            for (gv, wv) in g.iter().zip(w) {
                prop_assert!(value_bits_eq(gv, wv), "wire {:?} != session {:?}", gv, wv);
            }
        }
        client.close().unwrap();
        server.wait();
    }
}

#[test]
fn concurrent_clients_are_isolated_per_connection() {
    // N clients × M queries, all at once, against a sharded server whose
    // factory hands every connection a *private* empty catalog. Each client
    // creates the same table name and writes its own payload; isolation
    // means nobody ever reads another connection's rows — and the shared
    // read-only queries still come back bit-identical.
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 6;

    let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
    let addr = ep.local_addr().unwrap();
    let server = Arc::new(
        Server::builder()
            .transport(ep)
            .mode(ServerMode::Sharded {
                shards: 2,
                queue_depth: 64,
            })
            .serve(|| Session::new(Catalog::new())),
    );

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(Box::new(TcpTransport::connect(addr).unwrap())).unwrap();
                // Same table name on every connection — only isolation
                // keeps these from colliding.
                client.query("CREATE TABLE mine (who INT, v INT)").unwrap();
                for q in 0..QUERIES_PER_CLIENT {
                    client
                        .query(&format!(
                            "INSERT INTO mine VALUES ({c}, {v})",
                            v = c * 100 + q
                        ))
                        .unwrap();
                    let r = client.query("SELECT COUNT(*) FROM mine").unwrap();
                    assert_eq!(
                        r.rows,
                        vec![vec![Value::Int((q + 1) as i64)]],
                        "client {c} sees exactly its own {q}+1 inserts"
                    );
                }
                let r = client
                    .query("SELECT MAX(v) FROM mine WHERE who = 0 OR who > 0")
                    .unwrap();
                assert_eq!(
                    r.rows,
                    vec![vec![Value::Int((c * 100 + QUERIES_PER_CLIENT - 1) as i64)]],
                    "client {c}'s max is its own last value — no foreign rows"
                );
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let stats = Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .wait();
    assert_eq!(stats.connections, CLIENTS as u64);
    assert_eq!(
        stats.queries,
        (CLIENTS * (2 * QUERIES_PER_CLIENT + 2)) as u64,
        "create + (insert+count)*M + final select per client"
    );
    assert_eq!(stats.disconnects, 0);
    assert_eq!(stats.worker_panics, 0);
}
