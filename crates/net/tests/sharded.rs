//! Behavioral contracts specific to the sharded server core: bounded write
//! queues under a slow reader (backpressure that is *charged to serialize*,
//! never unbounded memory), and deterministic connection→shard placement.

use std::sync::Arc;
use std::time::Duration;

use minidb::{Catalog, DataType, Session, TableBuilder, Value};
use minidb_net::{Client, Frame, FramedIo, LoopbackEndpoint, Server, ServerMode, PROTOCOL_VERSION};
use perfeval_fault::FaultRegistry;

fn catalog(rows: i64) -> Catalog {
    let mut catalog = Catalog::new();
    let mut t = TableBuilder::new("nums")
        .column("x", DataType::Int)
        .column("y", DataType::Float)
        .build();
    for i in 0..rows {
        t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 4.0)])
            .unwrap();
    }
    catalog.register(t).unwrap();
    catalog
}

/// A slow reader must not make the server buffer its whole result: the
/// per-connection write queue stays bounded by `queue_depth` (plus the
/// header/footer bookends), the stall is charged to the footer's
/// `serialize_ms`, and — the shared-nothing payoff — another client on the
/// *same shard* keeps completing queries while the slow one dawdles.
#[test]
fn slow_reader_backpressure_is_bounded_and_charged_to_serialize() {
    const QUEUE_DEPTH: usize = 2;
    // 20k rows ≈ 79 row batches: far more frames than the queue may hold.
    let ep = LoopbackEndpoint::with_capacity(512);
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(ServerMode::Sharded {
            shards: 1,
            queue_depth: QUEUE_DEPTH,
        })
        .serve(|| Session::new(catalog(20_000)));

    // The slow reader drives the protocol by hand so it can dawdle between
    // frames while the server's response sits in the bounded queue.
    let mut slow = FramedIo::new(
        Box::new(dial.connect().unwrap()),
        Arc::new(FaultRegistry::disabled()),
        1,
    );
    slow.send(&Frame::Hello {
        version: PROTOCOL_VERSION,
    })
    .unwrap();
    match slow.recv().unwrap() {
        Frame::HelloOk { .. } => {}
        other => panic!("expected HelloOk, got {other:?}"),
    }
    slow.send(&Frame::Query {
        trace_parent: 0,
        deadline_ms: 0,
        sql: "SELECT x, y FROM nums".into(),
    })
    .unwrap();

    // While the slow reader sleeps, a fast client on the SAME shard must
    // keep getting answers: the event loop parks the stalled response
    // instead of parking the shard.
    let mut fast = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    for i in 0..5 {
        let r = fast
            .query(&format!("SELECT COUNT(*) FROM nums WHERE x < {i}"))
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Int(i)]],
            "fast client progresses while the slow reader stalls its shardmate"
        );
    }
    fast.close().unwrap();

    // Now drain the stalled result — slowly at first, so real wall time
    // lands in the server's serialize account.
    let mut rows_seen = 0u64;
    let mut frames = 0u32;
    let footer = loop {
        match slow.recv().unwrap() {
            Frame::ResultHeader { .. } => {}
            Frame::RowBatch { rows } => {
                rows_seen += rows.len() as u64;
                frames += 1;
                if frames <= 5 {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            Frame::Done(footer) => break footer,
            other => panic!("unexpected frame {other:?}"),
        }
    };
    assert_eq!(rows_seen, 20_000);
    assert_eq!(footer.rows, 20_000);
    assert!(
        footer.serialize_ms >= 50.0,
        "the reader's stall is the server's serialize time: {} ms",
        footer.serialize_ms
    );
    slow.send(&Frame::Bye).unwrap();

    let peak = server.write_queue_peak();
    let stats = server.wait();
    assert_eq!(stats.connections, 2);
    assert!(
        peak as usize <= QUEUE_DEPTH + 2,
        "write queue bounded by depth {QUEUE_DEPTH} (+header/footer), saw peak {peak}"
    );
    assert!(peak >= 1, "the squeezed response must have queued at all");
}

/// Same seed ⇒ same connection→shard map, run after run. Placement is a
/// pure function of (seed, connection ordinal, shard count) — never of
/// timing — so a sweep's shard assignment is reproducible.
#[test]
fn shard_placement_is_deterministic_under_a_seed() {
    const CONNS: usize = 32;
    let run = |seed: u64| -> Vec<u64> {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(ServerMode::Sharded {
                shards: 4,
                queue_depth: 16,
            })
            .placement_seed(seed)
            .serve(|| Session::new(catalog(100)));
        // Sequential dials: connection ordinals are assigned in accept
        // order, so the placement vector is comparable across runs.
        for _ in 0..CONNS {
            let mut c = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
            let r = c.query("SELECT COUNT(*) FROM nums").unwrap();
            assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
            c.close().unwrap();
        }
        let placement = server.shard_conns().expect("sharded mode telemetry");
        let stats = server.wait();
        assert_eq!(stats.connections, CONNS as u64);
        placement
    };

    let a = run(42);
    let b = run(42);
    let c = run(7);
    assert_eq!(a.iter().sum::<u64>(), CONNS as u64);
    assert_eq!(a, b, "same seed, same map");
    assert_ne!(a, c, "a different seed reshuffles placement");
    assert!(
        a.iter().all(|&n| n > 0),
        "32 conns over 4 shards should touch every shard: {a:?}"
    );
}

/// Queries answered with work stealing on and off are bit-identical — idle
/// shards lend parallelism, which may change the morsel schedule but never
/// the answer.
#[test]
fn work_stealing_changes_timing_never_answers() {
    let run = |stealing: bool| -> Vec<Vec<Value>> {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(ServerMode::Sharded {
                shards: 4,
                queue_depth: 16,
            })
            .work_stealing(stealing)
            .serve(|| Session::new(catalog(10_000)));
        let mut c = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
        let r = c.query("SELECT SUM(y), MAX(x) FROM nums").unwrap();
        let rows = r.rows;
        c.close().unwrap();
        if stealing {
            assert!(
                server.steal_borrows() > 0,
                "a lone query on a 4-shard server should borrow idle cores"
            );
        } else {
            assert_eq!(server.steal_borrows(), 0);
        }
        server.wait();
        rows
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.len(), without.len());
    for (a, b) in with.iter().zip(&without) {
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (Value::Float(f), Value::Float(g)) => assert_eq!(f.to_bits(), g.to_bits()),
                _ => assert_eq!(x, y),
            }
        }
    }
}

/// Engine errors and panics stay contained per connection in sharded mode,
/// exactly as in thread-per-conn: the session survives a failed query.
#[test]
fn sharded_server_reports_db_errors_without_dying() {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(ServerMode::Sharded {
            shards: 2,
            queue_depth: 8,
        })
        .serve(|| Session::new(catalog(1_000)));
    let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    assert!(client.query("SELECT nope FROM nums").is_err());
    let r = client.query("SELECT COUNT(*) FROM nums").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1_000)]]);
    client.close().unwrap();
    let stats = server.wait();
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.disconnects, 0);
}
