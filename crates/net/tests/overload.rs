//! Overload-protection behavior: admission control, drain mode, query
//! deadlines, and — the invariant the whole design leans on — that a
//! cancelled query never poisons its session. The same connection must
//! immediately serve a follow-up query bit-identical to serial
//! execution, at shard counts {1, 8}, over both transports.

use minidb::{Catalog, DataType, Session, TableBuilder, Value};
use minidb_net::{
    Admission, Client, LoopbackEndpoint, NetError, RejectCode, Server, ServerMode, TcpEndpoint,
    TcpTransport,
};
use perfeval_fault::{FaultAction, FaultRegistry, Trigger};
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    let mut t = TableBuilder::new("nums")
        .column("x", DataType::Int)
        .column("y", DataType::Float)
        .build();
    for i in 0..2_000 {
        t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 7.0)])
            .unwrap();
    }
    catalog.register(t).unwrap();
    catalog
}

/// Floats compare by bit pattern: "close enough" is exactly the fudge
/// the bit-identity invariant exists to forbid.
fn assert_rows_bit_identical(got: &[Vec<Value>], want: &[Vec<Value>]) {
    assert_eq!(got.len(), want.len(), "row count");
    for (g_row, w_row) in got.iter().zip(want) {
        assert_eq!(g_row.len(), w_row.len(), "column count");
        for (g, w) in g_row.iter().zip(w_row) {
            match (g, w) {
                (Value::Float(a), Value::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "float bits: {a} vs {b}")
                }
                _ => assert_eq!(g, w),
            }
        }
    }
}

const Q_BEFORE: &str = "SELECT COUNT(*) FROM nums WHERE x < 900";
const Q_CANCELLED: &str = "SELECT SUM(y) FROM nums";
const Q_AFTER: &str = "SELECT SUM(y) FROM nums WHERE x < 1500";

/// The core of satellite #3. The server's per-connection session arms the
/// `minidb.cancel` failpoint on statement ordinal 1, so the second query
/// on the connection is force-cancelled mid-protocol (a scheduled
/// cancellation, not a raced one). The follow-up on the *same* connection
/// must match a clean serial [`Session`] bit for bit.
fn check_cancelled_query_never_poisons_session(shards: usize, tcp: bool) {
    // Serial ground truth from an in-process session, no server involved.
    let mut serial = Session::new(catalog());
    let want_before = serial.query(Q_BEFORE).run().unwrap().rows;
    let want_after = serial.query(Q_AFTER).run().unwrap().rows;

    let session_factory = || {
        let faults = Arc::new(FaultRegistry::new(7).armed_always(
            "minidb.cancel",
            Trigger::Key(1),
            FaultAction::FailIo,
        ));
        Session::new(catalog()).with_faults(faults)
    };
    let mode = ServerMode::Sharded {
        shards,
        queue_depth: 64,
    };

    let (server, mut client) = if tcp {
        let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = ep.local_addr().unwrap();
        let server = Server::builder()
            .transport(ep)
            .mode(mode)
            .serve(session_factory);
        let client = Client::connect(Box::new(TcpTransport::connect(addr).unwrap())).unwrap();
        (server, client)
    } else {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(mode)
            .serve(session_factory);
        let client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
        (server, client)
    };

    // Statement 0 runs clean.
    let r = client.query(Q_BEFORE).unwrap();
    assert_rows_bit_identical(&r.rows, &want_before);

    // Statement 1 is force-cancelled; the client sees a typed error, not
    // a dead socket.
    match client.query(Q_CANCELLED) {
        Err(NetError::Db(minidb::DbError::Cancelled(_))) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(client.is_alive(), "cancellation must not kill the client");

    // Statement 2, same connection: bit-identical to serial execution.
    let r = client.query(Q_AFTER).unwrap();
    assert_rows_bit_identical(&r.rows, &want_after);

    client.close().unwrap();
    let stats = server.wait();
    assert_eq!(stats.connections, 1, "one connection throughout");
    assert_eq!(stats.disconnects, 0, "session survived the cancellation");
    assert_eq!(stats.cancelled_queries, 1);
    assert_eq!(stats.queries, 3);
}

#[test]
fn cancelled_query_never_poisons_session_loopback_1_shard() {
    check_cancelled_query_never_poisons_session(1, false);
}

#[test]
fn cancelled_query_never_poisons_session_loopback_8_shards() {
    check_cancelled_query_never_poisons_session(8, false);
}

#[test]
fn cancelled_query_never_poisons_session_tcp_1_shard() {
    check_cancelled_query_never_poisons_session(1, true);
}

#[test]
fn cancelled_query_never_poisons_session_tcp_8_shards() {
    check_cancelled_query_never_poisons_session(8, true);
}

/// Deadlines travel in the `Query` frame header and come back as a typed
/// `Rejected { DeadlineExceeded }`; clearing the deadline restores normal
/// service on the same connection. An injected 50 ms engine delay makes a
/// 5 ms deadline expire without depending on machine speed.
fn check_deadline_rejects_then_recovers(mode: ServerMode) {
    let session_factory = || {
        let faults = Arc::new(FaultRegistry::new(3).armed_always(
            "minidb.execute",
            Trigger::Key(0),
            FaultAction::DelayMs(50.0),
        ));
        Session::new(catalog()).with_faults(faults)
    };
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(mode)
        .serve(session_factory);

    let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    client.set_deadline_ms(5);
    match client.query(Q_CANCELLED) {
        Err(NetError::Rejected {
            code: RejectCode::DeadlineExceeded,
            ..
        }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(client.is_alive(), "a shed query is not a dead connection");

    // Statement 1 has no injected delay; with the deadline cleared the
    // same connection serves it normally.
    client.set_deadline_ms(0);
    let mut serial = Session::new(catalog());
    let want = serial.query(Q_AFTER).run().unwrap().rows;
    let r = client.query(Q_AFTER).unwrap();
    assert_rows_bit_identical(&r.rows, &want);

    client.close().unwrap();
    let stats = server.wait();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.cancelled_queries, 1);
    assert_eq!(stats.disconnects, 0);
}

#[test]
fn deadline_rejects_then_recovers_sharded() {
    check_deadline_rejects_then_recovers(ServerMode::Sharded {
        shards: 2,
        queue_depth: 64,
    });
}

#[test]
fn deadline_rejects_then_recovers_thread_per_conn() {
    check_deadline_rejects_then_recovers(ServerMode::ThreadPerConn { workers: 2 });
}

/// The `net.admit` failpoint forces the admission verdict itself — every
/// decision on the connection sheds with `Overloaded` — and the
/// configured `retry_after_ms` hint rides the frame back.
#[test]
fn net_admit_fault_forces_typed_rejection() {
    let faults = Arc::new(FaultRegistry::new(1).armed_always(
        "net.admit",
        Trigger::Always,
        FaultAction::FailIo,
    ));
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(ServerMode::Sharded {
            shards: 1,
            queue_depth: 16,
        })
        .admission(Admission::default().retry_after_ms(7))
        .with_faults(faults)
        .serve(|| Session::new(catalog()));

    let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    for _ in 0..2 {
        match client.query(Q_BEFORE) {
            Err(NetError::Rejected {
                code: RejectCode::Overloaded,
                retry_after_ms,
            }) => assert_eq!(retry_after_ms, 7, "retry-after hint from Admission"),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(client.is_alive());
    }
    client.close().unwrap();
    let stats = server.wait();
    assert_eq!(stats.rejected_overload, 2);
    assert_eq!(stats.disconnects, 0);
}

/// Drain mode: existing connections stay up but new queries get the
/// typed `ShuttingDown` signal — in both engines.
fn check_drain_sheds_new_queries(mode: ServerMode) {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(mode)
        .serve(|| Session::new(catalog()));

    let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    client.query(Q_BEFORE).unwrap();

    server.drain();
    match client.query(Q_BEFORE) {
        Err(NetError::Rejected {
            code: RejectCode::ShuttingDown,
            ..
        }) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    assert!(client.is_alive(), "drain sheds queries, not connections");

    client.close().unwrap();
    let stats = server.wait();
    assert_eq!(stats.rejected_shutdown, 1);
    assert_eq!(stats.disconnects, 0);
}

#[test]
fn drain_sheds_new_queries_sharded() {
    check_drain_sheds_new_queries(ServerMode::Sharded {
        shards: 2,
        queue_depth: 64,
    });
}

#[test]
fn drain_sheds_new_queries_thread_per_conn() {
    check_drain_sheds_new_queries(ServerMode::ThreadPerConn { workers: 2 });
}

/// `max_conns` bounds concurrent sessions at the handshake: the excess
/// `Hello` is answered `Rejected { Overloaded }` and the socket closed,
/// while the admitted connection keeps working.
fn check_max_conns_rejects_excess_hello(mode: ServerMode) {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(mode)
        .admission(Admission::default().max_conns(1))
        .serve(|| Session::new(catalog()));

    let mut first = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    first.query(Q_BEFORE).unwrap();

    match Client::connect(Box::new(dial.connect().unwrap())) {
        Err(NetError::Rejected {
            code: RejectCode::Overloaded,
            ..
        }) => {}
        Err(other) => panic!("expected Overloaded at Hello, got {other:?}"),
        Ok(_) => panic!("expected Overloaded at Hello, got a connection"),
    }

    // The admitted connection is unaffected by the shed handshake.
    first.query(Q_BEFORE).unwrap();
    first.close().unwrap();
    let stats = server.wait();
    assert_eq!(stats.rejected_overload, 1);
}

#[test]
fn max_conns_rejects_excess_hello_sharded() {
    check_max_conns_rejects_excess_hello(ServerMode::Sharded {
        shards: 1,
        queue_depth: 16,
    });
}

#[test]
fn max_conns_rejects_excess_hello_thread_per_conn() {
    check_max_conns_rejects_excess_hello(ServerMode::ThreadPerConn { workers: 4 });
}

/// A saturating burst against a 1-query budget: one long query holds the
/// only in-flight slot, a second connection's query during that window is
/// shed fast instead of queued behind it, and succeeds on retry once the
/// slot frees — the thread-per-conn admission gauge end to end.
#[test]
fn max_inflight_sheds_concurrent_query_thread_per_conn() {
    let session_factory = || {
        let faults = Arc::new(FaultRegistry::new(5).armed_always(
            "minidb.execute",
            Trigger::Key(0),
            FaultAction::DelayMs(200.0),
        ));
        Session::new(catalog()).with_faults(faults)
    };
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .mode(ServerMode::ThreadPerConn { workers: 2 })
        .admission(Admission::default().max_inflight(1))
        .serve(session_factory);

    let mut slow = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
    let mut fast = Client::connect(Box::new(dial.connect().unwrap())).unwrap();

    let slow_thread = std::thread::spawn(move || {
        // Statement 0: delayed 200 ms by the failpoint, holds the slot.
        slow.query(Q_BEFORE).unwrap();
        slow.close().unwrap();
    });
    // Well inside the 200 ms window: the budget is taken.
    std::thread::sleep(Duration::from_millis(50));
    match fast.query(Q_BEFORE) {
        Err(NetError::Rejected {
            code: RejectCode::Overloaded,
            ..
        }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    slow_thread.join().unwrap();

    // The slot is free again; the shed client retries and wins. (The
    // reject spent no engine work, so this is still the session's
    // statement 0 and eats the 200 ms delay — slow but correct.)
    let mut serial = Session::new(catalog());
    let want = serial.query(Q_AFTER).run().unwrap().rows;
    let r = fast.query(Q_AFTER).unwrap();
    assert_rows_bit_identical(&r.rows, &want);

    fast.close().unwrap();
    let stats = server.wait();
    assert!(stats.rejected_overload >= 1);
    assert_eq!(stats.disconnects, 0);
}
