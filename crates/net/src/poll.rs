//! A small readiness abstraction: epoll for kernel sockets, a user-space
//! shim for in-process transports — behind one `wait()`.
//!
//! The sharded server multiplexes many connections onto one thread per
//! shard, so it needs to know *which* connection is readable or writable
//! without blocking on any single one. Two readiness sources feed the same
//! [`Poll`]:
//!
//! * **File descriptors** (TCP): a level-triggered `epoll` instance,
//!   created lazily on the first fd registration. Registration, interest
//!   changes, and the wait all go through raw `epoll_*` syscalls declared
//!   here — the workspace's no-external-crates policy means no `libc`/`mio`,
//!   and the C symbols resolve from the libc `std` already links.
//! * **Shims** (loopback): a [`ShimHandle`] the transport's peer pokes when
//!   bytes arrive or buffer space frees. Posts land in a user-space ready
//!   map guarded by the poll mutex. While no fd source is registered,
//!   `wait()` blocks on a condvar — a pure-loopback shard does **zero
//!   syscalls** in its readiness path, preserving the loopback transport's
//!   design contract.
//!
//! When both kinds are live (never the case for a single server today, but
//! allowed), shim posts write an `eventfd` to kick `epoll_wait`, so no wake
//! is ever lost across the mode boundary.
//!
//! `wait()` may return spuriously empty; callers are level-structured (they
//! re-examine their own state every iteration), so a spurious wake costs a
//! loop, never correctness.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Raw file descriptor alias (kept local so non-Linux builds compile
/// without `std::os::unix`).
pub type RawFd = i32;

/// What a caller wants to hear about an fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the source has bytes to read (or EOF/error).
    pub read: bool,
    /// Report when the source can accept bytes.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// Readiness reported for one token. `readable` also covers EOF, hangup,
/// and error conditions — the read path discovers which by reading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ready {
    /// Source has data, EOF, or an error to report.
    pub readable: bool,
    /// Source can accept more bytes.
    pub writable: bool,
}

impl Ready {
    fn merge(&mut self, other: Ready) {
        self.readable |= other.readable;
        self.writable |= other.writable;
    }
    fn any(&self) -> bool {
        self.readable || self.writable
    }
}

struct UserState {
    ready: BTreeMap<usize, Ready>,
    woken: bool,
}

struct PollShared {
    state: Mutex<UserState>,
    cv: Condvar,
    epoll: OnceLock<Epoll>,
    epoll_active: AtomicBool,
}

impl PollShared {
    /// Posts user-space readiness for `token` and wakes the waiter.
    fn post(&self, token: usize, ready: Ready) {
        {
            let mut st = self.state.lock().unwrap();
            st.ready.entry(token).or_default().merge(ready);
        }
        self.kick();
    }

    fn kick(&self) {
        if self.epoll_active.load(Ordering::Acquire) {
            if let Some(ep) = self.epoll.get() {
                ep.wake();
            }
        }
        self.cv.notify_all();
    }
}

/// A readiness poster for one user-space source. The transport's peer side
/// calls [`ShimHandle::readable`] when it produced bytes (or closed its
/// write end) and [`ShimHandle::writable`] when it freed buffer space (or
/// closed its read end). Posts are cheap (one mutex, one notify) and
/// syscall-free while the owning [`Poll`] has no fd sources.
#[derive(Clone)]
pub struct ShimHandle {
    shared: Arc<PollShared>,
    token: usize,
}

impl ShimHandle {
    /// Marks the source readable.
    pub fn readable(&self) {
        self.shared.post(
            self.token,
            Ready {
                readable: true,
                writable: false,
            },
        );
    }

    /// Marks the source writable.
    pub fn writable(&self) {
        self.shared.post(
            self.token,
            Ready {
                readable: false,
                writable: true,
            },
        );
    }
}

/// One shard's readiness multiplexer. See the module docs for the two
/// source kinds.
pub struct Poll {
    shared: Arc<PollShared>,
}

impl Default for Poll {
    fn default() -> Self {
        Self::new()
    }
}

impl Poll {
    /// An empty poll with no sources.
    pub fn new() -> Poll {
        Poll {
            shared: Arc::new(PollShared {
                state: Mutex::new(UserState {
                    ready: BTreeMap::new(),
                    woken: false,
                }),
                cv: Condvar::new(),
                epoll: OnceLock::new(),
                epoll_active: AtomicBool::new(false),
            }),
        }
    }

    /// A poster for the user-space source identified by `token`.
    pub fn shim(&self, token: usize) -> ShimHandle {
        ShimHandle {
            shared: Arc::clone(&self.shared),
            token,
        }
    }

    /// Wakes a blocked [`Poll::wait`] without posting any readiness (used
    /// for connection injection and shutdown).
    pub fn wake(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.woken = true;
        }
        self.shared.kick();
    }

    fn epoll(&self) -> io::Result<&Epoll> {
        if let Some(ep) = self.shared.epoll.get() {
            return Ok(ep);
        }
        let created = Epoll::new()?;
        // Two racing creators: the loser's instance is dropped (fds
        // closed); only the stored one is ever used.
        let _ = self.shared.epoll.set(created);
        self.shared.epoll_active.store(true, Ordering::Release);
        Ok(self.shared.epoll.get().expect("just set"))
    }

    /// Registers an fd source. The fd must already be in nonblocking mode.
    ///
    /// # Errors
    /// `Unsupported` on non-Linux targets; otherwise `epoll_ctl` failures.
    pub fn register_fd(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.epoll()?.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of a registered fd.
    ///
    /// # Errors
    /// `epoll_ctl` failures (e.g. the fd was never registered).
    pub fn modify_fd(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.epoll()?.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes an fd source. Harmless if the fd was closed already.
    pub fn deregister_fd(&self, fd: RawFd) {
        if let Some(ep) = self.shared.epoll.get() {
            let _ = ep.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::READ);
        }
    }

    /// Blocks until at least one source is ready, [`Poll::wake`] is called,
    /// or `timeout` elapses. Returns the ready tokens (may be empty — a
    /// spurious or timed-out wake) and whether a wake was consumed.
    pub fn wait(&self, timeout: Option<Duration>) -> (Vec<(usize, Ready)>, bool) {
        let mut events: Vec<(usize, Ready)> = Vec::new();
        // Drain user-space readiness first.
        let mut woken = {
            let mut st = self.shared.state.lock().unwrap();
            if !self.shared.epoll_active.load(Ordering::Acquire) {
                // Pure user-space mode: condvar wait, zero syscalls.
                if st.ready.is_empty() && !st.woken {
                    st = match timeout {
                        Some(t) => self.shared.cv.wait_timeout(st, t).unwrap().0,
                        None => self.shared.cv.wait(st).unwrap(),
                    };
                }
                let woken = std::mem::take(&mut st.woken);
                events.extend(std::mem::take(&mut st.ready));
                return (events, woken);
            }
            let woken = std::mem::take(&mut st.woken);
            events.extend(std::mem::take(&mut st.ready));
            woken
        };
        let ep = self.shared.epoll.get().expect("epoll_active implies epoll");
        // With pending user events the fd poll is a non-blocking sweep;
        // otherwise it blocks for the caller's timeout.
        let block = if events.is_empty() && !woken {
            timeout
        } else {
            Some(Duration::ZERO)
        };
        ep.wait(block, &mut events);
        // A wakefd kick may have been posted for user-space state that
        // arrived after the first drain.
        {
            let mut st = self.shared.state.lock().unwrap();
            woken |= std::mem::take(&mut st.woken);
            let late: Vec<(usize, Ready)> = std::mem::take(&mut st.ready).into_iter().collect();
            for (token, ready) in late {
                match events.iter_mut().find(|(t, _)| *t == token) {
                    Some((_, r)) => r.merge(ready),
                    None => events.push((token, ready)),
                }
            }
        }
        (events, woken)
    }
}

// ---------------------------------------------------------------------------
// Linux epoll backend (raw syscalls; std links libc, so the C symbols are
// always available — no external crate needed).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    // Constants referenced by shared code paths; the Epoll type below never
    // constructs on non-Linux targets.
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
}

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
    wakefd: RawFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    /// The wake eventfd's token. Never collides with connection tokens,
    /// which are small sequential integers.
    const WAKE_TOKEN: u64 = u64::MAX;

    fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscalls creating new fds; no memory is shared.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakefd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if wakefd < 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(err);
        }
        let ep = Epoll { epfd, wakefd };
        ep.ctl(
            sys::EPOLL_CTL_ADD,
            wakefd,
            Self::WAKE_TOKEN as usize,
            Interest::READ,
        )?;
        Ok(ep)
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interest.read {
            events |= sys::EPOLLIN;
        }
        if interest.write {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token as u64,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a live stack value to an eventfd.
        unsafe { sys::write(self.wakefd, &one as *const u64 as *const u8, 8) };
    }

    fn wait(&self, timeout: Option<Duration>, out: &mut Vec<(usize, Ready)>) {
        const MAX_EVENTS: usize = 64;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        // SAFETY: `buf` is a valid writable array of MAX_EVENTS entries.
        let n =
            unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n <= 0 {
            return; // timeout, EINTR, or error: callers re-loop
        }
        for ev in buf.iter().take(n as usize) {
            let (bits, data) = (ev.events, ev.data);
            if data == Self::WAKE_TOKEN {
                let mut drain = [0u8; 8];
                // SAFETY: reading the nonblocking eventfd counter.
                unsafe { sys::read(self.wakefd, drain.as_mut_ptr(), 8) };
                continue;
            }
            let ready = Ready {
                readable: bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                    != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
            };
            if ready.any() {
                out.push((data as usize, ready));
            }
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing fds this struct owns exclusively.
        unsafe {
            sys::close(self.wakefd);
            sys::close(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
struct Epoll;

#[cfg(not(target_os = "linux"))]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "fd readiness requires epoll (Linux); sharded TCP falls back to \
             per-connection threads on this platform",
        ))
    }
    fn ctl(&self, _op: i32, _fd: RawFd, _token: usize, _interest: Interest) -> io::Result<()> {
        unreachable!("Epoll never constructs off Linux")
    }
    fn wake(&self) {}
    fn wait(&self, _timeout: Option<Duration>, _out: &mut Vec<(usize, Ready)>) {}
}

/// Pins the calling thread to `core` (best effort — containers and
/// cpuset-restricted runners may refuse; the server runs unpinned then).
/// Returns whether the pin took.
pub fn pin_current_thread(core: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct CpuSet {
            bits: [u64; 16], // 1024 CPUs, the glibc default cpu_set_t
        }
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
        }
        let mut set = CpuSet { bits: [0; 16] };
        let idx = core % 1024;
        set.bits[idx / 64] |= 1u64 << (idx % 64);
        // SAFETY: pid 0 = calling thread; the mask is a live stack value of
        // the size we pass.
        unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
        false
    }
}

/// The shard a connection ordinal maps to: a pure function of
/// `(seed, conn, shards)`, so the placement is a declared design factor —
/// the same seed always yields the same conn→shard map, independent of
/// timing, thread scheduling, or arrival interleaving.
pub fn shard_for(seed: u64, conn: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // The workspace's shared SplitMix64 finalizer over seed ⊕ conn:
    // avalanches low-entropy ordinals so shard load stays balanced for any
    // seed. Same mixer as minidb's join/group hashing (stats::mix64).
    let z = perfeval_stats::mix64(seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_posts_wake_a_condvar_waiter() {
        let poll = Arc::new(Poll::new());
        let shim = poll.shim(7);
        let p2 = Arc::clone(&poll);
        let waiter = std::thread::spawn(move || p2.wait(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(20));
        shim.readable();
        let (events, _) = waiter.join().unwrap();
        assert_eq!(
            events,
            vec![(
                7,
                Ready {
                    readable: true,
                    writable: false
                }
            )]
        );
    }

    #[test]
    fn posts_coalesce_per_token() {
        let poll = Poll::new();
        let shim = poll.shim(3);
        shim.readable();
        shim.writable();
        shim.readable();
        let (events, woken) = poll.wait(Some(Duration::ZERO));
        assert_eq!(
            events,
            vec![(
                3,
                Ready {
                    readable: true,
                    writable: true
                }
            )]
        );
        assert!(!woken);
    }

    #[test]
    fn wake_returns_without_events() {
        let poll = Poll::new();
        poll.wake();
        let (events, woken) = poll.wait(Some(Duration::from_secs(5)));
        assert!(events.is_empty());
        assert!(woken, "wake() is observable");
    }

    #[test]
    fn timeout_returns_empty() {
        let poll = Poll::new();
        let (events, woken) = poll.wait(Some(Duration::from_millis(10)));
        assert!(events.is_empty());
        assert!(!woken);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reports_tcp_readability() {
        use std::io::Write;
        use std::os::fd::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new();
        poll.register_fd(server.as_raw_fd(), 42, Interest::READ)
            .unwrap();
        // Nothing yet readable.
        let (events, _) = poll.wait(Some(Duration::from_millis(10)));
        assert!(events.is_empty(), "no data, no event: {events:?}");

        client.write_all(b"x").unwrap();
        let (events, _) = poll.wait(Some(Duration::from_secs(5)));
        assert!(
            events.iter().any(|(t, r)| *t == 42 && r.readable),
            "data arrival reported: {events:?}"
        );
        poll.deregister_fd(server.as_raw_fd());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn shim_posts_still_arrive_in_epoll_mode() {
        use std::os::fd::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Arc::new(Poll::new());
        poll.register_fd(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let shim = poll.shim(9);
        let p2 = Arc::clone(&poll);
        let waiter = std::thread::spawn(move || p2.wait(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(20));
        shim.writable(); // must kick epoll_wait via the eventfd
        let (events, _) = waiter.join().unwrap();
        assert!(
            events.iter().any(|(t, r)| *t == 9 && r.writable),
            "user-space post crossed the epoll boundary: {events:?}"
        );
    }

    #[test]
    fn shard_placement_is_a_pure_function() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            for shards in [1usize, 2, 8] {
                for conn in 0..64u64 {
                    assert_eq!(
                        shard_for(seed, conn, shards),
                        shard_for(seed, conn, shards),
                        "identical inputs, identical shard"
                    );
                    assert!(shard_for(seed, conn, shards) < shards);
                }
            }
        }
        // Different seeds genuinely reshuffle (not a constant function).
        let a: Vec<_> = (0..32).map(|c| shard_for(1, c, 8)).collect();
        let b: Vec<_> = (0..32).map(|c| shard_for(2, c, 8)).collect();
        assert_ne!(a, b, "placement seed is a real factor");
        // Placement spreads connections (no empty shard over 64 conns / 4 shards).
        let mut counts = [0usize; 4];
        for c in 0..64u64 {
            counts[shard_for(0, c, 4)] += 1;
        }
        assert!(counts.iter().all(|&n| n > 0), "balanced-ish: {counts:?}");
    }
}
