//! The wire protocol: length-prefixed binary frames.
//!
//! Every frame is `[u32 LE payload length][u8 frame type][payload]`. The
//! length covers the type byte plus payload, so a reader can skip unknown
//! frames. Integers are little-endian; floats travel as `f64::to_bits()`
//! so a value survives the wire **bit-identical** — the acceptance bar for
//! the whole subsystem (see `tests/roundtrip.rs`).
//!
//! Conversation shape:
//!
//! ```text
//! client                      server
//!   Hello{version}      ──▶
//!                       ◀──  HelloOk{version}
//!   Query{span, deadline, sql} ──▶
//!                       ◀──  ResultHeader{columns}
//!                       ◀──  RowBatch{rows}           (0..n, streamed)
//!                       ◀──  Done{footer}             (server-side timings)
//!        — or —
//!                       ◀──  Error{code, message}
//!        — or —
//!                       ◀──  Rejected{code, retry_after_ms}
//!   Bye                 ──▶
//! ```
//!
//! `Query` carries the client's trace span id so the server can parent its
//! spans under the client's — perfeval-trace then stitches both sides into
//! one tree (`DESIGN.md` § net) — plus an optional deadline the server
//! enforces by cooperative cancellation. [`Frame::Rejected`] is the
//! overload-protection answer: the server *refused or abandoned* the
//! query (admission control, deadline, shutdown) without damaging the
//! connection, and the client should back off and may retry. Its code
//! byte decodes unknown values to [`RejectCode::Unknown`] instead of
//! erroring, so an old client survives a newer server's reject reasons.

use std::io::{self, Read, Write};
use std::sync::Arc;

use minidb::{DbError, Value};
use perfeval_fault::FaultRegistry;

use crate::transport::Transport;

/// Protocol version spoken by this crate. Version 2 added the `Query`
/// deadline field and the `Rejected` frame.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a single frame's byte length (type byte + payload).
/// Guards the reader against a corrupt length prefix allocating gigabytes.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Rows per streamed [`Frame::RowBatch`]. Small enough that the bounded
/// transport buffer applies backpressure within a result set, large enough
/// to amortize framing.
pub const ROWS_PER_BATCH: usize = 256;

/// Server-side timing footer carried by [`Frame::Done`]: the paper's
/// decomposition, measured where each phase actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Footer {
    /// Parse wall time, ms.
    pub parse_ms: f64,
    /// Optimize wall time, ms.
    pub optimize_ms: f64,
    /// Execute wall time, ms.
    pub execute_ms: f64,
    /// Execute per-thread CPU ("user") time, ms.
    pub execute_cpu_ms: f64,
    /// Time the server spent encoding + writing result frames, ms.
    pub serialize_ms: f64,
    /// Total rows sent (cross-check against received batches).
    pub rows: u64,
}

impl Footer {
    /// Server busy wall time: parse + optimize + execute + serialize.
    /// The client subtracts this from its own receive wall time to get the
    /// wire residual.
    pub fn busy_ms(&self) -> f64 {
        self.parse_ms + self.optimize_ms + self.execute_ms + self.serialize_ms
    }
}

/// A protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client greeting.
    Hello {
        /// Protocol version the client speaks.
        version: u32,
    },
    /// Server accepts the greeting.
    HelloOk {
        /// Protocol version the server speaks.
        version: u32,
    },
    /// A query request.
    Query {
        /// The client-side trace span id (0 = untraced); the server parents
        /// its `net.serve` span under it.
        trace_parent: u64,
        /// Per-query deadline in milliseconds, measured by the server from
        /// the moment it dequeues the frame; `0` = no deadline. Enforced by
        /// cooperative cancellation — an expired query is abandoned at the
        /// next morsel boundary and answered with
        /// [`Frame::Rejected`]`{ code: DeadlineExceeded }`.
        deadline_ms: u32,
        /// SQL text.
        sql: String,
    },
    /// First response frame of a successful query: the result schema.
    ResultHeader {
        /// Output column names.
        columns: Vec<String>,
    },
    /// A streamed batch of result rows.
    RowBatch {
        /// The rows.
        rows: Vec<Vec<Value>>,
    },
    /// Successful end of a result stream, with server-side timings.
    Done(Footer),
    /// The query failed.
    Error(DbError),
    /// The server refused or abandoned the query without executing it to
    /// completion — overload protection, not failure. The connection (and
    /// its session) remain healthy; the client should wait at least
    /// `retry_after_ms` before retrying.
    Rejected {
        /// Why the query was shed.
        code: RejectCode,
        /// Server's hint: wait at least this long before retrying, ms.
        retry_after_ms: u32,
    },
    /// Client is closing the connection.
    Bye,
}

/// Why a [`Frame::Rejected`] was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Admission control: the in-flight budget or accept backlog is full.
    Overloaded,
    /// The query's deadline passed — in queue, or mid-execution (the
    /// cooperative cancellation discarded partial work).
    DeadlineExceeded,
    /// The server is draining and takes no new work.
    ShuttingDown,
    /// A code byte this build does not know — forward compatibility with
    /// newer servers; treat as retryable.
    Unknown(u8),
}

impl RejectCode {
    /// The wire byte.
    fn to_byte(self) -> u8 {
        match self {
            RejectCode::Overloaded => RC_OVERLOADED,
            RejectCode::DeadlineExceeded => RC_DEADLINE_EXCEEDED,
            RejectCode::ShuttingDown => RC_SHUTTING_DOWN,
            RejectCode::Unknown(b) => b,
        }
    }

    /// Decodes a wire byte; never fails — unknown bytes become
    /// [`RejectCode::Unknown`] so old clients survive new reject reasons.
    fn from_byte(b: u8) -> Self {
        match b {
            RC_OVERLOADED => RejectCode::Overloaded,
            RC_DEADLINE_EXCEEDED => RejectCode::DeadlineExceeded,
            RC_SHUTTING_DOWN => RejectCode::ShuttingDown,
            other => RejectCode::Unknown(other),
        }
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectCode::Overloaded => f.write_str("overloaded"),
            RejectCode::DeadlineExceeded => f.write_str("deadline exceeded"),
            RejectCode::ShuttingDown => f.write_str("shutting down"),
            RejectCode::Unknown(b) => write!(f, "unknown reject code {b}"),
        }
    }
}

const FT_HELLO: u8 = 1;
const FT_HELLO_OK: u8 = 2;
const FT_QUERY: u8 = 3;
const FT_RESULT_HEADER: u8 = 4;
const FT_ROW_BATCH: u8 = 5;
const FT_DONE: u8 = 6;
const FT_ERROR: u8 = 7;
const FT_BYE: u8 = 8;
const FT_REJECTED: u8 = 9;

const RC_OVERLOADED: u8 = 1;
const RC_DEADLINE_EXCEEDED: u8 = 2;
const RC_SHUTTING_DOWN: u8 = 3;

const VT_INT: u8 = 1;
const VT_FLOAT: u8 = 2;
const VT_STR: u8 = 3;
const VT_BOOL_FALSE: u8 = 4;
const VT_BOOL_TRUE: u8 = 5;
const VT_NULL: u8 = 6;

const ET_PARSE: u8 = 1;
const ET_UNKNOWN_TABLE: u8 = 2;
const ET_UNKNOWN_COLUMN: u8 = 3;
const ET_DUPLICATE_TABLE: u8 = 4;
const ET_TYPE_MISMATCH: u8 = 5;
const ET_SEMANTIC: u8 = 6;
const ET_ARITY: u8 = 7;
const ET_IO: u8 = 8;
const ET_CANCELLED: u8 = 9;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    // Bit pattern, not a decimal rendering: NaN payloads, -0.0, and the
    // last ulp all survive the wire.
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(corrupt("frame truncated")),
        }
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8 in frame"))
    }

    fn finish(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes in frame"))
        }
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("wire protocol: {msg}"))
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(VT_INT);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(VT_FLOAT);
            put_f64(buf, *f);
        }
        Value::Str(s) => {
            buf.push(VT_STR);
            put_str(buf, s);
        }
        Value::Bool(false) => buf.push(VT_BOOL_FALSE),
        Value::Bool(true) => buf.push(VT_BOOL_TRUE),
        Value::Null => buf.push(VT_NULL),
    }
}

fn decode_value(c: &mut Cursor<'_>) -> io::Result<Value> {
    Ok(match c.u8()? {
        VT_INT => Value::Int(c.u64()? as i64),
        VT_FLOAT => Value::Float(c.f64()?),
        VT_STR => Value::Str(c.str()?),
        VT_BOOL_FALSE => Value::Bool(false),
        VT_BOOL_TRUE => Value::Bool(true),
        VT_NULL => Value::Null,
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

fn encode_error(buf: &mut Vec<u8>, e: &DbError) {
    match e {
        DbError::Parse(m) => {
            buf.push(ET_PARSE);
            put_str(buf, m);
        }
        DbError::UnknownTable(m) => {
            buf.push(ET_UNKNOWN_TABLE);
            put_str(buf, m);
        }
        DbError::UnknownColumn(m) => {
            buf.push(ET_UNKNOWN_COLUMN);
            put_str(buf, m);
        }
        DbError::DuplicateTable(m) => {
            buf.push(ET_DUPLICATE_TABLE);
            put_str(buf, m);
        }
        DbError::TypeMismatch(m) => {
            buf.push(ET_TYPE_MISMATCH);
            put_str(buf, m);
        }
        DbError::Semantic(m) => {
            buf.push(ET_SEMANTIC);
            put_str(buf, m);
        }
        DbError::Arity { expected, got } => {
            buf.push(ET_ARITY);
            put_u64(buf, *expected as u64);
            put_u64(buf, *got as u64);
        }
        DbError::Io(m) => {
            buf.push(ET_IO);
            put_str(buf, m);
        }
        DbError::Cancelled(m) => {
            buf.push(ET_CANCELLED);
            put_str(buf, m);
        }
    }
}

fn decode_error(c: &mut Cursor<'_>) -> io::Result<DbError> {
    Ok(match c.u8()? {
        ET_PARSE => DbError::Parse(c.str()?),
        ET_UNKNOWN_TABLE => DbError::UnknownTable(c.str()?),
        ET_UNKNOWN_COLUMN => DbError::UnknownColumn(c.str()?),
        ET_DUPLICATE_TABLE => DbError::DuplicateTable(c.str()?),
        ET_TYPE_MISMATCH => DbError::TypeMismatch(c.str()?),
        ET_SEMANTIC => DbError::Semantic(c.str()?),
        ET_ARITY => DbError::Arity {
            expected: c.u64()? as usize,
            got: c.u64()? as usize,
        },
        ET_IO => DbError::Io(c.str()?),
        ET_CANCELLED => DbError::Cancelled(c.str()?),
        t => return Err(corrupt(&format!("unknown error tag {t}"))),
    })
}

impl Frame {
    /// Encodes the frame, including its length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Frame::Hello { version } => {
                body.push(FT_HELLO);
                put_u32(&mut body, *version);
            }
            Frame::HelloOk { version } => {
                body.push(FT_HELLO_OK);
                put_u32(&mut body, *version);
            }
            Frame::Query {
                trace_parent,
                deadline_ms,
                sql,
            } => {
                body.push(FT_QUERY);
                put_u64(&mut body, *trace_parent);
                put_u32(&mut body, *deadline_ms);
                put_str(&mut body, sql);
            }
            Frame::ResultHeader { columns } => {
                body.push(FT_RESULT_HEADER);
                put_u32(&mut body, columns.len() as u32);
                for c in columns {
                    put_str(&mut body, c);
                }
            }
            Frame::RowBatch { rows } => {
                body.push(FT_ROW_BATCH);
                put_u32(&mut body, rows.len() as u32);
                for row in rows {
                    put_u32(&mut body, row.len() as u32);
                    for v in row {
                        encode_value(&mut body, v);
                    }
                }
            }
            Frame::Done(f) => {
                body.push(FT_DONE);
                put_f64(&mut body, f.parse_ms);
                put_f64(&mut body, f.optimize_ms);
                put_f64(&mut body, f.execute_ms);
                put_f64(&mut body, f.execute_cpu_ms);
                put_f64(&mut body, f.serialize_ms);
                put_u64(&mut body, f.rows);
            }
            Frame::Error(e) => {
                body.push(FT_ERROR);
                encode_error(&mut body, e);
            }
            Frame::Rejected {
                code,
                retry_after_ms,
            } => {
                body.push(FT_REJECTED);
                body.push(code.to_byte());
                put_u32(&mut body, *retry_after_ms);
            }
            Frame::Bye => body.push(FT_BYE),
        }
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame body (type byte + payload, length prefix already
    /// stripped).
    ///
    /// # Errors
    /// `InvalidData` on unknown tags, truncation, trailing bytes, or bad
    /// UTF-8.
    pub fn decode(body: &[u8]) -> io::Result<Frame> {
        let mut c = Cursor::new(body);
        let frame = match c.u8()? {
            FT_HELLO => Frame::Hello { version: c.u32()? },
            FT_HELLO_OK => Frame::HelloOk { version: c.u32()? },
            FT_QUERY => Frame::Query {
                trace_parent: c.u64()?,
                deadline_ms: c.u32()?,
                sql: c.str()?,
            },
            FT_RESULT_HEADER => {
                let n = c.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    columns.push(c.str()?);
                }
                Frame::ResultHeader { columns }
            }
            FT_ROW_BATCH => {
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let w = c.u32()? as usize;
                    let mut row = Vec::with_capacity(w.min(1 << 16));
                    for _ in 0..w {
                        row.push(decode_value(&mut c)?);
                    }
                    rows.push(row);
                }
                Frame::RowBatch { rows }
            }
            FT_DONE => Frame::Done(Footer {
                parse_ms: c.f64()?,
                optimize_ms: c.f64()?,
                execute_ms: c.f64()?,
                execute_cpu_ms: c.f64()?,
                serialize_ms: c.f64()?,
                rows: c.u64()?,
            }),
            FT_ERROR => Frame::Error(decode_error(&mut c)?),
            FT_REJECTED => Frame::Rejected {
                code: RejectCode::from_byte(c.u8()?),
                retry_after_ms: c.u32()?,
            },
            FT_BYE => Frame::Bye,
            t => return Err(corrupt(&format!("unknown frame type {t}"))),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// A transport wrapped with framing, fault sites, and byte accounting.
///
/// Every read passes the `net.read` failpoint and every write the
/// `net.write` failpoint (key = connection id, attempt = frame ordinal), so
/// perfeval-fault can drop, delay, or hang a connection deterministically.
pub struct FramedIo {
    io: Box<dyn Transport>,
    faults: Arc<FaultRegistry>,
    conn_id: u64,
    frames_read: u32,
    frames_written: u32,
    bytes_read: u64,
    bytes_written: u64,
}

impl FramedIo {
    /// Wraps a transport. `conn_id` keys this connection's fault triggers.
    pub fn new(io: Box<dyn Transport>, faults: Arc<FaultRegistry>, conn_id: u64) -> Self {
        FramedIo {
            io,
            faults,
            conn_id,
            frames_read: 0,
            frames_written: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The connection id used as this end's fault-trigger key.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Total payload bytes received so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total payload bytes sent so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Transport description for reports.
    pub fn describe(&self) -> String {
        self.io.describe()
    }

    /// Sends one frame.
    ///
    /// # Errors
    /// Transport errors, or an injected `net.write` failure.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.frames_written += 1;
        // Delay/jitter/hang/panic actions first, then the I/O verdict.
        self.faults
            .fire("net.write", self.conn_id, self.frames_written);
        if self.faults.io_fails("net.write", self.conn_id) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected net.write failure",
            ));
        }
        let bytes = frame.encode();
        self.io.write_all(&bytes)?;
        self.io.flush()?;
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Receives one frame, blocking until it arrives.
    ///
    /// # Errors
    /// `UnexpectedEof` if the peer closed, `InvalidData` on protocol
    /// corruption, or an injected `net.read` failure.
    pub fn recv(&mut self) -> io::Result<Frame> {
        self.frames_read += 1;
        self.faults.fire("net.read", self.conn_id, self.frames_read);
        if self.faults.io_fails("net.read", self.conn_id) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected net.read failure",
            ));
        }
        let mut len_buf = [0u8; 4];
        self.io.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(corrupt(&format!("bad frame length {len}")));
        }
        let mut body = vec![0u8; len as usize];
        self.io.read_exact(&mut body)?;
        self.bytes_read += 4 + len as u64;
        Frame::decode(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackConn;
    use proptest::prelude::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4, "length prefix covers the body");
        assert_eq!(Frame::decode(&bytes[4..]).unwrap(), frame);
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        roundtrip(Frame::Hello { version: 1 });
        roundtrip(Frame::HelloOk { version: 7 });
        roundtrip(Frame::Query {
            trace_parent: 0xdead_beef,
            deadline_ms: 0,
            sql: "SELECT 1".to_owned(),
        });
        roundtrip(Frame::Query {
            trace_parent: 7,
            deadline_ms: 250,
            sql: "SELECT COUNT(*) FROM t".to_owned(),
        });
        roundtrip(Frame::ResultHeader {
            columns: vec!["a".into(), "sum_b".into()],
        });
        roundtrip(Frame::RowBatch {
            rows: vec![
                vec![
                    Value::Int(-5),
                    Value::Float(1.5),
                    Value::Str("x".into()),
                    Value::Bool(true),
                    Value::Null,
                ],
                vec![Value::Bool(false)],
                vec![],
            ],
        });
        roundtrip(Frame::Done(Footer {
            parse_ms: 0.25,
            optimize_ms: 0.5,
            execute_ms: 12.0,
            execute_cpu_ms: 11.5,
            serialize_ms: 0.75,
            rows: 42,
        }));
        roundtrip(Frame::Error(DbError::Arity {
            expected: 3,
            got: 2,
        }));
        roundtrip(Frame::Error(DbError::Parse("near 'FROM'".into())));
        roundtrip(Frame::Error(DbError::Cancelled("deadline exceeded".into())));
        for code in [
            RejectCode::Overloaded,
            RejectCode::DeadlineExceeded,
            RejectCode::ShuttingDown,
        ] {
            roundtrip(Frame::Rejected {
                code,
                retry_after_ms: 12,
            });
        }
        roundtrip(Frame::Bye);
    }

    #[test]
    fn unknown_reject_code_decodes_forward_compatibly() {
        // A newer server may send reject reasons this build has no variant
        // for; the decoder must yield Unknown(b), not a protocol error.
        for b in [0u8, 4, 99, 255] {
            let body = vec![FT_REJECTED, b, 7, 0, 0, 0];
            match Frame::decode(&body).unwrap() {
                Frame::Rejected {
                    code: RejectCode::Unknown(got),
                    retry_after_ms: 7,
                } => assert_eq!(got, b),
                f => panic!("expected Unknown({b}), got {f:?}"),
            }
        }
        // And Unknown codes re-encode to the same byte (proxy-safe).
        roundtrip(Frame::Rejected {
            code: RejectCode::Unknown(200),
            retry_after_ms: 0,
        });
    }

    proptest! {
        #[test]
        fn query_header_roundtrips(
            trace_parent in any::<u64>(),
            deadline_ms in any::<u32>(),
            chars in prop::collection::vec(0u32..95, 0..120),
        ) {
            // Printable-ASCII SQL of arbitrary length; the header fields
            // around it must frame and unframe exactly.
            let sql: String = chars.iter().map(|&c| (b' ' + c as u8) as char).collect();
            let frame = Frame::Query { trace_parent, deadline_ms, sql };
            let bytes = frame.encode();
            prop_assert_eq!(Frame::decode(&bytes[4..]).unwrap(), frame);
        }

        #[test]
        fn rejected_roundtrips_any_code_byte(
            byte in 0u32..256,
            retry_after_ms in any::<u32>(),
        ) {
            // Every byte value decodes (known codes to their variant,
            // the rest to Unknown) and re-encodes to the same byte.
            let byte = byte as u8;
            let frame = Frame::Rejected {
                code: RejectCode::from_byte(byte),
                retry_after_ms,
            };
            let bytes = frame.encode();
            let decoded = Frame::decode(&bytes[4..]).unwrap();
            prop_assert_eq!(&decoded, &frame);
            match decoded {
                Frame::Rejected { code, .. } => {
                    prop_assert_eq!(code.to_byte(), byte)
                }
                f => panic!("wrong frame {f:?}"),
            }
        }
    }

    #[test]
    fn floats_survive_bit_exact() {
        for f in [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.0 + f64::EPSILON,
            core::f64::consts::PI,
        ] {
            let frame = Frame::RowBatch {
                rows: vec![vec![Value::Float(f)]],
            };
            let bytes = frame.encode();
            match Frame::decode(&bytes[4..]).unwrap() {
                Frame::RowBatch { rows } => match rows[0][0] {
                    Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                    ref v => panic!("wrong value {v:?}"),
                },
                f => panic!("wrong frame {f:?}"),
            }
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(Frame::decode(&[]).is_err(), "empty body");
        assert!(Frame::decode(&[99]).is_err(), "unknown frame type");
        assert!(Frame::decode(&[FT_HELLO, 1, 0]).is_err(), "truncated");
        let mut ok = Frame::Bye.encode();
        ok.push(0); // trailing byte after a valid frame
        assert!(Frame::decode(&ok[4..]).is_err(), "trailing bytes");
        // Invalid UTF-8 in a string payload.
        let mut body = vec![FT_QUERY];
        put_u64(&mut body, 0);
        put_u32(&mut body, 0); // deadline_ms
        put_u32(&mut body, 2);
        body.extend_from_slice(&[0xff, 0xfe]);
        assert!(Frame::decode(&body).is_err(), "invalid utf-8");
    }

    #[test]
    fn framed_io_sends_and_receives_over_loopback() {
        let (a, b) = LoopbackConn::pair(1024);
        let faults = Arc::new(FaultRegistry::disabled());
        let mut fa = FramedIo::new(Box::new(a), Arc::clone(&faults), 1);
        let mut fb = FramedIo::new(Box::new(b), faults, 2);
        let sent = Frame::Query {
            trace_parent: 9,
            deadline_ms: 0,
            sql: "SELECT * FROM t".to_owned(),
        };
        fa.send(&sent).unwrap();
        assert_eq!(fb.recv().unwrap(), sent);
        assert_eq!(fa.bytes_written(), fb.bytes_read());
        assert!(fa.bytes_written() > 0);
    }

    #[test]
    fn framed_io_peer_close_is_unexpected_eof() {
        let (a, b) = LoopbackConn::pair(64);
        let faults = Arc::new(FaultRegistry::disabled());
        drop(a);
        let mut fb = FramedIo::new(Box::new(b), faults, 1);
        let err = fb.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn framed_io_honours_injected_read_failure() {
        use perfeval_fault::{FaultAction, Trigger};
        let (a, b) = LoopbackConn::pair(64);
        let faults = Arc::new(FaultRegistry::new(0).armed_always(
            "net.read",
            Trigger::Key(7),
            FaultAction::FailIo,
        ));
        let mut fa = FramedIo::new(Box::new(a), Arc::clone(&faults), 1);
        let mut fb = FramedIo::new(Box::new(b), faults, 7);
        fa.send(&Frame::Bye).unwrap();
        let err = fb.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
