//! The client: issues queries over a transport and decomposes its own wall
//! clock with the server's footer.
//!
//! The client owns its *own* [`Clock`] — the whole point of the subsystem
//! is that client time and server time are measured by different
//! stopwatches on (conceptually) different machines, exactly like
//! `mclient -t` vs. the server's trace. One query yields:
//!
//! | component | measured by | how |
//! |---|---|---|
//! | server user | server | per-thread CPU clock around execute |
//! | server real | server | wall clock around parse/optimize/execute |
//! | serialize | server | wall clock around encode+write of result frames |
//! | wire | client | receive wall time minus the server's busy time |
//! | client print | client | wall clock around the sink |
//!
//! "Wire" is a *residual*: the client cannot see inside the server, so
//! everything between "request sent" and "footer received" that the server
//! does not claim as busy time is transfer + queueing. That is how a real
//! two-box measurement works, and why the residual is clamped at zero
//! (clock skew between two stopwatches can make it slightly negative).

use std::io;
use std::sync::Arc;

use minidb::exec::ResultSet;
use minidb::sink::{NullSink, ResultSink};
use minidb::{DbError, Value};
use perfeval_fault::FaultRegistry;
use perfeval_measure::{Clock, WallClock};
use perfeval_trace::Tracer;

use crate::frame::{Footer, Frame, FramedIo, RejectCode, PROTOCOL_VERSION};
use crate::transport::Transport;

/// A client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connection reset, injected wire fault, EOF).
    Io(io::Error),
    /// The server answered with a database error.
    Db(DbError),
    /// The server shed the query (admission control, deadline, shutdown).
    /// The connection stays usable; honor `retry_after_ms` before trying
    /// again.
    Rejected {
        /// Why the server shed the query.
        code: RejectCode,
        /// Server's hint: wait at least this long before retrying, ms.
        retry_after_ms: u32,
    },
    /// The peer violated the protocol (unexpected frame, row-count
    /// mismatch, version refusal).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Db(e) => write!(f, "server error: {e}"),
            NetError::Rejected {
                code,
                retry_after_ms,
            } => write!(f, "rejected: {code} (retry after {retry_after_ms} ms)"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Result of one query over the wire, with the full time decomposition.
#[derive(Debug, Clone)]
pub struct NetQueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows (bit-identical to an in-process run; see
    /// `tests/roundtrip.rs`).
    pub rows: Vec<Vec<Value>>,
    /// The server's timing footer, verbatim.
    pub footer: Footer,
    /// Transfer + queueing residual: receive wall time minus the server's
    /// claimed busy time, clamped at zero. Client-measured, ms.
    pub wire_ms: f64,
    /// Wall time the sink took to consume the result. Client-measured, ms.
    pub print_ms: f64,
    /// Total wall time from sending the query to the sink finishing.
    /// Client-measured, ms.
    pub client_real_ms: f64,
    /// Payload bytes received for this query (frames, not kernel bytes).
    pub bytes_received: u64,
    /// Bytes the sink rendered.
    pub result_bytes: usize,
}

impl NetQueryResult {
    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Server "user" time: per-thread CPU of the execute phase, ms.
    pub fn server_user_ms(&self) -> f64 {
        self.footer.execute_cpu_ms
    }

    /// Server "real" time: parse + optimize + execute wall, ms.
    pub fn server_real_ms(&self) -> f64 {
        self.footer.parse_ms + self.footer.optimize_ms + self.footer.execute_ms
    }

    /// Server-side result encoding + write time, ms.
    pub fn serialize_ms(&self) -> f64 {
        self.footer.serialize_ms
    }

    /// Result-delivery time: serialize + wire + client print, ms. The
    /// component the paper warns can dominate "query time" when you
    /// measure at the client.
    pub fn delivery_ms(&self) -> f64 {
        self.serialize_ms() + self.wire_ms + self.print_ms
    }

    /// Fraction of total client real time spent on delivery (0..=1).
    pub fn delivery_share(&self) -> f64 {
        if self.client_real_ms <= 0.0 {
            0.0
        } else {
            (self.delivery_ms() / self.client_real_ms).clamp(0.0, 1.0)
        }
    }

    /// Renders the decomposition as an aligned table — the honest version
    /// of `mclient -t` output.
    pub fn decomposition(&self) -> String {
        let total = self.client_real_ms.max(1e-9);
        let pct = |ms: f64| 100.0 * ms / total;
        let other = (self.client_real_ms
            - self.server_real_ms()
            - self.serialize_ms()
            - self.wire_ms
            - self.print_ms)
            .max(0.0);
        let mut out = String::new();
        out.push_str(&format!(
            "client real    {:>10.3} ms  100.0%\n",
            self.client_real_ms
        ));
        out.push_str(&format!(
            "  server user  {:>10.3} ms  (cpu, inside server real)\n",
            self.server_user_ms()
        ));
        for (label, ms) in [
            ("server real ", self.server_real_ms()),
            ("serialize   ", self.serialize_ms()),
            ("wire        ", self.wire_ms),
            ("client print", self.print_ms),
            ("other       ", other),
        ] {
            out.push_str(&format!("  {label} {:>10.3} ms  {:>5.1}%\n", ms, pct(ms)));
        }
        out
    }
}

/// Something that can dial (and re-dial) a server — the named trait behind
/// [`Connector`], so downstream code can store a dialer in a struct field
/// or trait object without spelling out a closure type.
///
/// Every `Fn() -> io::Result<Box<dyn Transport>> + Send` closure is a
/// `Connect` via the blanket impl, so existing `Box::new(move || ...)`
/// call sites keep working unchanged, and custom dialer types (connection
/// pools, fault-wrapped endpoints) can implement it by name.
pub trait Connect: Send {
    /// Opens a fresh transport to the server.
    ///
    /// # Errors
    /// Propagates endpoint dial failures.
    fn dial(&self) -> io::Result<Box<dyn Transport>>;
}

impl<F> Connect for F
where
    F: Fn() -> io::Result<Box<dyn Transport>> + Send,
{
    fn dial(&self) -> io::Result<Box<dyn Transport>> {
        self()
    }
}

/// A boxed dialer the client can call again to re-establish a dropped
/// connection (see [`Client::connect_via`] / [`Client::reconnect`]).
pub type Connector = Box<dyn Connect>;

/// A connected client. One connection, one server-side session; the
/// connection is persistent — [`Client::query`] can be called any number
/// of times without re-handshaking (the `Hello` exchange happens exactly
/// once per connection).
pub struct Client {
    io: FramedIo,
    tracer: Option<Tracer>,
    now_ns: Box<dyn Fn() -> u64 + Send>,
    said_bye: bool,
    alive: bool,
    connector: Option<Connector>,
    faults: Arc<FaultRegistry>,
    conn_key: u64,
    deadline_ms: u32,
}

impl Client {
    /// Connects over `transport` (handshake included) with a wall clock and
    /// no fault injection.
    ///
    /// # Errors
    /// Transport errors, or a server version refusal.
    pub fn connect(transport: Box<dyn Transport>) -> Result<Client, NetError> {
        Client::connect_with(transport, Arc::new(FaultRegistry::disabled()), 0)
    }

    /// Connects with a fault registry evaluating the client side's
    /// `net.read`/`net.write` sites, keyed by `conn_key`. This is how an
    /// experiment injects a *deterministic* dropped connection or slow link
    /// on the client's end of the wire.
    pub fn connect_with(
        transport: Box<dyn Transport>,
        faults: Arc<FaultRegistry>,
        conn_key: u64,
    ) -> Result<Client, NetError> {
        let io = Client::handshake(transport, &faults, conn_key)?;
        let clock = WallClock::new();
        Ok(Client {
            io,
            tracer: None,
            now_ns: Box::new(move || clock.now_ns()),
            said_bye: false,
            alive: true,
            connector: None,
            faults,
            conn_key,
            deadline_ms: 0,
        })
    }

    /// Connects through a re-dialable `connector` and remembers it, so a
    /// dead connection can be revived in place with [`Client::reconnect`].
    /// This is what a load generator uses: thousands of sequential queries
    /// on one persistent connection, and a cheap recovery path when a
    /// flapping link kills it.
    ///
    /// # Errors
    /// Dial or handshake failure.
    pub fn connect_via(
        connector: Connector,
        faults: Arc<FaultRegistry>,
        conn_key: u64,
    ) -> Result<Client, NetError> {
        let transport = connector.dial()?;
        let mut client = Client::connect_with(transport, faults, conn_key)?;
        client.connector = Some(connector);
        Ok(client)
    }

    /// Performs the one-per-connection `Hello` exchange.
    fn handshake(
        transport: Box<dyn Transport>,
        faults: &Arc<FaultRegistry>,
        conn_key: u64,
    ) -> Result<FramedIo, NetError> {
        let mut io = FramedIo::new(transport, Arc::clone(faults), conn_key);
        io.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match io.recv()? {
            Frame::HelloOk { .. } => {}
            Frame::Error(e) => return Err(NetError::Db(e)),
            // Accept-backlog admission control answers Hello with a
            // Rejected frame and closes; surface it as the typed error so
            // the dialer can back off and re-dial.
            Frame::Rejected {
                code,
                retry_after_ms,
            } => {
                return Err(NetError::Rejected {
                    code,
                    retry_after_ms,
                })
            }
            f => return Err(NetError::Protocol(format!("expected HelloOk, got {f:?}"))),
        }
        Ok(io)
    }

    /// Whether the connection is believed usable: no transport or protocol
    /// error has been observed and `close` has not been called. Cheap (a
    /// flag read — no probe traffic), so a load harness can gate every
    /// request on it.
    pub fn is_alive(&self) -> bool {
        self.alive && !self.said_bye
    }

    /// Re-dials and re-handshakes in place after the connection died,
    /// using the connector stored by [`Client::connect_via`]. The server
    /// sees a brand-new connection (and session); the client keeps its
    /// tracer, clock, and fault key.
    ///
    /// # Errors
    /// `Protocol` if the client was not built with `connect_via`;
    /// otherwise dial/handshake errors (the client stays dead).
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let connector = self.connector.as_ref().ok_or_else(|| {
            NetError::Protocol("no connector: client was not built with connect_via".into())
        })?;
        let transport = connector.dial()?;
        self.io = Client::handshake(transport, &self.faults, self.conn_key)?;
        self.alive = true;
        self.said_bye = false;
        Ok(())
    }

    /// Uses `clock` for all client-side timing (wire residual, print,
    /// total). Deterministic tests hand in an
    /// [`perfeval_measure::AtomicClock`].
    pub fn with_clock(mut self, clock: impl Clock + Send + 'static) -> Self {
        self.now_ns = Box::new(move || clock.now_ns());
        self
    }

    /// Records a `net.query` span per query into `tracer`, and sends its
    /// span id in the frame header so the server parents its spans under
    /// it.
    pub fn traced(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Sets the per-query deadline carried in every subsequent `Query`
    /// frame header, milliseconds (`0` clears it). The server enforces it
    /// by cooperative cancellation and answers an expired query with
    /// [`NetError::Rejected`]`{ code: DeadlineExceeded }` — the connection
    /// and its session stay usable.
    pub fn set_deadline_ms(&mut self, ms: u32) {
        self.deadline_ms = ms;
    }

    /// Builder form of [`Client::set_deadline_ms`].
    pub fn with_deadline_ms(mut self, ms: u32) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Transport description ("tcp 127.0.0.1:...", "loopback-client").
    pub fn describe(&self) -> String {
        self.io.describe()
    }

    /// Runs a query, discarding the rendering (null sink) — the pure
    /// receive-side measurement.
    ///
    /// # Errors
    /// [`NetError::Db`] for server-reported query errors, [`NetError::Io`] /
    /// [`NetError::Protocol`] if the connection died. After an `Io` or
    /// `Protocol` error the connection is unusable.
    pub fn query(&mut self, sql: &str) -> Result<NetQueryResult, NetError> {
        let mut null = NullSink;
        self.query_to(sql, &mut null)
    }

    /// Runs a query and delivers the result to `sink`, timing it as the
    /// "client print" component.
    ///
    /// # Errors
    /// See [`Client::query`]. An `Io` or `Protocol` error marks the
    /// connection dead ([`Client::is_alive`] returns false); a `Db` error
    /// leaves it usable — the server session survives a failed query.
    pub fn query_to(
        &mut self,
        sql: &str,
        sink: &mut dyn ResultSink,
    ) -> Result<NetQueryResult, NetError> {
        let result = self.query_to_inner(sql, sink);
        if matches!(result, Err(NetError::Io(_)) | Err(NetError::Protocol(_))) {
            self.alive = false;
        }
        result
    }

    fn query_to_inner(
        &mut self,
        sql: &str,
        sink: &mut dyn ResultSink,
    ) -> Result<NetQueryResult, NetError> {
        let t0 = (self.now_ns)();
        let mut span = self.tracer.as_ref().map(|t| t.span("net.query"));
        if let Some(g) = span.as_mut() {
            g.attr("sql", sql_preview(sql));
        }
        let trace_parent = span
            .as_ref()
            .and_then(|g| g.id())
            .map(|id| id.0)
            .unwrap_or(0);

        let bytes_before = self.io.bytes_read();
        self.io.send(&Frame::Query {
            trace_parent,
            deadline_ms: self.deadline_ms,
            sql: sql.to_owned(),
        })?;

        let columns = match self.io.recv()? {
            Frame::ResultHeader { columns } => columns,
            Frame::Error(e) => return Err(NetError::Db(e)),
            Frame::Rejected {
                code,
                retry_after_ms,
            } => {
                return Err(NetError::Rejected {
                    code,
                    retry_after_ms,
                })
            }
            f => {
                return Err(NetError::Protocol(format!(
                    "expected ResultHeader, got {f:?}"
                )))
            }
        };
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let footer = loop {
            match self.io.recv()? {
                Frame::RowBatch { rows: batch } => rows.extend(batch),
                Frame::Done(footer) => break footer,
                Frame::Error(e) => return Err(NetError::Db(e)),
                f => {
                    return Err(NetError::Protocol(format!(
                        "expected RowBatch or Done, got {f:?}"
                    )))
                }
            }
        };
        let received_ns = (self.now_ns)().saturating_sub(t0);
        if footer.rows != rows.len() as u64 {
            return Err(NetError::Protocol(format!(
                "row count mismatch: footer says {}, received {}",
                footer.rows,
                rows.len()
            )));
        }

        // Print through the sink, on the client's clock.
        let tp = (self.now_ns)();
        let result = ResultSet {
            column_names: columns,
            rows,
        };
        let report = sink.consume(&result).map_err(NetError::Db)?;
        let done_ns = (self.now_ns)();

        let recv_ms = received_ns as f64 / 1e6;
        let print_ms = done_ns.saturating_sub(tp) as f64 / 1e6;
        let client_real_ms = done_ns.saturating_sub(t0) as f64 / 1e6;
        let wire_ms = (recv_ms - footer.busy_ms()).max(0.0);
        if let Some(g) = span.as_mut() {
            g.attr("rows", result.rows.len())
                .attr("wire_ms", wire_ms)
                .attr("print_ms", print_ms)
                .attr("server_busy_ms", footer.busy_ms());
        }

        let ResultSet { column_names, rows } = result;
        Ok(NetQueryResult {
            columns: column_names,
            rows,
            footer,
            wire_ms,
            print_ms,
            client_real_ms,
            bytes_received: self.io.bytes_read().saturating_sub(bytes_before),
            result_bytes: report.bytes,
        })
    }

    /// Closes the connection politely (`Bye`).
    ///
    /// # Errors
    /// Transport errors while sending the farewell.
    pub fn close(mut self) -> Result<(), NetError> {
        self.said_bye = true;
        self.io.send(&Frame::Bye)?;
        Ok(())
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if !self.said_bye {
            let _ = self.io.send(&Frame::Bye);
        }
    }
}

/// Truncates long SQL for span attributes.
fn sql_preview(sql: &str) -> String {
    const MAX: usize = 120;
    if sql.len() <= MAX {
        return sql.to_owned();
    }
    let mut end = MAX;
    while !sql.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &sql[..end])
}
