//! The server: pool-backed accept workers, per-connection sessions,
//! streamed result batches.
//!
//! Each accept worker (a `perfeval-pool` worker thread, so it gets a stable
//! name and a trace lane) loops on [`Listener::accept`] and serves one
//! connection at a time to completion. A connection owns a private
//! [`Session`] built by the server's session factory — per-connection
//! isolation is structural: no session state is shared, so concurrent
//! clients cannot observe each other's statement ordinals, buffer pools, or
//! catalogs (unless the factory deliberately shares a catalog `Arc`).
//!
//! Results stream as [`Frame::RowBatch`]es through the transport's bounded
//! buffer: a slow client blocks the server's `write`, never grows an
//! unbounded queue. The final [`Frame::Done`] carries the server-side
//! timing footer — measured where the phases actually ran — so the client
//! can decompose its own wall clock honestly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use minidb::{DbError, Session};
use perfeval_fault::FaultRegistry;
use perfeval_pool::parallel_map_traced;
use perfeval_trace::{SpanId, Tracer};

use crate::frame::{Footer, Frame, FramedIo, PROTOCOL_VERSION, ROWS_PER_BATCH};
use crate::transport::Listener;

/// Builds sessions for new connections. Runs on accept-worker threads.
pub type SessionFactory = dyn Fn() -> Session + Send + Sync;

/// Counters a running server exposes; all monotonic.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    disconnects: AtomicU64,
    worker_panics: AtomicU64,
}

/// A snapshot of server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Queries answered (including ones that returned a `DbError`).
    pub queries: u64,
    /// Connections that ended on a transport error instead of `Bye`
    /// (client vanished, injected wire fault, protocol violation).
    pub disconnects: u64,
    /// Panics caught while serving (injected engine faults); the
    /// connection survives, the panic is reported to the client as an
    /// error frame.
    pub worker_panics: u64,
}

/// Configures and launches a [`ServerHandle`].
pub struct Server {
    workers: usize,
    tracer: Option<Tracer>,
    faults: Arc<FaultRegistry>,
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    /// A server with two accept workers, no tracing, no fault injection.
    pub fn new() -> Self {
        Server {
            workers: 2,
            tracer: None,
            faults: Arc::new(FaultRegistry::disabled()),
        }
    }

    /// Number of accept workers = maximum concurrently served connections.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n > 0, "a server needs at least one worker");
        self.workers = n;
        self
    }

    /// Records server-side spans into `tracer`. Query frames that carry a
    /// client span id get their `net.serve` span parented under it, so one
    /// snapshot stitches both sides of the wire.
    pub fn traced(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Arms fault sites: `net.accept` (key = connection ordinal) around
    /// each accept, `net.read`/`net.write` (key = connection ordinal,
    /// attempt = frame ordinal) on every server-side frame.
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = faults;
        self
    }

    /// Starts serving `listener`, building one session per connection with
    /// `factory`. Returns immediately; the accept workers run until
    /// [`ServerHandle::shutdown`].
    pub fn serve(
        self,
        listener: Arc<dyn Listener>,
        factory: impl Fn() -> Session + Send + Sync + 'static,
    ) -> ServerHandle {
        let Server {
            workers,
            tracer,
            faults,
        } = self;
        let counters = Arc::new(Counters::default());
        let shared = Arc::new(Shared {
            listener: Arc::clone(&listener),
            factory: Box::new(factory),
            tracer,
            faults,
            counters: Arc::clone(&counters),
            next_conn: AtomicU64::new(0),
        });
        let join = std::thread::Builder::new()
            .name("minidb-serve".to_owned())
            .spawn(move || {
                // The pool is scoped (blocks until every worker exits), so
                // it lives on this supervisor thread; workers exit when the
                // listener shuts down.
                let tracer = shared.tracer.clone();
                parallel_map_traced(workers, workers, tracer.as_ref(), |_w| {
                    shared.accept_loop();
                });
            })
            .expect("spawn server supervisor thread");
        ServerHandle {
            listener,
            join: Some(join),
            counters,
        }
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// its workers.
pub struct ServerHandle {
    listener: Arc<dyn Listener>,
    join: Option<std::thread::JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl ServerHandle {
    /// Stops accepting new connections; in-flight connections finish their
    /// current request loop. Idempotent.
    pub fn shutdown(&self) {
        self.listener.shutdown();
    }

    /// Shuts down and waits for every worker to exit, returning final
    /// counters.
    pub fn wait(mut self) -> ServerStats {
        self.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        self.stats()
    }

    /// Current counters (live; monotonic).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            disconnects: self.counters.disconnects.load(Ordering::Relaxed),
            worker_panics: self.counters.worker_panics.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

struct Shared {
    listener: Arc<dyn Listener>,
    factory: Box<SessionFactory>,
    tracer: Option<Tracer>,
    faults: Arc<FaultRegistry>,
    counters: Arc<Counters>,
    next_conn: AtomicU64,
}

impl Shared {
    fn accept_loop(&self) {
        loop {
            let transport = match self.listener.accept() {
                Ok(t) => t,
                Err(_) => return, // shutdown (or listener failure): worker exits
            };
            let conn_id = self.next_conn.fetch_add(1, Ordering::Relaxed);
            self.faults.fire("net.accept", conn_id, 1);
            if self.faults.io_fails("net.accept", conn_id) {
                // Injected accept failure: drop the connection on the
                // floor, exactly like a listener backlog overflow would.
                self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.counters.connections.fetch_add(1, Ordering::Relaxed);
            let mut io = FramedIo::new(transport, Arc::clone(&self.faults), conn_id);
            // A panic while serving (injected engine fault, engine bug)
            // must not take the accept worker down with it.
            let outcome = catch_unwind(AssertUnwindSafe(|| self.serve_connection(&mut io)));
            match outcome {
                Ok(true) => {}
                Ok(false) => {
                    self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                    self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Serves one connection to completion. Returns `true` on a clean
    /// `Bye`, `false` on transport error / protocol violation.
    fn serve_connection(&self, io: &mut FramedIo) -> bool {
        // Handshake first: refuse version mismatches before any query.
        match io.recv() {
            Ok(Frame::Hello {
                version: PROTOCOL_VERSION,
            }) => {}
            Ok(Frame::Hello { version }) => {
                let _ = io.send(&Frame::Error(DbError::Io(format!(
                    "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                ))));
                return false;
            }
            _ => return false,
        }
        if io
            .send(&Frame::HelloOk {
                version: PROTOCOL_VERSION,
            })
            .is_err()
        {
            return false;
        }

        let mut session = (self.factory)();
        loop {
            match io.recv() {
                Ok(Frame::Query { trace_parent, sql }) => {
                    self.counters.queries.fetch_add(1, Ordering::Relaxed);
                    if !self.answer_query(io, &mut session, trace_parent, &sql) {
                        return false;
                    }
                }
                Ok(Frame::Bye) => return true,
                Ok(_) => {
                    let _ = io.send(&Frame::Error(DbError::Io(
                        "protocol violation: expected Query or Bye".to_owned(),
                    )));
                    return false;
                }
                Err(_) => return false,
            }
        }
    }

    /// Runs one query and streams the response. Returns `false` if the
    /// transport died mid-response.
    fn answer_query(
        &self,
        io: &mut FramedIo,
        session: &mut Session,
        trace_parent: u64,
        sql: &str,
    ) -> bool {
        // Parent the server's span under the client's span id from the
        // frame header; 0 means the client wasn't tracing.
        let mut serve_span = self.tracer.as_ref().map(|t| {
            if trace_parent != 0 {
                t.span_with_parent("net.serve", SpanId(trace_parent))
            } else {
                t.span("net.serve")
            }
        });
        if let Some(g) = serve_span.as_mut() {
            g.attr("conn", io.conn_id() as i64);
        }

        let ran = catch_unwind(AssertUnwindSafe(|| {
            let mut query = session.query(sql);
            if let Some(t) = self.tracer.as_ref() {
                query = query.traced(t);
            }
            query.run()
        }));
        let result = match ran {
            Ok(r) => r,
            Err(payload) => {
                // Contained engine panic: the client gets an error frame,
                // the connection and the worker live on.
                self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                let msg = perfeval_fault::panic_message(payload.as_ref());
                return io
                    .send(&Frame::Error(DbError::Io(format!(
                        "server panic while executing: {msg}"
                    ))))
                    .is_ok();
            }
        };

        match result {
            Err(e) => io.send(&Frame::Error(e)).is_ok(),
            Ok(r) => {
                use perfeval_measure::Phase;
                let rows_total = r.rows.len() as u64;
                let mut footer = Footer {
                    parse_ms: r.phases.phase(Phase::Parse).unwrap_or(0.0),
                    optimize_ms: r.phases.phase(Phase::Optimize).unwrap_or(0.0),
                    execute_ms: r.phases.phase(Phase::Execute).unwrap_or(0.0),
                    execute_cpu_ms: r.execute_cpu_ms,
                    serialize_ms: 0.0,
                    rows: rows_total,
                };
                // Serialize + stream. The timer covers encode AND write:
                // writes into a full bounded buffer block, and that wait is
                // genuine serialize/transfer time, not server compute.
                let t0 = Instant::now();
                if io
                    .send(&Frame::ResultHeader {
                        columns: r.column_names,
                    })
                    .is_err()
                {
                    return false;
                }
                let mut rows = r.rows;
                while !rows.is_empty() {
                    let rest = rows.split_off(rows.len().min(ROWS_PER_BATCH));
                    let batch = std::mem::replace(&mut rows, rest);
                    if io.send(&Frame::RowBatch { rows: batch }).is_err() {
                        return false;
                    }
                }
                footer.serialize_ms = t0.elapsed().as_secs_f64() * 1e3;
                if let Some(g) = serve_span.as_mut() {
                    g.attr("rows", rows_total as i64)
                        .attr("serialize_ms", footer.serialize_ms);
                }
                io.send(&Frame::Done(footer)).is_ok()
            }
        }
    }
}
