//! The server: two execution engines behind one builder API.
//!
//! [`ServerMode`] is a **declared design factor** — the execution engine is
//! chosen explicitly at construction, never implied by a constructor's
//! accident, in the spirit of making every performance-relevant knob an
//! explicit factor of the experiment design:
//!
//! * [`ServerMode::ThreadPerConn`] — the classic engine: a pool of accept
//!   workers, each serving one connection at a time with blocking I/O.
//!   Simple, and its scheduling behavior under high connection counts is
//!   itself an object of study (experiment E23).
//! * [`ServerMode::Sharded`] — the event-driven shared-nothing core in
//!   [`crate::shard`]: deterministic conn→shard placement, per-shard
//!   readiness loops (epoll for TCP, the zero-syscall shim for loopback),
//!   bounded per-connection write queues, and cross-shard work stealing
//!   through the engine's morsel parallelism.
//!
//! Both modes share the per-connection session isolation, the fault sites
//! (`net.accept`/`net.read`/`net.write`), panic containment, trace-span
//! stitching, and the timing footer semantics — results and measured
//! decompositions are mode-independent; throughput and tails are not,
//! which is the point.
//!
//! ```no_run
//! # use minidb_net::{Server, ServerMode, LoopbackEndpoint};
//! # use minidb::{Catalog, Session};
//! let ep = LoopbackEndpoint::new();
//! let server = Server::builder()
//!     .transport(ep)
//!     .mode(ServerMode::Sharded { shards: 4, queue_depth: 64 })
//!     .serve(|| Session::new(Catalog::new()));
//! // ... connect clients ...
//! server.shutdown();
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use minidb::{CancelToken, DbError, Session};
use perfeval_fault::FaultRegistry;
use perfeval_pool::parallel_map_traced;
use perfeval_trace::{SpanId, Tracer};

use crate::frame::{Footer, Frame, FramedIo, RejectCode, PROTOCOL_VERSION, ROWS_PER_BATCH};
use crate::shard::{run_sharded, ShardConfig, ShardTelemetry};
use crate::transport::{Listener, Transport};

/// Builds sessions for new connections. Runs on server-owned threads.
pub type SessionFactory = dyn Fn() -> Session + Send + Sync;

/// Default bound on a sharded connection's write queue, in encoded frames.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Which execution engine serves connections — an explicit experiment arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// One blocking worker per in-flight connection, from a fixed pool of
    /// `workers` accept threads. A connection beyond `workers` waits in the
    /// listener backlog.
    ThreadPerConn {
        /// Pool size = maximum concurrently served connections.
        workers: usize,
    },
    /// The event-driven shared-nothing core: `shards` pinned workers
    /// multiplexing all connections, each connection's outbound frames
    /// bounded by `queue_depth`.
    Sharded {
        /// Number of shard workers (core-pinned when permitted).
        shards: usize,
        /// Per-connection write-queue bound, in encoded frames.
        queue_depth: usize,
    },
}

impl Default for ServerMode {
    /// Sharded, with one shard per core (capped at 8) and the default
    /// queue depth.
    fn default() -> Self {
        ServerMode::Sharded {
            shards: default_shards(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }
}

impl ServerMode {
    /// Short label for reports ("threaded:4", "sharded:8x64").
    pub fn describe(&self) -> String {
        match self {
            ServerMode::ThreadPerConn { workers } => format!("threaded:{workers}"),
            ServerMode::Sharded {
                shards,
                queue_depth,
            } => format!("sharded:{shards}x{queue_depth}"),
        }
    }
}

fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().clamp(1, 8))
}

/// Overload-protection knobs — the server's admission-control policy, a
/// declared design factor like [`ServerMode`]. The default admits
/// everything (no shedding), so admission is strictly opt-in.
///
/// When a bound trips, the server answers the offending frame with a typed
/// [`Frame::Rejected`](crate::Frame) *instead of queuing the work* — the
/// client learns in bounded time that it should back off, which is the
/// whole point of load shedding: reject fast rather than queue forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Bound on admitted-but-unfinished queries: per shard in
    /// [`ServerMode::Sharded`] (the shard's run-queue budget), global in
    /// [`ServerMode::ThreadPerConn`]. Queries beyond the budget get
    /// `Rejected { code: Overloaded }`. `0` = unbounded (no shedding).
    pub max_inflight: usize,
    /// Bound on concurrently live connections. A `Hello` arriving past the
    /// bound is answered `Rejected { code: Overloaded }` and the connection
    /// closed — a typed, fast refusal instead of silent backlog growth.
    /// `0` = unbounded.
    pub max_conns: usize,
    /// Server-imposed deadline for queries that carry none in their
    /// `Query` header, milliseconds. Enforced by cooperative cancellation;
    /// an expired query is answered `Rejected { code: DeadlineExceeded }`
    /// and its partial work discarded. `0` = none.
    pub default_deadline_ms: u32,
    /// The `retry_after_ms` hint stamped into every `Rejected` frame.
    pub retry_after_ms: u32,
}

impl Default for Admission {
    /// Admit everything: no in-flight bound, no connection bound, no
    /// server-imposed deadline, 10 ms retry hint.
    fn default() -> Self {
        Admission {
            max_inflight: 0,
            max_conns: 0,
            default_deadline_ms: 0,
            retry_after_ms: 10,
        }
    }
}

impl Admission {
    /// Sets the in-flight query budget (`0` = unbounded).
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Sets the live-connection bound (`0` = unbounded).
    pub fn max_conns(mut self, n: usize) -> Self {
        self.max_conns = n;
        self
    }

    /// Sets the server-imposed default deadline (`0` = none).
    pub fn default_deadline_ms(mut self, ms: u32) -> Self {
        self.default_deadline_ms = ms;
        self
    }

    /// Sets the `retry_after_ms` hint in `Rejected` frames.
    pub fn retry_after_ms(mut self, ms: u32) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// Whether any shedding bound is armed.
    pub fn is_shedding(&self) -> bool {
        self.max_inflight > 0 || self.max_conns > 0 || self.default_deadline_ms > 0
    }

    /// Short label for reports ("admit-all", "inflight:4 deadline:50ms").
    pub fn describe(&self) -> String {
        if !self.is_shedding() {
            return "admit-all".to_owned();
        }
        let mut parts = Vec::new();
        if self.max_inflight > 0 {
            parts.push(format!("inflight:{}", self.max_inflight));
        }
        if self.max_conns > 0 {
            parts.push(format!("conns:{}", self.max_conns));
        }
        if self.default_deadline_ms > 0 {
            parts.push(format!("deadline:{}ms", self.default_deadline_ms));
        }
        parts.join(" ")
    }
}

/// Counters a running server exposes; all monotonic.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) disconnects: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    pub(crate) rejected_overload: AtomicU64,
    pub(crate) rejected_deadline: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    pub(crate) cancelled_queries: AtomicU64,
}

impl Counters {
    /// Bumps the reject counter for `code` (unknown codes count as
    /// overload — they only arise from newer peers).
    pub(crate) fn count_reject(&self, code: RejectCode) {
        let c = match code {
            RejectCode::Overloaded | RejectCode::Unknown(_) => &self.rejected_overload,
            RejectCode::DeadlineExceeded => &self.rejected_deadline,
            RejectCode::ShuttingDown => &self.rejected_shutdown,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// A snapshot of server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Queries answered (including ones that returned a `DbError`).
    pub queries: u64,
    /// Connections that ended on a transport error instead of `Bye`
    /// (client vanished, injected wire fault, protocol violation).
    pub disconnects: u64,
    /// Panics caught while serving (injected engine faults); the
    /// connection survives, the panic is reported to the client as an
    /// error frame.
    pub worker_panics: u64,
    /// Queries (or `Hello`s) shed with `Rejected { code: Overloaded }` —
    /// the in-flight budget or the connection bound tripped.
    pub rejected_overload: u64,
    /// Queries shed with `Rejected { code: DeadlineExceeded }` — expired
    /// before or during execution.
    pub rejected_deadline: u64,
    /// Queries shed with `Rejected { code: ShuttingDown }` while draining.
    pub rejected_shutdown: u64,
    /// Queries whose execution was cut short by cooperative cancellation
    /// (deadline enforcement or the `minidb.cancel` fault site).
    pub cancelled_queries: u64,
}

impl ServerStats {
    /// Total shed requests across all reject codes.
    pub fn rejected(&self) -> u64 {
        self.rejected_overload + self.rejected_deadline + self.rejected_shutdown
    }
}

/// Configures and launches a [`ServerHandle`]. Obtained from
/// [`Server::builder`]; `transport` is the one required field.
pub struct ServerBuilder {
    transport: Option<Arc<dyn Listener>>,
    mode: ServerMode,
    tracer: Option<Tracer>,
    faults: Arc<FaultRegistry>,
    placement_seed: u64,
    pin_cores: bool,
    work_stealing: bool,
    admission: Admission,
}

impl ServerBuilder {
    fn new() -> Self {
        ServerBuilder {
            transport: None,
            mode: ServerMode::default(),
            tracer: None,
            faults: Arc::new(FaultRegistry::disabled()),
            placement_seed: 0,
            pin_cores: true,
            work_stealing: true,
            admission: Admission::default(),
        }
    }

    /// The listening endpoint to serve (required).
    pub fn transport(mut self, listener: Arc<dyn Listener>) -> Self {
        self.transport = Some(listener);
        self
    }

    /// The execution engine (default: [`ServerMode::Sharded`] sized to the
    /// machine).
    pub fn mode(mut self, mode: ServerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Records server-side spans into `tracer`. Query frames that carry a
    /// client span id get their `net.serve` span parented under it, so one
    /// snapshot stitches both sides of the wire.
    pub fn traced(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Arms fault sites: `net.accept` (key = connection ordinal) around
    /// each accept, `net.read`/`net.write` (key = connection ordinal,
    /// attempt = frame ordinal) on every server-side frame, and
    /// `net.admit` (key = connection ordinal, attempt = query ordinal) at
    /// every admission decision (an I/O-failure verdict forces a
    /// `Rejected { code: Overloaded }`) — identically in both modes.
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = faults;
        self
    }

    /// The overload-protection policy (default: [`Admission::default`],
    /// which admits everything).
    pub fn admission(mut self, admission: Admission) -> Self {
        self.admission = admission;
        self
    }

    /// Seed for the deterministic conn→shard placement hash (sharded mode).
    /// Same seed ⇒ same map, independent of arrival timing.
    pub fn placement_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self
    }

    /// Pin shard workers to cores (sharded mode; best effort — refused
    /// affinity calls leave workers floating). Default on.
    pub fn pin_cores(mut self, pin: bool) -> Self {
        self.pin_cores = pin;
        self
    }

    /// Let a busy shard borrow idle shards' cores via the engine's morsel
    /// parallelism (sharded mode). Bit-identical answers either way; only
    /// latency moves. Default on.
    pub fn work_stealing(mut self, steal: bool) -> Self {
        self.work_stealing = steal;
        self
    }

    /// Starts serving, building one session per connection with `factory`.
    /// Returns immediately; the engine runs until [`ServerHandle::shutdown`].
    ///
    /// # Panics
    /// Panics if no transport was set, or on a zero `workers`/`shards`/
    /// `queue_depth`.
    pub fn serve(self, factory: impl Fn() -> Session + Send + Sync + 'static) -> ServerHandle {
        let listener = self
            .transport
            .expect("ServerBuilder::transport(..) is required before serve()");
        let counters = Arc::new(Counters::default());
        let draining = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            listener: Arc::clone(&listener),
            factory: Box::new(factory),
            tracer: self.tracer,
            faults: self.faults,
            counters: Arc::clone(&counters),
            next_conn: AtomicU64::new(0),
            admission: self.admission,
            draining: Arc::clone(&draining),
            inflight: AtomicU64::new(0),
            live_conns: AtomicU64::new(0),
        });
        let mode = self.mode;
        let (join, telemetry) = match mode {
            ServerMode::ThreadPerConn { workers } => {
                assert!(workers > 0, "a server needs at least one worker");
                let join = std::thread::Builder::new()
                    .name("minidb-serve".to_owned())
                    .spawn(move || {
                        // The pool is scoped (blocks until every worker
                        // exits), so it lives on this supervisor thread;
                        // workers exit when the listener shuts down.
                        let tracer = shared.tracer.clone();
                        parallel_map_traced(workers, workers, tracer.as_ref(), |_w| {
                            shared.accept_loop();
                        });
                    })
                    .expect("spawn server supervisor thread");
                (join, None)
            }
            ServerMode::Sharded {
                shards,
                queue_depth,
            } => {
                assert!(shards > 0, "a sharded server needs at least one shard");
                assert!(queue_depth > 0, "queue_depth must be positive");
                let cfg = ShardConfig {
                    shards,
                    queue_depth,
                    placement_seed: self.placement_seed,
                    pin_cores: self.pin_cores,
                    work_stealing: self.work_stealing,
                };
                let tel = Arc::new(ShardTelemetry::new(shards));
                let tel2 = Arc::clone(&tel);
                let join = std::thread::Builder::new()
                    .name("minidb-serve".to_owned())
                    .spawn(move || run_sharded(shared, cfg, tel2))
                    .expect("spawn server supervisor thread");
                (join, Some(tel))
            }
        };
        ServerHandle {
            listener,
            join: Some(join),
            counters,
            mode,
            telemetry,
            draining,
        }
    }
}

/// Legacy entry point for the server, kept as a one-release shim over
/// [`Server::builder`].
pub struct Server {
    workers: usize,
    tracer: Option<Tracer>,
    faults: Arc<FaultRegistry>,
}

impl Default for Server {
    fn default() -> Self {
        #[allow(deprecated)]
        Self::new()
    }
}

impl Server {
    /// Configures a server. See [`ServerBuilder`].
    pub fn builder() -> ServerBuilder {
        ServerBuilder::new()
    }

    /// A thread-per-connection server with two accept workers.
    #[deprecated(note = "use Server::builder().transport(..).mode(..).serve(..)")]
    pub fn new() -> Self {
        Server {
            workers: 2,
            tracer: None,
            faults: Arc::new(FaultRegistry::disabled()),
        }
    }

    /// Number of accept workers = maximum concurrently served connections.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[deprecated(note = "use ServerMode::ThreadPerConn { workers } on the builder")]
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n > 0, "a server needs at least one worker");
        self.workers = n;
        self
    }

    /// Records server-side spans into `tracer`.
    #[deprecated(note = "use ServerBuilder::traced")]
    pub fn traced(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Arms the server-side fault sites.
    #[deprecated(note = "use ServerBuilder::with_faults")]
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = faults;
        self
    }

    /// Starts serving `listener` in thread-per-connection mode.
    #[deprecated(note = "use Server::builder().transport(listener).serve(factory)")]
    pub fn serve(
        self,
        listener: Arc<dyn Listener>,
        factory: impl Fn() -> Session + Send + Sync + 'static,
    ) -> ServerHandle {
        let mut b = Server::builder()
            .transport(listener)
            .mode(ServerMode::ThreadPerConn {
                workers: self.workers,
            })
            .with_faults(self.faults);
        if let Some(t) = self.tracer.as_ref() {
            b = b.traced(t);
        }
        b.serve(factory)
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// its workers.
pub struct ServerHandle {
    listener: Arc<dyn Listener>,
    join: Option<std::thread::JoinHandle<()>>,
    counters: Arc<Counters>,
    mode: ServerMode,
    telemetry: Option<Arc<ShardTelemetry>>,
    draining: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Stops accepting new connections; in-flight connections finish their
    /// current request loop. Idempotent.
    pub fn shutdown(&self) {
        self.listener.shutdown();
    }

    /// Enters drain mode: existing connections stay up, but every new
    /// query is answered `Rejected { code: ShuttingDown }` — clients get a
    /// typed signal to fail over instead of hanging on a dying server.
    /// Call [`ServerHandle::shutdown`] afterwards to stop accepting.
    /// Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Shuts down and waits for every worker to exit, returning final
    /// counters.
    pub fn wait(mut self) -> ServerStats {
        self.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        self.stats()
    }

    /// Current counters (live; monotonic).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            disconnects: self.counters.disconnects.load(Ordering::Relaxed),
            worker_panics: self.counters.worker_panics.load(Ordering::Relaxed),
            rejected_overload: self.counters.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.counters.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.counters.rejected_shutdown.load(Ordering::Relaxed),
            cancelled_queries: self.counters.cancelled_queries.load(Ordering::Relaxed),
        }
    }

    /// The engine this server runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// Connections placed on each shard so far (sharded mode only) — the
    /// observable witness that placement is deterministic.
    pub fn shard_conns(&self) -> Option<Vec<u64>> {
        self.telemetry.as_ref().map(|t| {
            t.per_shard_conns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect()
        })
    }

    /// Queries that ran with parallelism borrowed from idle shards
    /// (sharded mode; 0 otherwise).
    pub fn steal_borrows(&self) -> u64 {
        self.telemetry
            .as_ref()
            .map_or(0, |t| t.steal_borrows.load(Ordering::Relaxed))
    }

    /// Connections served on the blocking fallback path because their
    /// transport has no readiness support (sharded mode; 0 otherwise).
    pub fn compat_conns(&self) -> u64 {
        self.telemetry
            .as_ref()
            .map_or(0, |t| t.compat_conns.load(Ordering::Relaxed))
    }

    /// High-water mark of any connection's write queue, in frames (sharded
    /// mode; 0 otherwise). Bounded by the configured `queue_depth` plus the
    /// header/footer frames — the backpressure invariant tests assert.
    pub fn write_queue_peak(&self) -> u64 {
        self.telemetry
            .as_ref()
            .map_or(0, |t| t.write_queue_peak.load(Ordering::Relaxed))
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

pub(crate) struct Shared {
    pub(crate) listener: Arc<dyn Listener>,
    pub(crate) factory: Box<SessionFactory>,
    pub(crate) tracer: Option<Tracer>,
    pub(crate) faults: Arc<FaultRegistry>,
    pub(crate) counters: Arc<Counters>,
    pub(crate) next_conn: AtomicU64,
    pub(crate) admission: Admission,
    pub(crate) draining: Arc<AtomicBool>,
    /// Queries executing right now (thread-per-conn's admission gauge;
    /// the sharded engine bounds its per-shard run queues instead).
    pub(crate) inflight: AtomicU64,
    /// Connections currently alive, for the `max_conns` bound.
    pub(crate) live_conns: AtomicU64,
}

impl Shared {
    /// The admission verdict for one query, shared by both engines:
    /// the `net.admit` fault site first (an I/O-failure verdict forces a
    /// rejection), then drain mode, then the caller-measured load against
    /// the in-flight budget. `None` admits.
    pub(crate) fn admit_query(
        &self,
        conn_id: u64,
        query_ordinal: u32,
        admitted_now: u64,
    ) -> Option<RejectCode> {
        self.faults.fire("net.admit", conn_id, query_ordinal);
        if self.faults.io_fails("net.admit", conn_id) {
            return Some(RejectCode::Overloaded);
        }
        if self.draining.load(Ordering::Acquire) {
            return Some(RejectCode::ShuttingDown);
        }
        let budget = self.admission.max_inflight as u64;
        if budget > 0 && admitted_now >= budget {
            return Some(RejectCode::Overloaded);
        }
        None
    }

    /// The deadline a query runs under: the client's header value wins,
    /// else the server's default; `0` means none.
    pub(crate) fn effective_deadline_ms(&self, frame_deadline_ms: u32) -> u32 {
        if frame_deadline_ms > 0 {
            frame_deadline_ms
        } else {
            self.admission.default_deadline_ms
        }
    }

    fn accept_loop(&self) {
        loop {
            let transport = match self.listener.accept() {
                Ok(t) => t,
                Err(_) => return, // shutdown (or listener failure): worker exits
            };
            let conn_id = self.next_conn.fetch_add(1, Ordering::Relaxed);
            self.faults.fire("net.accept", conn_id, 1);
            if self.faults.io_fails("net.accept", conn_id) {
                // Injected accept failure: drop the connection on the
                // floor, exactly like a listener backlog overflow would.
                self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.counters.connections.fetch_add(1, Ordering::Relaxed);
            self.live_conns.fetch_add(1, Ordering::AcqRel);
            self.serve_blocking(transport, conn_id);
            self.live_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Serves one connection on the calling thread with blocking I/O and
    /// full containment — the thread-per-conn data path, also used by the
    /// sharded engine's fallback for readiness-incapable transports.
    pub(crate) fn serve_blocking(&self, transport: Box<dyn Transport>, conn_id: u64) {
        let mut io = FramedIo::new(transport, Arc::clone(&self.faults), conn_id);
        // A panic while serving (injected engine fault, engine bug)
        // must not take the serving thread down with it.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.serve_connection(&mut io)));
        match outcome {
            Ok(true) => {}
            Ok(false) => {
                self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Serves one connection to completion. Returns `true` on a clean
    /// `Bye`, `false` on transport error / protocol violation.
    fn serve_connection(&self, io: &mut FramedIo) -> bool {
        // Handshake first: refuse version mismatches before any query.
        match io.recv() {
            Ok(Frame::Hello {
                version: PROTOCOL_VERSION,
            }) => {}
            Ok(Frame::Hello { version }) => {
                let _ = io.send(&Frame::Error(DbError::Io(format!(
                    "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                ))));
                return false;
            }
            _ => return false,
        }
        // Connection-bound admission: a `Hello` past the bound gets a
        // typed rejection instead of a place in line.
        let max_conns = self.admission.max_conns as u64;
        if max_conns > 0 && self.live_conns.load(Ordering::Acquire) > max_conns {
            self.counters.count_reject(RejectCode::Overloaded);
            let _ = io.send(&Frame::Rejected {
                code: RejectCode::Overloaded,
                retry_after_ms: self.admission.retry_after_ms,
            });
            return false;
        }
        if io
            .send(&Frame::HelloOk {
                version: PROTOCOL_VERSION,
            })
            .is_err()
        {
            return false;
        }

        let mut session = (self.factory)();
        let mut query_ordinal: u32 = 0;
        loop {
            match io.recv() {
                Ok(Frame::Query {
                    trace_parent,
                    deadline_ms,
                    sql,
                }) => {
                    self.counters.queries.fetch_add(1, Ordering::Relaxed);
                    query_ordinal += 1;
                    if !self.answer_query(
                        io,
                        &mut session,
                        trace_parent,
                        deadline_ms,
                        query_ordinal,
                        &sql,
                    ) {
                        return false;
                    }
                }
                Ok(Frame::Bye) => return true,
                Ok(_) => {
                    let _ = io.send(&Frame::Error(DbError::Io(
                        "protocol violation: expected Query or Bye".to_owned(),
                    )));
                    return false;
                }
                Err(_) => return false,
            }
        }
    }

    /// Runs one query and streams the response. Returns `false` if the
    /// transport died mid-response.
    #[allow(clippy::too_many_arguments)]
    fn answer_query(
        &self,
        io: &mut FramedIo,
        session: &mut Session,
        trace_parent: u64,
        deadline_ms: u32,
        query_ordinal: u32,
        sql: &str,
    ) -> bool {
        // Admission first: shed fast, before any engine work. The gauge is
        // incremented optimistically so concurrent workers race for the
        // budget rather than past it.
        let admitted_now = self.inflight.fetch_add(1, Ordering::AcqRel);
        if let Some(code) = self.admit_query(io.conn_id(), query_ordinal, admitted_now) {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.counters.count_reject(code);
            return io
                .send(&Frame::Rejected {
                    code,
                    retry_after_ms: self.admission.retry_after_ms,
                })
                .is_ok();
        }

        // Parent the server's span under the client's span id from the
        // frame header; 0 means the client wasn't tracing.
        let mut serve_span = self.tracer.as_ref().map(|t| {
            if trace_parent != 0 {
                t.span_with_parent("net.serve", SpanId(trace_parent))
            } else {
                t.span("net.serve")
            }
        });
        if let Some(g) = serve_span.as_mut() {
            g.attr("conn", io.conn_id() as i64);
        }

        let effective_deadline = self.effective_deadline_ms(deadline_ms);
        let ran = catch_unwind(AssertUnwindSafe(|| {
            let mut query = session.query(sql);
            if let Some(t) = self.tracer.as_ref() {
                query = query.traced(t);
            }
            if effective_deadline > 0 {
                query = query.cancel(CancelToken::with_deadline_ms(f64::from(effective_deadline)));
            }
            query.run()
        }));
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        let result = match ran {
            Ok(r) => r,
            Err(payload) => {
                // Contained engine panic: the client gets an error frame,
                // the connection and the worker live on.
                self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                let msg = perfeval_fault::panic_message(payload.as_ref());
                return io
                    .send(&Frame::Error(DbError::Io(format!(
                        "server panic while executing: {msg}"
                    ))))
                    .is_ok();
            }
        };

        match result {
            Err(DbError::Cancelled(_)) if effective_deadline > 0 => {
                // The deadline cut the query short: partial work is
                // discarded (bit-safely — no partial result escapes) and
                // the client gets the typed rejection, not a DbError.
                self.counters
                    .cancelled_queries
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.count_reject(RejectCode::DeadlineExceeded);
                io.send(&Frame::Rejected {
                    code: RejectCode::DeadlineExceeded,
                    retry_after_ms: self.admission.retry_after_ms,
                })
                .is_ok()
            }
            Err(e) => {
                if matches!(e, DbError::Cancelled(_)) {
                    self.counters
                        .cancelled_queries
                        .fetch_add(1, Ordering::Relaxed);
                }
                io.send(&Frame::Error(e)).is_ok()
            }
            Ok(r) => {
                use perfeval_measure::Phase;
                let rows_total = r.rows.len() as u64;
                let mut footer = Footer {
                    parse_ms: r.phases.phase(Phase::Parse).unwrap_or(0.0),
                    optimize_ms: r.phases.phase(Phase::Optimize).unwrap_or(0.0),
                    execute_ms: r.phases.phase(Phase::Execute).unwrap_or(0.0),
                    execute_cpu_ms: r.execute_cpu_ms,
                    serialize_ms: 0.0,
                    rows: rows_total,
                };
                // Serialize + stream. The timer covers encode AND write:
                // writes into a full bounded buffer block, and that wait is
                // genuine serialize/transfer time, not server compute.
                let t0 = Instant::now();
                if io
                    .send(&Frame::ResultHeader {
                        columns: r.column_names,
                    })
                    .is_err()
                {
                    return false;
                }
                let mut rows = r.rows;
                while !rows.is_empty() {
                    let rest = rows.split_off(rows.len().min(ROWS_PER_BATCH));
                    let batch = std::mem::replace(&mut rows, rest);
                    if io.send(&Frame::RowBatch { rows: batch }).is_err() {
                        return false;
                    }
                }
                footer.serialize_ms = t0.elapsed().as_secs_f64() * 1e3;
                if let Some(g) = serve_span.as_mut() {
                    g.attr("rows", rows_total as i64)
                        .attr("serialize_ms", footer.serialize_ms);
                }
                io.send(&Frame::Done(footer)).is_ok()
            }
        }
    }
}
