//! Transports: the byte pipes frames travel over.
//!
//! Two implementations sit behind the same pair of traits:
//!
//! * **TCP** ([`TcpEndpoint`] / `std::net::TcpStream`) — a real socket,
//!   with real syscalls, kernel buffers, and Nagle disabled. This is the
//!   transport `exp_e21_client_server` measures.
//! * **Loopback** ([`LoopbackEndpoint`]) — a zero-syscall in-process duplex
//!   pipe: two bounded byte rings guarded by mutex + condvar. Deterministic
//!   (no kernel scheduling in the data path), and its bounded capacity is
//!   *honest backpressure*: a writer outrunning its reader blocks, exactly
//!   like a full socket send buffer.
//!
//! The server accepts connections through [`Listener`] and never learns
//! which transport it is on; the protocol and timing decomposition are
//! transport-agnostic by construction.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::poll::{RawFd, ShimHandle};

/// How a transport participates in the sharded server's readiness loop.
pub enum EventSource {
    /// A kernel file descriptor: register with epoll. The transport has
    /// already been switched to nonblocking mode.
    Fd(RawFd),
    /// A user-space source: the transport's peer will poke the
    /// [`ShimHandle`] it was given in [`Transport::event_setup`].
    Shim,
    /// No readiness support — the sharded server falls back to a dedicated
    /// blocking thread for this connection (the thread-per-conn path).
    Blocking,
}

fn nonblocking_unsupported() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "transport has no nonblocking mode (EventSource::Blocking)",
    )
}

/// A bidirectional byte stream a connection runs over.
///
/// Nothing beyond `Read + Write` is required of the data path — framing,
/// faults, and accounting live in [`crate::frame::FramedIo`]. Transports
/// that can signal readiness additionally implement [`Transport::event_setup`]
/// and the `try_read`/`try_write` nonblocking pair, which lets the sharded
/// server multiplex them onto one thread; everything else is served on a
/// dedicated thread via the [`EventSource::Blocking`] default.
pub trait Transport: Read + Write + Send {
    /// One-line description ("tcp 127.0.0.1:5432", "loopback") for
    /// measurement documentation.
    fn describe(&self) -> String;

    /// Switches the transport into event-driven mode, wiring its readiness
    /// notifications into `shim` (user-space sources) or returning the fd
    /// to register with epoll. The default declines: `Blocking`.
    ///
    /// # Errors
    /// Propagates failures flipping the underlying handle to nonblocking.
    fn event_setup(&mut self, _shim: &ShimHandle) -> io::Result<EventSource> {
        Ok(EventSource::Blocking)
    }

    /// Undoes [`Transport::event_setup`] so blocking `Read`/`Write` work
    /// again (used when fd registration fails and the connection falls back
    /// to a dedicated thread).
    fn event_teardown(&mut self) {}

    /// Nonblocking read: `Ok(0)` is EOF, `WouldBlock` means no bytes now.
    /// Only supported after a successful non-`Blocking` `event_setup`.
    ///
    /// # Errors
    /// `WouldBlock` when idle; `Unsupported` from the default impl.
    fn try_read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
        Err(nonblocking_unsupported())
    }

    /// Nonblocking write; `WouldBlock` means the peer's buffer is full.
    /// Only supported after a successful non-`Blocking` `event_setup`.
    ///
    /// # Errors
    /// `WouldBlock` when full; `Unsupported` from the default impl.
    fn try_write(&mut self, _buf: &[u8]) -> io::Result<usize> {
        Err(nonblocking_unsupported())
    }
}

/// The server side of a transport: blocks in `accept` until a client
/// connects (or the endpoint is shut down).
pub trait Listener: Send + Sync {
    /// Waits for the next inbound connection.
    ///
    /// # Errors
    /// Returns an error after [`Listener::shutdown`], or when the
    /// underlying endpoint fails.
    fn accept(&self) -> io::Result<Box<dyn Transport>>;

    /// Unblocks pending and future `accept` calls; they return errors from
    /// now on. Idempotent.
    fn shutdown(&self);

    /// One-line description for logs and reports.
    fn describe(&self) -> String;
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// A TCP stream transport (Nagle disabled — small result frames must not
/// wait 40 ms for an ACK; latency is part of what E21 measures).
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
}

impl TcpTransport {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_owned());
        Ok(TcpTransport { stream, peer })
    }

    /// Connects to a server at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        TcpTransport::new(TcpStream::connect(addr)?)
    }
}

impl Read for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Transport for TcpTransport {
    fn describe(&self) -> String {
        format!("tcp {}", self.peer)
    }

    #[cfg(unix)]
    fn event_setup(&mut self, _shim: &ShimHandle) -> io::Result<EventSource> {
        use std::os::fd::AsRawFd;
        self.stream.set_nonblocking(true)?;
        Ok(EventSource::Fd(self.stream.as_raw_fd()))
    }

    #[cfg(unix)]
    fn event_teardown(&mut self) {
        let _ = self.stream.set_nonblocking(false);
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }
}

/// A TCP listening endpoint. Bind to port 0 to get an ephemeral port;
/// [`TcpEndpoint::local_addr`] reports what the OS assigned.
pub struct TcpEndpoint {
    listener: TcpListener,
    closed: AtomicBool,
}

impl TcpEndpoint {
    /// Binds a listening socket.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Arc<Self>> {
        Ok(Arc::new(TcpEndpoint {
            listener: TcpListener::bind(addr)?,
            closed: AtomicBool::new(false),
        }))
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Listener for TcpEndpoint {
    fn accept(&self) -> io::Result<Box<dyn Transport>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "endpoint shut down",
            ));
        }
        let (stream, _) = self.listener.accept()?;
        // A shutdown wake-up connection is not a client; re-check the
        // flag after every accept. `shutdown` sends only ONE wake-up, so
        // cascade it: each woken acceptor wakes the next parked one
        // before exiting, and any number of workers drains.
        if self.closed.load(Ordering::Acquire) {
            if let Ok(addr) = self.listener.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "endpoint shut down",
            ));
        }
        Ok(Box::new(TcpTransport::new(stream)?))
    }

    fn shutdown(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // `TcpListener::accept` has no cancellation; wake any blocked
        // acceptor with a throwaway connection to ourselves.
        if let Ok(addr) = self.listener.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    fn describe(&self) -> String {
        match self.listener.local_addr() {
            Ok(a) => format!("tcp listener {a}"),
            Err(_) => "tcp listener".to_owned(),
        }
    }
}

// ---------------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------------

/// One direction of the in-process duplex pipe: a bounded byte ring.
///
/// Writers block while the ring is full (backpressure), readers block while
/// it is empty. Closing either end wakes both sides: a closed write end
/// gives readers clean EOF (`Ok(0)`), a closed read end gives writers
/// `BrokenPipe` — the same contract a socket has.
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

struct PipeState {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
    /// Poked whenever data arrives (or the write end closes): the sharded
    /// server's readiness shim for this pipe's *reader*.
    on_readable: Option<ShimHandle>,
    /// Poked whenever space frees (or the read end closes): the shim for
    /// this pipe's *writer*.
    on_writable: Option<ShimHandle>,
}

impl Pipe {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                write_closed: false,
                read_closed: false,
                on_readable: None,
                on_writable: None,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        })
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut s = self.state.lock().unwrap();
        loop {
            if !s.buf.is_empty() {
                let n = out.len().min(s.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = s.buf.pop_front().expect("n <= len");
                }
                self.writable.notify_all();
                let watcher = s.on_writable.clone();
                drop(s);
                if let Some(w) = watcher {
                    w.writable();
                }
                return Ok(n);
            }
            if s.write_closed {
                return Ok(0); // clean EOF
            }
            s = self.readable.wait(s).unwrap();
        }
    }

    fn write(&self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut s = self.state.lock().unwrap();
        loop {
            if s.read_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "loopback peer closed",
                ));
            }
            let space = self.capacity.saturating_sub(s.buf.len());
            if space > 0 {
                let n = data.len().min(space);
                s.buf.extend(&data[..n]);
                self.readable.notify_all();
                let watcher = s.on_readable.clone();
                drop(s);
                if let Some(w) = watcher {
                    w.readable();
                }
                return Ok(n);
            }
            // Full: this wait IS the backpressure — the writer cannot
            // outrun the reader by more than `capacity` bytes.
            s = self.writable.wait(s).unwrap();
        }
    }

    /// Nonblocking read for the sharded server: `WouldBlock` while empty,
    /// clean EOF once the write end closes.
    fn read_nonblocking(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut s = self.state.lock().unwrap();
        if s.buf.is_empty() {
            return if s.write_closed {
                Ok(0)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "pipe empty"))
            };
        }
        let n = out.len().min(s.buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = s.buf.pop_front().expect("n <= len");
        }
        self.writable.notify_all();
        let watcher = s.on_writable.clone();
        drop(s);
        if let Some(w) = watcher {
            w.writable();
        }
        Ok(n)
    }

    /// Nonblocking write: `WouldBlock` while the ring is full — the
    /// sharded server parks the frame in its bounded write queue instead
    /// of blocking a whole shard on one slow reader.
    fn write_nonblocking(&self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut s = self.state.lock().unwrap();
        if s.read_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "loopback peer closed",
            ));
        }
        let space = self.capacity.saturating_sub(s.buf.len());
        if space == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "pipe full"));
        }
        let n = data.len().min(space);
        s.buf.extend(&data[..n]);
        self.readable.notify_all();
        let watcher = s.on_readable.clone();
        drop(s);
        if let Some(w) = watcher {
            w.readable();
        }
        Ok(n)
    }

    fn close_write(&self) {
        let mut s = self.state.lock().unwrap();
        s.write_closed = true;
        self.readable.notify_all();
        let watcher = s.on_readable.clone();
        drop(s);
        // EOF is a readable event (read returns Ok(0)).
        if let Some(w) = watcher {
            w.readable();
        }
    }

    fn close_read(&self) {
        let mut s = self.state.lock().unwrap();
        s.read_closed = true;
        self.writable.notify_all();
        let watcher = s.on_writable.clone();
        drop(s);
        // BrokenPipe surfaces on the next write attempt.
        if let Some(w) = watcher {
            w.writable();
        }
    }

    /// Installs the reader-side readiness watcher; returns whether the pipe
    /// is *currently* readable so the caller can prime its event state.
    fn watch_readable(&self, shim: ShimHandle) -> bool {
        let mut s = self.state.lock().unwrap();
        let ready = !s.buf.is_empty() || s.write_closed;
        s.on_readable = Some(shim);
        ready
    }

    /// Installs the writer-side readiness watcher; returns whether the pipe
    /// currently has space (or would fail fast).
    fn watch_writable(&self, shim: ShimHandle) -> bool {
        let mut s = self.state.lock().unwrap();
        let ready = s.buf.len() < self.capacity || s.read_closed;
        s.on_writable = Some(shim);
        ready
    }

    /// Bytes currently buffered (for tests asserting boundedness).
    fn buffered(&self) -> usize {
        self.state.lock().unwrap().buf.len()
    }
}

/// One end of a loopback connection: reads from one pipe, writes to the
/// other. Dropping it closes both directions it owns, so the peer observes
/// EOF / broken pipe like a closed socket.
pub struct LoopbackConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    label: &'static str,
}

impl LoopbackConn {
    /// Creates a connected pair `(client, server)` with `capacity` bytes of
    /// buffer per direction.
    pub fn pair(capacity: usize) -> (LoopbackConn, LoopbackConn) {
        assert!(capacity > 0, "pipe capacity must be positive");
        let c2s = Pipe::new(capacity);
        let s2c = Pipe::new(capacity);
        (
            LoopbackConn {
                rx: Arc::clone(&s2c),
                tx: Arc::clone(&c2s),
                label: "loopback-client",
            },
            LoopbackConn {
                rx: c2s,
                tx: s2c,
                label: "loopback-server",
            },
        )
    }

    /// Bytes currently buffered in this end's *outgoing* direction — never
    /// exceeds the pair's capacity, which is the backpressure invariant
    /// tests assert.
    pub fn outgoing_buffered(&self) -> usize {
        self.tx.buffered()
    }
}

impl Read for LoopbackConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for LoopbackConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for LoopbackConn {
    fn describe(&self) -> String {
        self.label.to_owned()
    }

    fn event_setup(&mut self, shim: &ShimHandle) -> io::Result<EventSource> {
        // Data arriving on rx (peer writes) makes us readable; space
        // freeing in tx (peer reads) makes us writable. Prime whatever is
        // already true — the watchers only fire on *transitions* after
        // this point.
        if self.rx.watch_readable(shim.clone()) {
            shim.readable();
        }
        if self.tx.watch_writable(shim.clone()) {
            shim.writable();
        }
        Ok(EventSource::Shim)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read_nonblocking(buf)
    }

    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write_nonblocking(buf)
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        self.tx.close_write();
        self.rx.close_read();
    }
}

/// Default per-direction loopback buffer: small enough that a large result
/// set genuinely exercises backpressure, large enough not to syscall…
/// well, there are no syscalls — large enough not to context-switch per
/// frame.
pub const DEFAULT_LOOPBACK_CAPACITY: usize = 64 * 1024;

struct LoopbackShared {
    queue: Mutex<VecDeque<LoopbackConn>>,
    pending: Condvar,
    closed: AtomicBool,
    capacity: usize,
}

/// The in-process listening endpoint. [`LoopbackEndpoint::connector`]
/// hands out cloneable client-side dialers.
pub struct LoopbackEndpoint {
    shared: Arc<LoopbackShared>,
}

/// The client side of a [`LoopbackEndpoint`]: `connect()` yields a new
/// connection whose server half is queued for `accept`.
#[derive(Clone)]
pub struct LoopbackConnector {
    shared: Arc<LoopbackShared>,
}

impl LoopbackEndpoint {
    /// A loopback endpoint with the default per-direction buffer capacity.
    pub fn new() -> Arc<Self> {
        Self::with_capacity(DEFAULT_LOOPBACK_CAPACITY)
    }

    /// A loopback endpoint with an explicit per-direction buffer capacity
    /// (small capacities make backpressure observable in tests).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(LoopbackEndpoint {
            shared: Arc::new(LoopbackShared {
                queue: Mutex::new(VecDeque::new()),
                pending: Condvar::new(),
                closed: AtomicBool::new(false),
                capacity,
            }),
        })
    }

    /// A dialer for this endpoint (cloneable, usable from any thread).
    pub fn connector(&self) -> LoopbackConnector {
        LoopbackConnector {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl LoopbackConnector {
    /// Opens a new connection to the endpoint.
    ///
    /// # Errors
    /// Fails with `NotConnected` if the endpoint has shut down.
    pub fn connect(&self) -> io::Result<LoopbackConn> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "endpoint shut down",
            ));
        }
        let (client, server) = LoopbackConn::pair(self.shared.capacity);
        self.shared.queue.lock().unwrap().push_back(server);
        self.shared.pending.notify_one();
        Ok(client)
    }
}

impl Listener for LoopbackEndpoint {
    fn accept(&self) -> io::Result<Box<dyn Transport>> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(conn) = q.pop_front() {
                return Ok(Box::new(conn));
            }
            if self.shared.closed.load(Ordering::Acquire) {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "endpoint shut down",
                ));
            }
            q = self.shared.pending.wait(q).unwrap();
        }
    }

    fn shutdown(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.pending.notify_all();
    }

    fn describe(&self) -> String {
        format!("loopback listener ({} B/direction)", self.shared.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrips_bytes() {
        let (mut a, mut b) = LoopbackConn::pair(16);
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        b.write_all(b"ok").unwrap();
        let mut buf2 = [0u8; 2];
        a.read_exact(&mut buf2).unwrap();
        assert_eq!(&buf2, b"ok");
    }

    #[test]
    fn loopback_bounded_write_blocks_until_reader_drains() {
        let (mut a, mut b) = LoopbackConn::pair(8);
        let writer = std::thread::spawn(move || {
            // 32 bytes through an 8-byte pipe: must block and resume.
            a.write_all(&[7u8; 32]).unwrap();
            a.outgoing_buffered() // <= 8 by construction
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut out = vec![0u8; 32];
        b.read_exact(&mut out).unwrap();
        assert_eq!(out, vec![7u8; 32]);
        let buffered = writer.join().unwrap();
        assert!(buffered <= 8, "outgoing buffer stayed bounded: {buffered}");
    }

    #[test]
    fn loopback_peer_drop_is_eof_for_reader_and_broken_pipe_for_writer() {
        let (a, mut b) = LoopbackConn::pair(16);
        drop(a);
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 0, "clean EOF");
        let err = b.write_all(b"late").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn loopback_endpoint_accepts_queued_connections() {
        let ep = LoopbackEndpoint::with_capacity(64);
        let dial = ep.connector();
        let mut client = dial.connect().unwrap();
        let mut server = ep.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn loopback_shutdown_unblocks_accept_and_refuses_dials() {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let ep2 = Arc::clone(&ep);
        let acceptor = std::thread::spawn(move || ep2.accept().map(|_| ()));
        std::thread::sleep(std::time::Duration::from_millis(10));
        ep.shutdown();
        assert!(
            acceptor.join().unwrap().is_err(),
            "accept unblocked with error"
        );
        assert!(dial.connect().is_err(), "dialing a closed endpoint fails");
    }

    #[test]
    fn tcp_shutdown_unblocks_every_parked_acceptor() {
        // Regression: shutdown's single self-connect wake must cascade so
        // N parked accept workers all exit, not just one.
        let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let acceptors: Vec<_> = (0..4)
            .map(|_| {
                let ep = Arc::clone(&ep);
                std::thread::spawn(move || ep.accept().map(|_| ()))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        ep.shutdown();
        for a in acceptors {
            assert!(a.join().unwrap().is_err(), "every acceptor unblocked");
        }
    }

    #[test]
    fn tcp_endpoint_accepts_and_shuts_down() {
        let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = ep.local_addr().unwrap();
        let ep2 = Arc::clone(&ep);
        let acceptor = std::thread::spawn(move || {
            let mut conn = ep2.accept().unwrap();
            let mut buf = [0u8; 3];
            conn.read_exact(&mut buf).unwrap();
            buf
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.write_all(b"abc").unwrap();
        assert_eq!(&acceptor.join().unwrap(), b"abc");
        assert!(client.describe().starts_with("tcp "));

        // Shutdown unblocks a parked acceptor.
        let ep3 = Arc::clone(&ep);
        let parked = std::thread::spawn(move || ep3.accept().map(|_| ()));
        std::thread::sleep(std::time::Duration::from_millis(10));
        ep.shutdown();
        assert!(parked.join().unwrap().is_err());
    }
}
