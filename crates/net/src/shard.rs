//! The sharded server core: an event-driven, shared-nothing engine.
//!
//! One acceptor (the supervisor thread) places each connection on a shard
//! by a **pure function** of `(placement_seed, conn_id)` — see
//! [`crate::poll::shard_for`] — so the conn→shard map is a declared design
//! factor, reproducible across runs regardless of arrival timing. Each
//! shard worker owns its connections outright: sessions, read buffers, and
//! write queues are single-threaded state touched only by that shard, so
//! there is no lock on the query path (shared-nothing by construction, the
//! property the thread-per-connection mode only approximates statistically).
//!
//! A shard multiplexes its connections with a [`Poll`] readiness loop:
//! kernel sockets via epoll, loopback pipes via the zero-syscall shim.
//! Responses stream through a **bounded per-connection write queue** (at
//! most `queue_depth` encoded frames); when a slow reader fills it, the
//! remaining batches wait *unencoded* in the pending response and the shard
//! moves on to other connections — backpressure stalls one connection,
//! never the shard. The stall is charged to the response's `serialize_ms`
//! (stamped when the last batch drains, exactly the window the blocking
//! server charges), so the timing decomposition is mode-independent.
//!
//! Cross-shard work stealing reuses the `crates/pool` morsel machinery
//! instead of migrating connections: when a shard starts a query while
//! other shards sit idle in their readiness waits, it runs the query with
//! `parallelism = 1 + idle_shards`, borrowing the idle cores through the
//! engine's morsel-parallel operators. PR 3 guarantees parallel OPT is
//! bit-identical to serial for any thread count, so stealing changes tail
//! latency, never answers.
//!
//! Transports that cannot signal readiness ([`EventSource::Blocking`])
//! fall back to a dedicated thread running the same blocking
//! `serve_connection` loop as thread-per-conn mode — containment and
//! counters included — so exotic test transports keep working.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use minidb::{DbError, Value};
use perfeval_trace::{SpanGuard, SpanId};

use minidb::CancelToken;

use crate::frame::{Footer, Frame, RejectCode, MAX_FRAME_LEN, PROTOCOL_VERSION, ROWS_PER_BATCH};
use crate::poll::{pin_current_thread, shard_for, Interest, Poll, RawFd};
use crate::server::Shared;
use crate::transport::{EventSource, Transport};

/// Sharded-mode knobs, all declared design factors (set on the builder).
#[derive(Clone, Debug)]
pub(crate) struct ShardConfig {
    pub shards: usize,
    pub queue_depth: usize,
    pub placement_seed: u64,
    pub pin_cores: bool,
    pub work_stealing: bool,
}

/// Live sharded-core telemetry, surfaced through `ServerHandle`.
#[derive(Debug)]
pub(crate) struct ShardTelemetry {
    /// Connections placed on each shard (the determinism test's witness).
    pub per_shard_conns: Vec<AtomicU64>,
    /// Queries that ran with parallelism borrowed from idle shards.
    pub steal_borrows: AtomicU64,
    /// Connections served on the blocking fallback path.
    pub compat_conns: AtomicU64,
    /// High-water mark of any connection's write queue, in frames.
    pub write_queue_peak: AtomicU64,
    /// Shards currently parked in their readiness wait.
    pub idle_shards: AtomicUsize,
    /// Set once the acceptor exits; shards drain and stop.
    pub shutdown: AtomicBool,
}

impl ShardTelemetry {
    pub(crate) fn new(shards: usize) -> Self {
        ShardTelemetry {
            per_shard_conns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            steal_borrows: AtomicU64::new(0),
            compat_conns: AtomicU64::new(0),
            write_queue_peak: AtomicU64::new(0),
            idle_shards: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        }
    }
}

/// The acceptor→shard handoff: injected connections plus the wake channel.
struct ShardQueue {
    poll: Poll,
    inject: Mutex<Vec<(u64, Box<dyn Transport>)>>,
}

/// Runs the sharded engine to completion on the calling (supervisor)
/// thread: spawns the shard workers, runs the acceptor inline, and joins
/// everything — including blocking-fallback connection threads — before
/// returning.
pub(crate) fn run_sharded(
    shared: std::sync::Arc<Shared>,
    cfg: ShardConfig,
    tel: std::sync::Arc<ShardTelemetry>,
) {
    let queues: Vec<ShardQueue> = (0..cfg.shards)
        .map(|_| ShardQueue {
            poll: Poll::new(),
            inject: Mutex::new(Vec::new()),
        })
        .collect();
    // Plain references with the scope's data lifetime, so shard workers and
    // compat threads can borrow them.
    let shared: &Shared = &shared;
    let cfg: &ShardConfig = &cfg;
    let tel: &ShardTelemetry = &tel;
    let queues: &[ShardQueue] = &queues;
    std::thread::scope(|scope| {
        for (index, queue) in queues.iter().enumerate() {
            std::thread::Builder::new()
                .name(format!("shard-{index}"))
                .spawn_scoped(scope, move || {
                    shard_main(index, shared, cfg, tel, queue, scope)
                })
                .expect("spawn shard worker");
        }
        // The supervisor thread doubles as the acceptor.
        accept_into_shards(shared, cfg, tel, queues);
        tel.shutdown.store(true, Ordering::Release);
        for q in queues {
            q.poll.wake();
        }
        // `scope` joins the shard workers and any compat threads here.
    });
}

fn accept_into_shards(
    shared: &Shared,
    cfg: &ShardConfig,
    tel: &ShardTelemetry,
    queues: &[ShardQueue],
) {
    loop {
        let transport = match shared.listener.accept() {
            Ok(t) => t,
            Err(_) => return, // shutdown (or listener failure)
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        // Same fault discipline as thread-per-conn: fire (delay/panic
        // actions), then the I/O verdict.
        shared.faults.fire("net.accept", conn_id, 1);
        if shared.faults.io_fails("net.accept", conn_id) {
            shared.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        shared.live_conns.fetch_add(1, Ordering::AcqRel);
        let shard = shard_for(cfg.placement_seed, conn_id, cfg.shards);
        tel.per_shard_conns[shard].fetch_add(1, Ordering::Relaxed);
        queues[shard]
            .inject
            .lock()
            .unwrap()
            .push((conn_id, transport));
        queues[shard].poll.wake();
    }
}

fn shard_main<'scope, 'env>(
    index: usize,
    shared: &'env Shared,
    cfg: &'env ShardConfig,
    tel: &'env ShardTelemetry,
    queue: &'env ShardQueue,
    scope: &'scope std::thread::Scope<'scope, 'env>,
) {
    if cfg.pin_cores {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        pin_current_thread(index % cores);
    }
    if let Some(t) = shared.tracer.as_ref() {
        t.label_thread(&format!("shard-{index}"));
    }
    let mut core = ShardCore {
        shared,
        cfg,
        tel,
        queue,
        conns: HashMap::new(),
        next_token: 0,
        pokes: Vec::new(),
        run_q: VecDeque::new(),
    };
    loop {
        // The idle gauge brackets only the wait: a shard counted here is
        // parked and its core is available for stealing.
        tel.idle_shards.fetch_add(1, Ordering::AcqRel);
        let (events, _woken) = queue.poll.wait(Some(Duration::from_millis(100)));
        tel.idle_shards.fetch_sub(1, Ordering::AcqRel);

        // Adopt connections the acceptor handed over.
        let injected: Vec<_> = std::mem::take(&mut *queue.inject.lock().unwrap());
        for (conn_id, transport) in injected {
            core.adopt(conn_id, transport, scope);
        }

        for (token, ready) in events {
            if ready.readable {
                core.guarded(token, |c, t| c.on_readable(t));
            }
            if ready.writable {
                core.guarded(token, |c, t| c.on_writable(t));
            }
        }
        // Self-pokes: connections whose response just drained re-examine
        // bytes that arrived while their reads were paused.
        while let Some(token) = core.pokes.pop() {
            core.guarded(token, |c, t| c.on_readable(t));
        }
        // Execute the admitted queries. Everything in the run queue got
        // there through the admission gate; a deadline that expired while
        // waiting is shed here without touching the engine.
        core.drain_run_queue();

        if tel.shutdown.load(Ordering::Acquire)
            && core.conns.is_empty()
            && queue.inject.lock().unwrap().is_empty()
        {
            return;
        }
    }
}

/// A response not yet fully handed to the transport: the already-executed
/// query's remaining row batches (unencoded — the *encoded* queue is what
/// is bounded), its footer, and the running serialize timer.
struct PendingResponse<'t> {
    batches: VecDeque<Vec<Vec<Value>>>,
    footer: Footer,
    t0: Instant,
    rows_total: u64,
    done_enqueued: bool,
    span: Option<SpanGuard<'t>>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    AwaitHello,
    Ready,
}

/// A query admitted past the shard's budget, waiting its turn in the run
/// queue. Its deadline keeps ticking while it waits — expiry in the queue
/// is shed *without* touching the engine.
struct QueuedQuery {
    token: usize,
    trace_parent: u64,
    /// Effective deadline (client header or server default); 0 = none.
    deadline_ms: u32,
    enqueued: Instant,
    sql: String,
}

struct ShardConn<'t> {
    conn_id: u64,
    transport: Box<dyn Transport>,
    fd: Option<RawFd>,
    state: ConnState,
    session: Option<minidb::Session>,
    inbuf: VecDeque<u8>,
    frames_read: u32,
    frames_written: u32,
    queries_seen: u32,
    write_q: VecDeque<Vec<u8>>,
    front_pos: usize,
    pending: Option<PendingResponse<'t>>,
    /// A query from this connection sits in the shard's run queue.
    queued: bool,
    close_after_flush: bool,
    interest: Interest,
}

impl ShardConn<'_> {
    /// Reads are paused while a query is queued or a response is in flight
    /// (or the connection is draining toward close) — the protocol is
    /// request-response, so new frames can wait in the transport until the
    /// response is out.
    fn reads_paused(&self) -> bool {
        self.pending.is_some() || self.queued || self.close_after_flush
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            read: !self.reads_paused(),
            write: !self.write_q.is_empty(),
        }
    }
}

struct ShardCore<'env> {
    shared: &'env Shared,
    cfg: &'env ShardConfig,
    tel: &'env ShardTelemetry,
    queue: &'env ShardQueue,
    conns: HashMap<usize, ShardConn<'env>>,
    next_token: usize,
    pokes: Vec<usize>,
    /// Admitted-but-unstarted queries; its length is what the admission
    /// budget (`Admission::max_inflight`, per shard) bounds.
    run_q: VecDeque<QueuedQuery>,
}

impl<'env> ShardCore<'env> {
    /// Runs one event handler with thread-per-conn-equivalent containment:
    /// a panic (injected wire fault, server bug outside the inner query
    /// guard) costs the connection, never the shard.
    fn guarded(&mut self, token: usize, f: impl FnOnce(&mut Self, usize)) {
        if catch_unwind(AssertUnwindSafe(|| f(&mut *self, token))).is_err() {
            self.shared
                .counters
                .worker_panics
                .fetch_add(1, Ordering::Relaxed);
            self.drop_conn(token, false);
        }
    }

    fn adopt<'scope>(
        &mut self,
        conn_id: u64,
        mut transport: Box<dyn Transport>,
        scope: &'scope std::thread::Scope<'scope, 'env>,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        let shim = self.queue.poll.shim(token);
        let fd = match transport.event_setup(&shim) {
            Ok(EventSource::Shim) => None,
            Ok(EventSource::Fd(fd)) => {
                match self.queue.poll.register_fd(fd, token, Interest::READ) {
                    Ok(()) => Some(fd),
                    Err(_) => {
                        // No epoll on this platform: blocking fallback.
                        transport.event_teardown();
                        self.serve_compat(conn_id, transport, scope);
                        return;
                    }
                }
            }
            Ok(EventSource::Blocking) | Err(_) => {
                self.serve_compat(conn_id, transport, scope);
                return;
            }
        };
        self.conns.insert(
            token,
            ShardConn {
                conn_id,
                transport,
                fd,
                state: ConnState::AwaitHello,
                session: None,
                inbuf: VecDeque::new(),
                frames_read: 0,
                frames_written: 0,
                queries_seen: 0,
                write_q: VecDeque::new(),
                front_pos: 0,
                pending: None,
                queued: false,
                close_after_flush: false,
                interest: Interest::READ,
            },
        );
    }

    /// Serves a readiness-incapable transport on a dedicated scoped thread
    /// — the thread-per-conn loop, with its containment and counters.
    fn serve_compat<'scope>(
        &self,
        conn_id: u64,
        transport: Box<dyn Transport>,
        scope: &'scope std::thread::Scope<'scope, 'env>,
    ) {
        self.tel.compat_conns.fetch_add(1, Ordering::Relaxed);
        let shared = self.shared;
        std::thread::Builder::new()
            .name(format!("shard-compat-{conn_id}"))
            .spawn_scoped(scope, move || {
                shared.serve_blocking(transport, conn_id);
                shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            })
            .expect("spawn compat connection thread");
    }

    fn drop_conn(&mut self, token: usize, clean: bool) {
        if let Some(conn) = self.conns.remove(&token) {
            if let Some(fd) = conn.fd {
                self.queue.poll.deregister_fd(fd);
            }
            self.shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            if !clean {
                self.shared
                    .counters
                    .disconnects
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Syncs a fd connection's epoll interest with what its state wants.
    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = conn.desired_interest();
        if let Some(fd) = conn.fd {
            if want != conn.interest {
                conn.interest = want;
                let _ = self.queue.poll.modify_fd(fd, token, want);
            }
        }
    }

    fn on_readable(&mut self, token: usize) {
        let mut saw_eof = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.reads_paused() {
                return; // stale event; reads resume when the response drains
            }
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.transport.try_read(&mut chunk) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => conn.inbuf.extend(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.drop_conn(token, false);
                        return;
                    }
                }
            }
        }
        self.process_frames(token);
        // EOF with no response in flight: the peer is gone. (EOF is sticky;
        // with a response pending it resurfaces on the post-drain poke.)
        if saw_eof {
            if let Some(conn) = self.conns.get(&token) {
                if conn.pending.is_none() && !conn.close_after_flush {
                    self.drop_conn(token, false);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    fn on_writable(&mut self, token: usize) {
        if !self.flush_writes(token) {
            return;
        }
        self.pump_response(token);
        // A draining close completes once the queue is empty.
        if let Some(conn) = self.conns.get(&token) {
            if conn.close_after_flush && conn.write_q.is_empty() {
                self.drop_conn(token, false);
                return;
            }
        }
        self.update_interest(token);
    }

    /// Parses and dispatches complete frames from the input buffer,
    /// stopping while a response is in flight.
    fn process_frames(&mut self, token: usize) {
        loop {
            let (conn_id, ordinal, body) = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.reads_paused() || conn.inbuf.len() < 4 {
                    break;
                }
                let mut len_buf = [0u8; 4];
                for (slot, b) in len_buf.iter_mut().zip(conn.inbuf.iter()) {
                    *slot = *b;
                }
                let len = u32::from_le_bytes(len_buf);
                if len == 0 || len > MAX_FRAME_LEN {
                    self.drop_conn(token, false);
                    return;
                }
                let total = 4 + len as usize;
                if conn.inbuf.len() < total {
                    break;
                }
                let body: Vec<u8> = conn.inbuf.drain(..total).skip(4).collect();
                conn.frames_read += 1;
                (conn.conn_id, conn.frames_read, body)
            };
            // Fault parity with `FramedIo::recv`: 1-based frame ordinal,
            // fired before the frame is acted on.
            self.shared.faults.fire("net.read", conn_id, ordinal);
            if self.shared.faults.io_fails("net.read", conn_id) {
                self.drop_conn(token, false);
                return;
            }
            let frame = match Frame::decode(&body) {
                Ok(f) => f,
                Err(_) => {
                    self.drop_conn(token, false);
                    return;
                }
            };
            self.dispatch(token, frame);
        }
        self.update_interest(token);
    }

    fn dispatch(&mut self, token: usize, frame: Frame) {
        let state = match self.conns.get(&token) {
            Some(c) => c.state,
            None => return,
        };
        match (state, frame) {
            (ConnState::AwaitHello, Frame::Hello { version }) => {
                if version != PROTOCOL_VERSION {
                    let msg = format!(
                        "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                    );
                    self.refuse(token, DbError::Io(msg));
                    return;
                }
                // Connection-bound admission: a `Hello` past the bound gets
                // a typed rejection instead of a place in line.
                let max_conns = self.shared.admission.max_conns as u64;
                if max_conns > 0 && self.shared.live_conns.load(Ordering::Acquire) > max_conns {
                    self.shared.counters.count_reject(RejectCode::Overloaded);
                    self.send_then_close(
                        token,
                        &Frame::Rejected {
                            code: RejectCode::Overloaded,
                            retry_after_ms: self.shared.admission.retry_after_ms,
                        },
                    );
                    return;
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Ready;
                    conn.session = Some((self.shared.factory)());
                }
                self.send_now(
                    token,
                    &Frame::HelloOk {
                        version: PROTOCOL_VERSION,
                    },
                );
            }
            (ConnState::AwaitHello, _) => {
                // Thread-per-conn treats a missing handshake as a dead
                // connection — no courtesy error frame.
                self.drop_conn(token, false);
            }
            (
                ConnState::Ready,
                Frame::Query {
                    trace_parent,
                    deadline_ms,
                    sql,
                },
            ) => {
                self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                let (conn_id, ordinal) = match self.conns.get_mut(&token) {
                    Some(conn) => {
                        conn.queries_seen += 1;
                        (conn.conn_id, conn.queries_seen)
                    }
                    None => return,
                };
                // Admission at frame-receipt time: the budget is the run
                // queue the shard has already committed to. Rejecting here
                // costs one frame encode — bounded, fast, engine untouched.
                if let Some(code) =
                    self.shared
                        .admit_query(conn_id, ordinal, self.run_q.len() as u64)
                {
                    self.shared.counters.count_reject(code);
                    self.send_reject(token, code);
                    return;
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.queued = true;
                }
                self.run_q.push_back(QueuedQuery {
                    token,
                    trace_parent,
                    deadline_ms: self.shared.effective_deadline_ms(deadline_ms),
                    enqueued: Instant::now(),
                    sql,
                });
            }
            (ConnState::Ready, Frame::Bye) => {
                self.drop_conn(token, true);
            }
            (ConnState::Ready, _) => {
                self.refuse(
                    token,
                    DbError::Io("protocol violation: expected Query or Bye".to_owned()),
                );
            }
        }
    }

    /// Enqueues one frame and flushes eagerly. Returns false if the
    /// connection died.
    fn send_now(&mut self, token: usize, frame: &Frame) -> bool {
        self.enqueue_frame(token, frame) && self.flush_writes(token)
    }

    /// Sends an error frame and closes once it has flushed — a refused
    /// connection still counts as a disconnect, like thread-per-conn.
    fn refuse(&mut self, token: usize, err: DbError) {
        self.send_then_close(token, &Frame::Error(err));
    }

    /// Sends one frame and closes the connection once it has flushed.
    fn send_then_close(&mut self, token: usize, frame: &Frame) {
        if !self.send_now(token, frame) {
            return;
        }
        let drained = match self.conns.get_mut(&token) {
            Some(conn) => {
                conn.close_after_flush = true;
                conn.write_q.is_empty()
            }
            None => return,
        };
        if drained {
            self.drop_conn(token, false);
        } else {
            self.update_interest(token);
        }
    }

    /// Answers one query with a typed rejection; the connection stays up —
    /// shedding refuses work, not clients.
    fn send_reject(&mut self, token: usize, code: RejectCode) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.queued = false;
        }
        self.send_now(
            token,
            &Frame::Rejected {
                code,
                retry_after_ms: self.shared.admission.retry_after_ms,
            },
        );
        self.update_interest(token);
    }

    /// Executes everything admitted to the run queue this iteration, in
    /// arrival order. Deadlines that expired while queued are shed here —
    /// a typed rejection, zero engine work, the queue slot freed in
    /// bounded time.
    fn drain_run_queue(&mut self) {
        while let Some(q) = self.run_q.pop_front() {
            let token = q.token;
            match self.conns.get_mut(&token) {
                Some(conn) => conn.queued = false,
                None => continue, // connection died while the query waited
            }
            self.guarded(token, move |c, t| c.execute_queued(t, q));
        }
    }

    /// Runs one dequeued query: sheds it if its deadline already passed,
    /// otherwise executes under a cancel token covering the time left.
    fn execute_queued(&mut self, token: usize, q: QueuedQuery) {
        let deadline_remaining_ms = if q.deadline_ms > 0 {
            let waited_ms = q.enqueued.elapsed().as_secs_f64() * 1e3;
            let remaining = f64::from(q.deadline_ms) - waited_ms;
            if remaining <= 0.0 {
                self.shared
                    .counters
                    .count_reject(RejectCode::DeadlineExceeded);
                self.send_reject(token, RejectCode::DeadlineExceeded);
                return;
            }
            Some(remaining)
        } else {
            None
        };
        self.answer_query(token, q.trace_parent, deadline_remaining_ms, &q.sql);
    }

    /// Runs one query on the connection's session and starts streaming the
    /// response. The engine runs *on the shard thread* — shared-nothing —
    /// but with parallelism borrowed from idle shards when stealing is on.
    fn answer_query(
        &mut self,
        token: usize,
        trace_parent: u64,
        deadline_remaining_ms: Option<f64>,
        sql: &str,
    ) {
        let conn_id = match self.conns.get(&token) {
            Some(c) => c.conn_id,
            None => return,
        };
        let mut span = self.shared.tracer.as_ref().map(|t| {
            if trace_parent != 0 {
                t.span_with_parent("net.serve", SpanId(trace_parent))
            } else {
                t.span("net.serve")
            }
        });
        if let Some(g) = span.as_mut() {
            g.attr("conn", conn_id as i64);
        }

        // Work stealing: idle shards are parked in their readiness waits;
        // borrow their cores through the engine's morsel parallelism. The
        // answer is bit-identical at any parallelism (the PR 3 invariant),
        // so stealing is purely a latency lever.
        let borrowed = if self.cfg.work_stealing {
            1 + self
                .tel
                .idle_shards
                .load(Ordering::Acquire)
                .min(self.cfg.shards.saturating_sub(1))
        } else {
            1
        };
        if borrowed > 1 {
            self.tel.steal_borrows.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(g) = span.as_mut() {
            g.attr("shard_parallelism", borrowed as i64);
        }

        let tracer = self.shared.tracer.as_ref();
        let ran = {
            let session = self
                .conns
                .get_mut(&token)
                .and_then(|c| c.session.as_mut())
                .expect("Ready connections have a session");
            catch_unwind(AssertUnwindSafe(|| {
                let mut query = session.query(sql);
                if let Some(t) = tracer {
                    query = query.traced(t);
                }
                if borrowed > 1 {
                    query = query.parallelism(borrowed);
                }
                if let Some(ms) = deadline_remaining_ms {
                    query = query.cancel(CancelToken::with_deadline_ms(ms));
                }
                query.run()
            }))
        };
        let result = match ran {
            Ok(r) => r,
            Err(payload) => {
                // Contained engine panic: error frame to the client, the
                // connection and the shard live on.
                self.shared
                    .counters
                    .worker_panics
                    .fetch_add(1, Ordering::Relaxed);
                let msg = perfeval_fault::panic_message(payload.as_ref());
                self.send_now(
                    token,
                    &Frame::Error(DbError::Io(format!("server panic while executing: {msg}"))),
                );
                self.update_interest(token);
                return;
            }
        };

        match result {
            Err(DbError::Cancelled(_)) if deadline_remaining_ms.is_some() => {
                // The deadline cut the query short mid-flight: partial
                // work is discarded (bit-safely) and the client gets the
                // typed rejection; the session and connection live on.
                self.shared
                    .counters
                    .cancelled_queries
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .counters
                    .count_reject(RejectCode::DeadlineExceeded);
                self.send_reject(token, RejectCode::DeadlineExceeded);
            }
            Err(e) => {
                if matches!(e, DbError::Cancelled(_)) {
                    self.shared
                        .counters
                        .cancelled_queries
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.send_now(token, &Frame::Error(e));
                self.update_interest(token);
            }
            Ok(r) => {
                use perfeval_measure::Phase;
                let rows_total = r.rows.len() as u64;
                let footer = Footer {
                    parse_ms: r.phases.phase(Phase::Parse).unwrap_or(0.0),
                    optimize_ms: r.phases.phase(Phase::Optimize).unwrap_or(0.0),
                    execute_ms: r.phases.phase(Phase::Execute).unwrap_or(0.0),
                    execute_cpu_ms: r.execute_cpu_ms,
                    serialize_ms: 0.0,
                    rows: rows_total,
                };
                // The serialize timer starts here and stops when the last
                // batch drains — encode, queueing, and any slow-reader
                // stall all land in `serialize_ms`, matching the blocking
                // server's charge.
                let t0 = Instant::now();
                let mut batches = VecDeque::new();
                let mut rows = r.rows;
                while !rows.is_empty() {
                    let rest = rows.split_off(rows.len().min(ROWS_PER_BATCH));
                    batches.push_back(std::mem::replace(&mut rows, rest));
                }
                if !self.enqueue_frame(
                    token,
                    &Frame::ResultHeader {
                        columns: r.column_names,
                    },
                ) {
                    return;
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.pending = Some(PendingResponse {
                        batches,
                        footer,
                        t0,
                        rows_total,
                        done_enqueued: false,
                        span,
                    });
                }
                self.pump_response(token);
                self.update_interest(token);
            }
        }
    }

    /// Moves pending batches into the bounded write queue and flushes; when
    /// everything drains, stamps `serialize_ms`, sends `Done`, and resumes
    /// reads.
    fn pump_response(&mut self, token: usize) {
        loop {
            // Stage at most one batch per iteration, respecting the depth
            // bound; the borrow of the pending response ends before the
            // enqueue call needs `self`.
            let staged = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let Some(p) = conn.pending.as_mut() else {
                    return;
                };
                if conn.write_q.len() < self.cfg.queue_depth {
                    p.batches.pop_front()
                } else {
                    None
                }
            };
            if let Some(batch) = staged {
                if !self.enqueue_frame(token, &Frame::RowBatch { rows: batch }) {
                    return; // connection died mid-response
                }
                continue;
            }
            if !self.flush_writes(token) {
                return;
            }
            // Re-examine: queue full means wait for writable; batches left
            // means loop; all drained means finish with Done.
            enum Next {
                Wait,
                Refill,
                SendDone(Frame),
                Complete,
            }
            let next = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let Some(p) = conn.pending.as_mut() else {
                    return;
                };
                if !conn.write_q.is_empty() {
                    Next::Wait
                } else if !p.batches.is_empty() {
                    Next::Refill
                } else if !p.done_enqueued {
                    // The last row byte is with the transport: the
                    // serialize window closes, exactly like the blocking
                    // server stamping before its `Done`.
                    p.footer.serialize_ms = p.t0.elapsed().as_secs_f64() * 1e3;
                    p.done_enqueued = true;
                    let rows_total = p.rows_total as i64;
                    let serialize_ms = p.footer.serialize_ms;
                    if let Some(g) = p.span.as_mut() {
                        g.attr("rows", rows_total)
                            .attr("serialize_ms", serialize_ms);
                    }
                    Next::SendDone(Frame::Done(p.footer))
                } else {
                    Next::Complete
                }
            };
            match next {
                Next::Wait => return, // resume on the next writable event
                Next::Refill => continue,
                Next::SendDone(done) => {
                    if !self.send_now(token, &done) {
                        return;
                    }
                    continue; // loop once more to reach Complete (or Wait)
                }
                Next::Complete => {
                    // Fully delivered: close the serve span, resume reads,
                    // and poke ourselves to parse anything that queued up
                    // while paused.
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.pending = None;
                    }
                    self.pokes.push(token);
                    self.update_interest(token);
                    return;
                }
            }
        }
    }

    /// Appends one encoded frame to the bounded write queue, with
    /// `FramedIo::send` fault parity. Returns false if the connection died.
    fn enqueue_frame(&mut self, token: usize, frame: &Frame) -> bool {
        let (conn_id, ordinal) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            conn.frames_written += 1;
            (conn.conn_id, conn.frames_written)
        };
        self.shared.faults.fire("net.write", conn_id, ordinal);
        if self.shared.faults.io_fails("net.write", conn_id) {
            self.drop_conn(token, false);
            return false;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        conn.write_q.push_back(frame.encode());
        self.tel
            .write_queue_peak
            .fetch_max(conn.write_q.len() as u64, Ordering::Relaxed);
        true
    }

    /// Writes queued bytes until the transport would block or the queue is
    /// empty. Returns false if the connection died.
    fn flush_writes(&mut self, token: usize) -> bool {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            'queue: while let Some(front) = conn.write_q.pop_front() {
                loop {
                    match conn.transport.try_write(&front[conn.front_pos..]) {
                        Ok(0) => {
                            dead = true;
                            break 'queue;
                        }
                        Ok(n) => {
                            conn.front_pos += n;
                            if conn.front_pos >= front.len() {
                                conn.front_pos = 0;
                                break; // next frame
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            conn.write_q.push_front(front);
                            break 'queue;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break 'queue;
                        }
                    }
                }
            }
        }
        if dead {
            self.drop_conn(token, false);
            return false;
        }
        true
    }
}
