//! Client-side overload etiquette: seeded backoff and a circuit breaker.
//!
//! A server that sheds load ([`Frame::Rejected`](crate::Frame)) only
//! degrades gracefully if its clients cooperate. Two pieces, both
//! deterministic under a seed so tests replay exactly:
//!
//! * [`BackoffPolicy`] — a bounded, jittered exponential backoff with the
//!   same semantics as `perfeval-exec`'s retry policy (base doubles per
//!   retry, capped exponent, plus up to one base of seeded jitter, hard
//!   cap). The delay is a *pure function* of `(seed, key, attempt)`: the
//!   same client retrying the same attempt always waits the same time,
//!   while different clients jitter apart instead of retrying in
//!   lockstep (the thundering-herd failure mode).
//! * [`CircuitBreaker`] — per-connection: after `open_after` consecutive
//!   rejects the breaker opens and the client stops offering work for
//!   `cooldown_ms`, then a half-open probe decides whether to close it.
//!   Time is passed in by the caller (milliseconds on any monotonic
//!   clock), so the state machine itself is fully deterministic.
//!
//! The load harness (`perfeval-load`) drives both; the counters it keeps
//! (retries, rejects, give-ups, breaker opens) are first-class report
//! fields — a shed request is *accounted*, never silently dropped.

use perfeval_stats::SplitMix64;

/// Seeded, jittered, bounded exponential backoff — the client-side twin
/// of `perfeval-exec`'s scheduler backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Total attempts per request (first try + retries). `1` disables
    /// retrying entirely.
    pub max_attempts: u32,
    /// Base backoff before the first retry, milliseconds. Doubles per
    /// further retry (exponent capped at 6), plus up to one base of
    /// seeded jitter.
    pub base_ms: f64,
    /// Hard cap on any single delay, milliseconds.
    pub cap_ms: f64,
    /// Root seed for the jitter draw.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    /// One attempt, no backoff — retrying is opt-in.
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 1,
            base_ms: 0.0,
            cap_ms: 250.0,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// A policy allowing `n` retries after the first attempt, with a
    /// 1 ms base backoff and the default 250 ms cap.
    pub fn retries(n: u32) -> Self {
        BackoffPolicy {
            max_attempts: 1 + n,
            base_ms: 1.0,
            ..BackoffPolicy::default()
        }
    }

    /// Sets the base backoff.
    pub fn with_base_ms(mut self, ms: f64) -> Self {
        self.base_ms = ms.max(0.0);
        self
    }

    /// Sets the per-delay cap.
    pub fn with_cap_ms(mut self, ms: f64) -> Self {
        self.cap_ms = ms.max(0.0);
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether attempt `attempt + 1` may be made (attempts are 1-based:
    /// `attempt` is the number already made).
    pub fn may_retry(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts
    }

    /// The delay before retry attempt `attempt` (2-based, like the exec
    /// scheduler: attempt 2 is the first retry) for the caller identified
    /// by `key` (e.g. a load client id or connection id). Pure function
    /// of `(seed, key, attempt)` — deterministic per caller, decorrelated
    /// across callers.
    pub fn delay_ms(&self, key: u64, attempt: u32) -> f64 {
        if self.base_ms <= 0.0 {
            return 0.0;
        }
        let exponent = attempt.saturating_sub(2).min(6);
        let jitter = SplitMix64::split(self.seed ^ key, attempt as u64).next_f64() * self.base_ms;
        (self.base_ms * (1u64 << exponent) as f64 + jitter).min(self.cap_ms)
    }

    /// Human-readable description for reports.
    pub fn describe(&self) -> String {
        if self.max_attempts <= 1 {
            "no retries".to_owned()
        } else {
            format!(
                "{} attempt(s), {} ms base backoff (cap {} ms, seeded jitter)",
                self.max_attempts, self.base_ms, self.cap_ms
            )
        }
    }
}

/// Breaker state: the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    /// Requests flow; consecutive rejects are counted.
    Closed,
    /// Requests are refused locally until the cooldown passes.
    Open {
        /// Caller-clock instant (ms) at which the breaker half-opens.
        until_ms: f64,
    },
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

/// A per-connection circuit breaker over server rejects.
///
/// The caller owns the clock: every method that depends on time takes
/// `now_ms` (milliseconds on any monotonic clock), which keeps the state
/// machine deterministic and unit-testable without sleeping.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    open_after: u32,
    cooldown_ms: f64,
    consecutive_rejects: u32,
    state: BreakerState,
    opens: u64,
}

impl CircuitBreaker {
    /// A breaker that opens after `open_after` consecutive rejects and
    /// half-opens `cooldown_ms` later. `open_after == 0` disables the
    /// breaker (it never opens).
    pub fn new(open_after: u32, cooldown_ms: f64) -> Self {
        CircuitBreaker {
            open_after,
            cooldown_ms: cooldown_ms.max(0.0),
            consecutive_rejects: 0,
            state: BreakerState::Closed,
            opens: 0,
        }
    }

    /// Whether a request may be sent now. An open breaker whose cooldown
    /// has passed transitions to half-open and admits exactly one probe.
    pub fn allows(&mut self, now_ms: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open { until_ms } if now_ms >= until_ms => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open { .. } => false,
            // One probe at a time: further requests wait for its verdict.
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a server reject for a request this breaker admitted.
    /// In half-open, the failed probe re-opens immediately.
    pub fn on_reject(&mut self, now_ms: f64) {
        self.consecutive_rejects = self.consecutive_rejects.saturating_add(1);
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                self.open_after > 0 && self.consecutive_rejects >= self.open_after
            }
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                until_ms: now_ms + self.cooldown_ms,
            };
            self.opens += 1;
        }
    }

    /// Records a successful response: closes the breaker and clears the
    /// reject streak.
    pub fn on_success(&mut self) {
        self.consecutive_rejects = 0;
        self.state = BreakerState::Closed;
    }

    /// True while the breaker refuses requests (open, cooldown pending).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// How many times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = BackoffPolicy::retries(3).with_base_ms(2.0).with_seed(42);
        for attempt in 2..10 {
            let a = p.delay_ms(7, attempt);
            let b = p.delay_ms(7, attempt);
            assert_eq!(a, b, "same (seed, key, attempt) → same delay");
            assert!(a <= p.cap_ms, "delay {a} exceeds cap");
            assert!(a >= 0.0);
        }
    }

    #[test]
    fn backoff_grows_exponentially_until_the_cap() {
        let p = BackoffPolicy::retries(8)
            .with_base_ms(1.0)
            .with_cap_ms(1e9)
            .with_seed(1);
        // Deterministic floor: base * 2^(attempt-2); jitter adds < one base.
        for attempt in 2..8 {
            let floor = 1.0 * (1u64 << (attempt - 2)) as f64;
            let d = p.delay_ms(0, attempt);
            assert!(d >= floor && d < floor + 1.0, "attempt {attempt}: {d}");
        }
    }

    #[test]
    fn backoff_decorrelates_distinct_keys() {
        let p = BackoffPolicy::retries(2).with_base_ms(100.0).with_seed(9);
        let delays: Vec<f64> = (0..16).map(|k| p.delay_ms(k, 2)).collect();
        let distinct = delays
            .iter()
            .filter(|&&d| delays.iter().filter(|&&e| e == d).count() == 1)
            .count();
        assert!(distinct >= 12, "clients should jitter apart: {delays:?}");
    }

    #[test]
    fn zero_base_never_waits() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_ms(3, 2), 0.0);
        assert!(!p.may_retry(1), "default policy is single-attempt");
    }

    #[test]
    fn breaker_opens_after_k_consecutive_rejects() {
        let mut b = CircuitBreaker::new(3, 50.0);
        assert!(b.allows(0.0));
        b.on_reject(0.0);
        b.on_reject(1.0);
        assert!(b.allows(2.0), "two rejects: still closed");
        b.on_reject(2.0);
        assert!(b.is_open(), "third consecutive reject trips it");
        assert!(!b.allows(10.0), "cooldown pending");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(2, 50.0);
        b.on_reject(0.0);
        b.on_success();
        b.on_reject(1.0);
        assert!(!b.is_open(), "streak was reset by the success");
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_reject() {
        let mut b = CircuitBreaker::new(1, 50.0);
        b.on_reject(0.0);
        assert!(b.is_open());
        // Cooldown passes → exactly one probe admitted.
        assert!(b.allows(60.0), "half-open admits the probe");
        assert!(!b.allows(60.0), "but only one at a time");
        b.on_reject(60.0);
        assert!(b.is_open(), "failed probe re-opens");
        assert_eq!(b.opens(), 2);
        // Next cooldown: the probe succeeds and the breaker closes.
        assert!(b.allows(120.0));
        b.on_success();
        assert!(!b.is_open());
        assert!(b.allows(121.0), "closed again");
    }

    #[test]
    fn zero_open_after_disables_the_breaker() {
        let mut b = CircuitBreaker::new(0, 50.0);
        for t in 0..100 {
            b.on_reject(t as f64);
        }
        assert!(!b.is_open());
        assert!(b.allows(1000.0));
    }
}
