//! # minidb-net
//!
//! A real wire-protocol client/server layer for minidb, so client-vs-server
//! time is **measured, not simulated**.
//!
//! The paper's pitfall catalogue hinges on *where* the stopwatch sits:
//! user vs. real time, client vs. server time (`mclient -t`). Before this
//! crate, the reproduction faked the client side with a `sim_print_ms`
//! constant. Now a query travels a length-prefixed binary protocol
//! ([`frame`]) over a transport ([`transport`]) — real TCP, or a
//! zero-syscall in-process loopback pipe behind the same trait — and one
//! run yields the full decomposition:
//!
//! * **server user** — per-thread CPU of the execute phase (server clock),
//! * **server real** — parse + optimize + execute wall (server clock),
//! * **serialize** — result encode + write, including backpressure stalls
//!   (server clock),
//! * **wire** — the residual the server does not claim (client clock),
//! * **client print** — the sink (client clock).
//!
//! ```no_run
//! use std::sync::Arc;
//! use minidb_net::{Client, Server, ServerMode, TcpEndpoint, TcpTransport};
//!
//! # fn catalog() -> minidb::Catalog { minidb::Catalog::new() }
//! let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
//! let addr = ep.local_addr().unwrap();
//! let server = Server::builder()
//!     .transport(ep)
//!     .mode(ServerMode::Sharded { shards: 2, queue_depth: 64 })
//!     .serve(|| minidb::Session::new(catalog()));
//!
//! let mut client = Client::connect(Box::new(TcpTransport::connect(addr).unwrap())).unwrap();
//! let r = client.query("SELECT 1").unwrap();
//! println!("{}", r.decomposition());
//! # drop(client);
//! # server.wait();
//! ```
//!
//! Two server cores live behind that builder ([`ServerMode`]):
//!
//! * **Sharded** (default) — an event-driven, shared-nothing core: a
//!   readiness loop ([`poll`]) multiplexes connections onto N core-pinned
//!   shard workers with per-shard sessions, bounded per-connection write
//!   queues, and cross-shard work *sharing* (idle shards lend their cores
//!   to a busy shard's query as extra morsel parallelism).
//! * **ThreadPerConn** — the original blocking thread-per-connection loop,
//!   kept as an explicit experiment arm (`exp_e23_sharded_server`).
//!
//! Guarantees the tests pin down:
//!
//! * **Bit identity.** Results over loopback and TCP equal an in-process
//!   [`minidb::Session`] run exactly — floats compared by `to_bits()`
//!   (`tests/roundtrip.rs`).
//! * **Backpressure.** Outgoing buffers are bounded; a slow reader blocks
//!   the writer instead of growing a queue ([`transport`] tests).
//! * **Span stitching.** The client's `net.query` span id rides the frame
//!   header; the server parents `net.serve` under it, so one
//!   `perfeval-trace` snapshot holds both sides of the wire.
//! * **Deterministic faults.** `net.accept` / `net.read` / `net.write`
//!   failpoints (delay, jitter, fail, hang) keyed by connection + frame
//!   ordinals, so a dropped connection is a *scheduled* event — and
//!   surfaces as a contained `UnitOutcome` under `perfeval-exec`
//!   (`tests/net_exec.rs` at the workspace root). The `net.admit` site
//!   sits at the admission decision; its `FailIo` arm forces a typed
//!   `Overloaded` rejection, the chaos lever for client-backoff tests.
//! * **Overload protection.** [`Admission`] bounds in-flight queries and
//!   live connections and defaults per-query deadlines; excess work is
//!   shed *fast and typed* (`Frame::Rejected` with [`RejectCode`] and
//!   retry-after advice) in both cores, deadlines are enforced by
//!   cooperative cancellation (a cancelled query answers typed and never
//!   poisons its session — `tests/overload.rs`), and
//!   [`ServerHandle::drain`] sheds new work while in-flight queries
//!   finish. The client-side etiquette lives here too: [`BackoffPolicy`]
//!   (seeded, jittered, bounded) and the per-connection
//!   [`CircuitBreaker`]. `exp_e25_overload` is the designed saturation
//!   experiment.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod poll;
pub mod retry;
pub mod server;
mod shard;
pub mod transport;

pub use client::{Client, Connect, Connector, NetError, NetQueryResult};
pub use frame::{
    Footer, Frame, FramedIo, RejectCode, MAX_FRAME_LEN, PROTOCOL_VERSION, ROWS_PER_BATCH,
};
pub use poll::{shard_for, Interest, Poll, Ready, ShimHandle};
pub use retry::{BackoffPolicy, CircuitBreaker};
pub use server::{
    Admission, Server, ServerBuilder, ServerHandle, ServerMode, ServerStats, DEFAULT_QUEUE_DEPTH,
};
pub use transport::{
    EventSource, Listener, LoopbackConn, LoopbackConnector, LoopbackEndpoint, TcpEndpoint,
    TcpTransport, Transport, DEFAULT_LOOPBACK_CAPACITY,
};

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Catalog, DataType, Session, TableBuilder, Value};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("nums")
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .build();
        for i in 0..1_000 {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 4.0)])
                .unwrap();
        }
        catalog.register(t).unwrap();
        catalog
    }

    #[test]
    fn loopback_query_end_to_end() {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(ServerMode::Sharded {
                shards: 2,
                queue_depth: 64,
            })
            .serve(|| Session::new(catalog()));

        let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
        let r = client
            .query("SELECT COUNT(*) FROM nums WHERE x < 100")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
        assert_eq!(r.footer.rows, 1);
        assert!(r.client_real_ms > 0.0);
        assert!(r.bytes_received > 0);
        // The decomposition renders and sums sensibly.
        let text = r.decomposition();
        assert!(text.contains("client real"), "{text}");
        assert!(text.contains("wire"), "{text}");

        client.close().unwrap();
        let stats = server.wait();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.disconnects, 0);
    }

    #[test]
    fn tcp_query_end_to_end() {
        let ep = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = ep.local_addr().unwrap();
        let server = Server::builder()
            .transport(ep)
            .serve(|| Session::new(catalog()));

        let mut client = Client::connect(Box::new(TcpTransport::connect(addr).unwrap())).unwrap();
        let r = client.query("SELECT SUM(y) FROM nums").unwrap();
        assert_eq!(r.row_count(), 1);
        client.close().unwrap();
        let stats = server.wait();
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn server_reports_db_errors_without_dying() {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(ServerMode::ThreadPerConn { workers: 1 })
            .serve(|| Session::new(catalog()));

        let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
        match client.query("SELECT nope FROM nums") {
            Err(NetError::Db(minidb::DbError::UnknownColumn(_))) => {}
            other => panic!("expected UnknownColumn, got {other:?}"),
        }
        // The connection survives the error.
        let r = client.query("SELECT COUNT(*) FROM nums").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1_000)]]);
        client.close().unwrap();
        server.wait();
    }

    #[test]
    fn multiple_queries_reuse_one_session() {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(ServerMode::Sharded {
                shards: 1,
                queue_depth: 64,
            })
            .serve(|| Session::new(Catalog::new()));

        let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
        client.query("CREATE TABLE t (a INT)").unwrap();
        client.query("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let r = client.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Int(3)]],
            "DDL/DML state persists across queries on one connection"
        );
        client.close().unwrap();
        server.wait();
    }

    #[test]
    fn persistent_connection_handshakes_exactly_once() {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(ServerMode::Sharded {
                shards: 2,
                queue_depth: 4,
            })
            .serve(|| Session::new(catalog()));

        let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
        assert!(client.is_alive());
        for i in 0..200 {
            let r = client
                .query(&format!("SELECT COUNT(*) FROM nums WHERE x < {i}"))
                .unwrap();
            assert_eq!(r.rows, vec![vec![Value::Int(i)]]);
            assert!(client.is_alive());
        }
        client.close().unwrap();
        let stats = server.wait();
        // One Hello for 200 queries: the load harness does not pay a
        // handshake (or a new server session) per request.
        assert_eq!(stats.connections, 1, "no re-handshake across queries");
        assert_eq!(stats.queries, 200);
        assert_eq!(stats.disconnects, 0);
    }

    #[test]
    fn is_alive_and_reconnect_recover_a_dead_connection() {
        use perfeval_fault::FaultRegistry;
        use std::io::{Read, Write};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // A transport whose link the test can cut mid-stream — the
        // "flapping client" scenario the load harness must contain.
        struct KillSwitch {
            inner: LoopbackConn,
            cut: Arc<AtomicBool>,
        }
        impl KillSwitch {
            fn check(&self) -> std::io::Result<()> {
                if self.cut.load(Ordering::SeqCst) {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "link cut",
                    ))
                } else {
                    Ok(())
                }
            }
        }
        impl Read for KillSwitch {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.check()?;
                self.inner.read(buf)
            }
        }
        impl Write for KillSwitch {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.check()?;
                self.inner.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.inner.flush()
            }
        }
        impl Transport for KillSwitch {
            fn describe(&self) -> String {
                "loopback+killswitch".to_owned()
            }
        }

        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        // KillSwitch has no readiness support, so the sharded core must fall
        // back to a compat thread per connection — exercised here.
        let server = Server::builder()
            .transport(ep)
            .serve(|| Session::new(catalog()));

        let cut = Arc::new(AtomicBool::new(false));
        let connector: Connector = {
            let cut = Arc::clone(&cut);
            Box::new(move || {
                Ok(Box::new(KillSwitch {
                    inner: dial.connect()?,
                    cut: Arc::clone(&cut),
                }) as Box<dyn Transport>)
            })
        };
        let mut client =
            Client::connect_via(connector, Arc::new(FaultRegistry::disabled()), 42).unwrap();

        let r = client.query("SELECT COUNT(*) FROM nums").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1_000)]]);
        assert!(client.is_alive());

        // Cut the link: the next query dies on the wire.
        cut.store(true, Ordering::SeqCst);
        let err = client.query("SELECT MAX(x) FROM nums").unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err:?}");
        assert!(!client.is_alive(), "Io error marks the client dead");

        // Revive in place: new connection, new session, same client.
        cut.store(false, Ordering::SeqCst);
        client.reconnect().unwrap();
        assert!(client.is_alive());
        let r = client.query("SELECT MAX(x) FROM nums").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(999)]]);

        client.close().unwrap();
        let stats = server.wait();
        assert_eq!(stats.connections, 2, "reconnect dialed a fresh connection");
        assert_eq!(stats.disconnects, 1, "the cut connection ended dirty");
    }

    #[test]
    fn reconnect_without_connector_is_an_error() {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(ServerMode::ThreadPerConn { workers: 1 })
            .serve(|| Session::new(catalog()));
        let mut client = Client::connect(Box::new(dial.connect().unwrap())).unwrap();
        assert!(matches!(
            client.reconnect(),
            Err(NetError::Protocol(m)) if m.contains("connect_via")
        ));
        client.close().unwrap();
        server.wait();
    }

    fn assert_stitched(mode: ServerMode) {
        use perfeval_trace::Tracer;
        let tracer = Tracer::new();
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(mode)
            .traced(&tracer)
            .serve(|| Session::new(catalog()));

        let mut client = Client::connect(Box::new(dial.connect().unwrap()))
            .unwrap()
            .traced(&tracer);
        client.query("SELECT MAX(x) FROM nums").unwrap();
        client.close().unwrap();
        server.wait();

        let trace = tracer.snapshot();
        let net_query = trace.find("net.query").next().expect("client span");
        let net_serve = trace.find("net.serve").next().expect("server span");
        assert_eq!(
            net_serve.parent,
            Some(net_query.id),
            "server span parented under the client's via the frame header"
        );
        // The engine's own spans nest under net.serve on the server lane.
        let query_span = trace.find("query").next().expect("engine root span");
        assert_eq!(query_span.parent, Some(net_serve.id));
    }

    #[test]
    fn spans_stitch_across_the_wire() {
        assert_stitched(ServerMode::ThreadPerConn { workers: 1 });
    }

    #[test]
    fn spans_stitch_in_sharded_mode() {
        assert_stitched(ServerMode::Sharded {
            shards: 2,
            queue_depth: 64,
        });
    }
}
