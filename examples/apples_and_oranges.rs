//! The "Of apples and oranges" war story, replayed (slides 37–45).
//!
//! Colleague A benchmarks the *old* algorithm compiled with optimization;
//! colleague B benchmarks the *new* algorithm compiled without. The new
//! algorithm loses — until someone checks the build flags. Here the two
//! "builds" are `minidb`'s Debug and Optimized engines, the "algorithms"
//! are two equivalent query plans, and the honest comparison at the end
//! uses paired measurements with confidence intervals.
//!
//! Run with: `cargo run --release --example apples_and_oranges`

use perfeval::prelude::*;
use perfeval::stats::compare::{compare_paired, ComparisonVerdict};
use perfeval::workload::queries;

/// Measures a query's server time: one warmup, `reps` measured runs.
fn measure(
    catalog: &Catalog,
    mode: ExecMode,
    optimizer_on: bool,
    sql: &str,
    reps: usize,
) -> Vec<f64> {
    let mut s = Session::new(catalog.clone()).with_mode(mode);
    if !optimizer_on {
        s.set_optimizer(perfeval::minidb::optimizer::OptimizerConfig::none());
    }
    s.query(sql).run().unwrap();
    (0..reps)
        .map(|_| s.query(sql).run().unwrap().server_user_ms())
        .collect()
}

fn main() {
    let catalog = generate(&GenConfig {
        scale_factor: 0.005,
        ..GenConfig::default()
    });
    let sql = queries::q1();

    // The flawed comparison: "new" (optimizer ON) measured on the DBG
    // build vs "old" (optimizer OFF) measured on the OPT build.
    let old_on_opt_build = measure(&catalog, ExecMode::Optimized, false, &sql, 5);
    let new_on_dbg_build = measure(&catalog, ExecMode::Debug, true, &sql, 5);
    let flawed = compare_means(&new_on_dbg_build, &old_on_opt_build, 0.95).unwrap();
    println!("--- the flawed comparison (mismatched builds) ---");
    println!(
        "new (DBG build): {}",
        Summary::from_slice(&new_on_dbg_build)
    );
    println!(
        "old (OPT build): {}",
        Summary::from_slice(&old_on_opt_build)
    );
    println!(
        "verdict: {} — the *new* code looks worse!\n",
        flawed.verdict
    );

    // Days of arguing later… both on the same build:
    let old_fair = measure(&catalog, ExecMode::Optimized, false, &sql, 5);
    let new_fair = measure(&catalog, ExecMode::Optimized, true, &sql, 5);
    let fair = compare_means(&new_fair, &old_fair, 0.95).unwrap();
    println!("--- the fair comparison (same build) ---");
    println!("new (OPT build): {}", Summary::from_slice(&new_fair));
    println!("old (OPT build): {}", Summary::from_slice(&old_fair));
    println!(
        "verdict: {} (speedup {:.2}x, difference CI {})\n",
        fair.verdict, fair.speedup, fair.difference
    );

    // How big is the build effect itself? Per-query DBG/OPT ratios over the
    // 22-query family — the slide-41 figure in numbers.
    println!("--- DBG/OPT ratio per query (the compile-flag factor) ---");
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let mut dbg_times = Vec::new();
    let mut opt_times = Vec::new();
    for (i, q) in queries::all_family().iter().enumerate() {
        let d = median(measure(&catalog, ExecMode::Debug, true, q, 3));
        let o = median(measure(&catalog, ExecMode::Optimized, true, q, 3));
        dbg_times.push(d);
        opt_times.push(o);
        println!("q{:<2} DBG/OPT = {:.2}", i + 1, d / o.max(1e-9));
    }
    let paired = compare_paired(&opt_times, &dbg_times, 0.95).unwrap();
    assert_eq!(paired.verdict, ComparisonVerdict::AFaster);
    let ratios: Vec<f64> = dbg_times
        .iter()
        .zip(&opt_times)
        .map(|(d, o)| d / o.max(1e-9))
        .collect();
    let geo = Summary::from_slice(&ratios).geometric_mean().unwrap();
    println!("\ngeometric-mean DBG/OPT ratio across 22 queries: {geo:.2}x");
    println!("moral: document the build configuration next to every number.");
}
