//! Hot vs. cold runs, and user vs. real time (slides 30–36).
//!
//! Reproduces the shape of the tutorial's table: a cold TPC-H Q1 whose
//! wall-clock time dwarfs its CPU time (disk waits), next to a hot run
//! where the two nearly coincide — all on a simulated 5400 RPM laptop disk
//! so the experiment is deterministic and runs anywhere.
//!
//! Run with: `cargo run --release --example hot_cold`

use perfeval::prelude::*;
use perfeval::workload::queries;

fn main() {
    let catalog = generate(&GenConfig {
        scale_factor: 0.01,
        ..GenConfig::default()
    });
    let mut session = Session::new(catalog).with_disk(Disk::laptop_5400rpm(), 50_000);

    println!("protocols:");
    println!("  cold: {}", RunProtocol::cold(1).describe());
    println!("  hot : {}\n", RunProtocol::last_of_three_hot().describe());

    let sql = queries::q1();

    // Cold: flush everything first (the "reboot").
    session.flush_caches();
    let cold = session.query(&sql).run().unwrap();

    // Hot: measured last of three consecutive runs.
    let _ = session.query(&sql).run().unwrap();
    let _ = session.query(&sql).run().unwrap();
    let hot = session.query(&sql).run().unwrap();

    println!("              cold                hot");
    println!("Q    user     real      user     real   ... time (milliseconds)");
    println!(
        "1  {:>7.0}  {:>7.0}   {:>7.0}  {:>7.0}",
        cold.server_user_ms(),
        cold.sim_server_real_ms(),
        hot.server_user_ms(),
        hot.sim_server_real_ms()
    );
    println!(
        "\nbuffer pool hit rate after hot run: {:.1}%",
        session.pool_hit_rate().unwrap() * 100.0
    );

    let io_share = cold.sim_io_ms / cold.sim_server_real_ms();
    println!(
        "cold run spent {:.0}% of wall-clock time waiting on the (simulated) disk",
        io_share * 100.0
    );
    println!("\nBe aware what you measure!");
    assert!(
        cold.sim_server_real_ms() > 1.5 * cold.server_user_ms(),
        "cold (simulated) real must exceed cold user"
    );
    assert!(hot.sim_io_ms == 0.0, "hot run must not touch the disk");
}
