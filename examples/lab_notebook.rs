//! The complete workflow, end to end: adaptive measurement, a replicated
//! factorial design with ANOVA significance, and a rendered experiment
//! report — the document the repeatability chapter says should accompany
//! every published number.
//!
//! Run with: `cargo run --release --example lab_notebook`

use perfeval::core::anova::anova;
use perfeval::core::runner::Runner;
use perfeval::harness::report::{Report, ResultTable};
use perfeval::measure::{measure_until, SoftwareSpec};
use perfeval::minidb::optimizer::OptimizerConfig;
use perfeval::prelude::*;
use perfeval::workload::queries;

fn main() {
    let config = GenConfig {
        scale_factor: 0.005,
        ..GenConfig::default()
    };
    let catalog = generate(&config);
    let sql = queries::q6();

    // --- adaptive measurement: replicate until the CI is tight ---
    let mut session = Session::new(catalog.clone());
    session.query(&sql).run().unwrap(); // warm
    let adaptive = measure_until(0.95, 0.05, 5, 200, || {
        session.query(&sql).run().unwrap().server_user_ms()
    });
    println!(
        "adaptive measurement: {} runs, mean {} (converged: {})",
        adaptive.runs(),
        adaptive.interval,
        adaptive.converged
    );

    // --- replicated 2x2 design + ANOVA ---
    let design = TwoLevelDesign::full(&["engine", "rewriter"]);
    let mut experiment = |a: &Assignment| {
        let mode = if a.num("engine").unwrap() > 0.0 {
            ExecMode::Optimized
        } else {
            ExecMode::Debug
        };
        let mut s = Session::new(catalog.clone()).with_mode(mode);
        if a.num("rewriter").unwrap() < 0.0 {
            s.set_optimizer(OptimizerConfig::none());
        }
        s.query(&sql).run().unwrap();
        s.query(&sql).run().unwrap().server_user_ms()
    };
    let table = Runner::new(4).run_two_level(&design, &mut experiment);
    let significance = anova(&design, &table.replicates, 0.95).unwrap();
    println!("\nANOVA over (engine, rewriter), 4 replications:");
    print!("{}", significance.render());
    println!(
        "significant effects: {:?}",
        significance.significant_effects()
    );

    // --- the report ---
    let mut results = ResultTable::new("Q6 server time by configuration", "ms");
    for (assignment, reps) in table.assignments.iter().zip(&table.replicates) {
        results.row(&assignment.to_string(), reps.clone());
    }
    let mut props = Properties::new();
    props.set("seed", &config.seed.to_string());
    props.set("scale_factor", &config.scale_factor.to_string());
    props.set("query", "q6");
    props.set("replications", "4");

    let report = Report::new(
        "Q6: engine build × plan rewriter",
        "quantify how much of Q6's runtime is governed by the execution \
         engine versus the plan rewriter, with proper error accounting",
    )
    .environment(perfeval::measure::EnvSpec::capture())
    .software(SoftwareSpec::new(
        "minidb",
        env!("CARGO_PKG_VERSION"),
        "this repository",
        "cargo release profile; engines: DBG (interpreter) / OPT (vectorized)",
    ))
    .protocol("one warmup run per configuration, 4 measured replications, hot buffer state")
    .config(props)
    .table(results)
    .conclusions(
        "the engine build dominates (see ANOVA); the rewriter's effect is \
         an order of magnitude smaller on this single-table query, and the \
         interaction is within noise.",
    );

    println!("\n==================== report ====================\n");
    print!("{}", report.render());
    if !report.missing_sections().is_empty() {
        println!("(missing sections: {:?})", report.missing_sections());
    }
}
