//! Two-stage experiment design (slides 56–113): screen five engine knobs
//! with a 2^(5−2) fractional factorial — 8 runs instead of 32 — rank them
//! by allocation of variation, then study the survivors in detail.
//!
//! Run with: `cargo run --release --example screen_factors`

use perfeval::core::screen::screen;
use perfeval::minidb::optimizer::OptimizerConfig;
use perfeval::prelude::*;
use perfeval::workload::micro::{build_micro_table, MicroConfig, MicroDist};

/// Builds a catalog with a micro table of `rows` rows.
fn catalog_with(rows: usize) -> Catalog {
    let mut c = Catalog::new();
    c.register(build_micro_table(&MicroConfig {
        rows,
        dist: MicroDist::Uniform { range: 1_000_000 },
        correlation: 0.0,
        seed: 7,
    }))
    .unwrap();
    c
}

fn main() {
    // Five candidate factors, two levels each:
    //   size      : 20k vs 200k rows
    //   mode      : DBG vs OPT engine
    //   rewriter  : optimizer rules off vs on
    //   select    : 90% vs 1% selectivity predicate
    //   aggregate : COUNT(*) vs SUM over an expression
    let small = catalog_with(20_000);
    let large = catalog_with(200_000);

    let experiment = |a: &Assignment| {
        let catalog = if a.num("size").unwrap() > 0.0 {
            large.clone()
        } else {
            small.clone()
        };
        let mode = if a.num("mode").unwrap() > 0.0 {
            ExecMode::Optimized
        } else {
            ExecMode::Debug
        };
        let mut s = Session::new(catalog).with_mode(mode);
        if a.num("rewriter").unwrap() < 0.0 {
            s.set_optimizer(OptimizerConfig::none());
        }
        let cutoff = if a.num("select").unwrap() > 0.0 {
            10_000 // ~1% of values
        } else {
            900_000 // ~90%
        };
        let agg = if a.num("aggregate").unwrap() > 0.0 {
            "SUM(x * y)"
        } else {
            "COUNT(*)"
        };
        let sql = format!("SELECT {agg} FROM micro WHERE v < {cutoff}");
        s.query(&sql).run().unwrap(); // warmup
        s.query(&sql).run().unwrap().server_user_ms()
    };

    // Stage 1: a resolution-III 2^(5-2) screen, 8 runs x 2 replications.
    let generators = [
        Generator::parse("D=AB").unwrap(),
        Generator::parse("E=AC").unwrap(),
    ];
    // Two-level design wants single-letter base names for generators; map:
    // A=size, B=mode, C=rewriter, D=select, E=aggregate.
    let mut lettered = |a: &Assignment| {
        let translated = Assignment::new(vec![
            ("size".into(), Level::Num(a.num("A").unwrap())),
            ("mode".into(), Level::Num(a.num("B").unwrap())),
            ("rewriter".into(), Level::Num(a.num("C").unwrap())),
            ("select".into(), Level::Num(a.num("D").unwrap())),
            ("aggregate".into(), Level::Num(a.num("E").unwrap())),
        ]);
        experiment(&translated)
    };
    let report = screen(&["A", "B", "C", "D", "E"], &generators, 2, &mut lettered).unwrap();
    println!("--- stage 1: 2^(5-2) screening (A=size B=mode C=rewriter D=select E=aggregate) ---");
    print!("{}", report.render());

    let survivors = report.important_factors(0.05);
    println!("\nfactors explaining >= 5% of variation: {survivors:?}");

    // Show what the fraction cost vs the full design.
    println!(
        "runs spent: {} (a full 2^5 with 2 reps would take {})",
        report.runs_spent,
        32 * 2
    );

    // Stage 2: full factorial over the two biggest factors with more
    // replications, now with interaction visibility.
    let top: Vec<&str> = report
        .ranking
        .iter()
        .take(2)
        .map(|(n, _)| n.as_str())
        .collect();
    println!("\n--- stage 2: full 2^2 over {top:?} with 5 replications ---");
    let design = TwoLevelDesign::full(&[top[0], top[1]]);
    let mut stage2 = |a: &Assignment| {
        // Unselected factors pinned at their high level.
        let full = Assignment::new(
            ["A", "B", "C", "D", "E"]
                .iter()
                .map(|f| {
                    let v = a.num(f).unwrap_or(1.0);
                    ((*f).to_owned(), Level::Num(v))
                })
                .collect(),
        );
        lettered(&full)
    };
    let (runs, variation) = run_and_analyze(&design, 5, &mut stage2).unwrap();
    print!("{}", runs.render());
    print!("{}", variation.render());
    println!(
        "\ninteraction {}·{} explains {:.1}% — visible only because stage 2 is factorial",
        top[0],
        top[1],
        variation
            .fraction_of(&design, &[top[0], top[1]])
            .unwrap_or(0.0)
            * 100.0
    );
}
