//! Quickstart for the wire-protocol layer: start a TCP server, connect a
//! client, and decompose one query's wall time into the components only a
//! real client/server split can measure.
//!
//! ```text
//! cargo run --release --example net_client
//! ```
//!
//! This is the README's "measure at the client, honestly" demo: the same
//! query that looks instant server-side can spend most of its client-side
//! wall time on serialize + wire + print — the paper's slides 23–26, with
//! real stopwatches instead of simulated devices.

use perfeval::minidb::sink::TerminalSink;
use perfeval::prelude::*;

fn main() {
    // A small deterministic TPC-H-like catalog; every connection gets its
    // own session over it.
    let catalog = generate(&GenConfig {
        scale_factor: 0.01,
        ..GenConfig::default()
    });

    // Server: real TCP on an ephemeral port, the sharded event-driven core
    // (two shards). `ServerMode::ThreadPerConn` would serve identically —
    // bit for bit — one thread per connection.
    let endpoint = TcpEndpoint::bind("127.0.0.1:0").expect("bind");
    let addr = endpoint.local_addr().expect("addr");
    let server = Server::builder()
        .transport(endpoint)
        .mode(ServerMode::Sharded {
            shards: 2,
            queue_depth: 64,
        })
        .serve(move || Session::new(catalog.clone()));
    println!("server listening on {addr}");

    // Client: its own connection, its own stopwatch.
    let mut client =
        Client::connect(Box::new(TcpTransport::connect(addr).expect("dial"))).expect("handshake");

    // A tiny result: delivery is noise, the query is the time.
    let small = client
        .query("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24")
        .expect("small query");
    println!(
        "\nsmall result ({} row): delivery share {:.1}%",
        small.row_count(),
        small.delivery_share() * 100.0
    );
    print!("{}", small.decomposition());

    // A large result through a terminal sink: now watch delivery eat the
    // client's wall clock.
    let mut sink = TerminalSink::new();
    let large = client
        .query_to(
            "SELECT l_orderkey, l_extendedprice, l_discount FROM lineitem ORDER BY l_orderkey",
            &mut sink,
        )
        .expect("large query");
    println!(
        "\nlarge result ({} rows, {} wire bytes): delivery share {:.1}%",
        large.row_count(),
        large.bytes_received,
        large.delivery_share() * 100.0
    );
    print!("{}", large.decomposition());

    client.close().expect("close");
    let stats = server.wait();
    println!(
        "\nserver served {} queries on {} connection(s), {} disconnects.",
        stats.queries, stats.connections, stats.disconnects
    );
}
