//! Quickstart: load a workload, measure a query the honest way, and find
//! out which knob matters with a 2² factorial design.
//!
//! Run with: `cargo run --release --example quickstart`

use perfeval::prelude::*;
use perfeval::workload::queries;

fn main() {
    // 1. A deterministic TPC-H-like database: seed + scale factor is the
    //    whole recipe (repeatability!).
    let config = GenConfig {
        scale_factor: 0.002,
        ..GenConfig::default()
    };
    println!("generating TPC-H-like data (sf={})...", config.scale_factor);
    let catalog = generate(&config);
    println!(
        "  lineitem: {} rows",
        catalog.table("lineitem").unwrap().row_count()
    );

    // 2. Run Q1 with per-phase timing — know what you measure.
    let mut session = Session::new(catalog.clone());
    let result = session.query(&queries::q1()).run().unwrap();
    println!("\nQ1 phase breakdown (mclient -t style):");
    print!("{}", result.phases.render());
    println!("rows: {}", result.row_count());

    // 3. Replicate and report a confidence interval, not a single number.
    let times: Vec<f64> = (0..5)
        .map(|_| {
            session
                .query(&queries::q1())
                .run()
                .unwrap()
                .server_user_ms()
        })
        .collect();
    let ci = mean_confidence_interval(&times, 0.95).unwrap();
    println!("\nQ1 server time over 5 hot runs: {ci} ms");

    // 4. Which knob matters: execution engine (DBG/OPT) or the optimizer?
    //    A 2² design answers with 4·reps runs and quantifies the
    //    interaction, which one-at-a-time testing would miss.
    let design = TwoLevelDesign::full(&["engine_opt", "rewriter_on"]);
    let mut experiment = |a: &Assignment| {
        let mode = if a.num("engine_opt").unwrap() > 0.0 {
            ExecMode::Optimized
        } else {
            ExecMode::Debug
        };
        let mut s = Session::new(catalog.clone()).with_mode(mode);
        if a.num("rewriter_on").unwrap() < 0.0 {
            s.set_optimizer(perfeval::minidb::optimizer::OptimizerConfig::none());
        }
        s.query(&queries::q1()).run().unwrap(); // warm up
        s.query(&queries::q1()).run().unwrap().server_user_ms()
    };
    let (runs, variation) = run_and_analyze(&design, 3, &mut experiment).unwrap();
    println!("\n2x2 design over (engine build, plan rewriter), 3 replications:");
    print!("{}", runs.render());
    println!("\nallocation of variation:");
    print!("{}", variation.render());
    println!(
        "-> the dominant factor is '{}'",
        variation.ranked_effects()[0].0
    );
}
